//! Integration: the spill path is **bit-identical** to the in-memory
//! streaming analyzer. Every exemplar of the paper's corpus — the seven
//! workloads, clean and under an active storage fault plan — is captured
//! into an on-disk segment log, recovered, and profiled straight off
//! disk; the profile must equal `TraceProfile::fused` on the same capture,
//! cell for cell, at 1, 2, and 8 workers and across chunk sizes.
//!
//! Also pinned here: the persistence entry points (`load_chunked`,
//! `load_columnar`, and their salvaging twins) transparently recognize a
//! v3 spill log by its magic bytes, so a spill file drops into every
//! existing reload path; and off-disk profiling keeps the resident trace
//! footprint under the same ring bound as in-memory streaming.
//!
//! One worker-sweep `#[test]` on purpose: `rt::par::set_threads` is
//! process-global, so the sweep must not interleave with itself.

use std::path::PathBuf;

use vani_suite::recorder::chunk::{
    resident_bound, trace_gauge, ChunkedTrace, DEFAULT_CHUNK_ROWS, RING_SLOTS,
};
use vani_suite::recorder::persist;
use vani_suite::recorder::spill::{spill_columnar, SpillFaultPlan, SpillSource};
use vani_suite::recorder::ColumnarTrace;
use vani_suite::rt::par;
use vani_suite::sim::{Dur, SimTime};
use vani_suite::storage::FaultPlan;
use vani_suite::vani::analyzer::TraceProfile;
use vani_suite::workloads as wl;
use vani_suite::workloads::WorkloadRun;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vani_spill_identity");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// The paper's seven exemplars: the six applications plus the IOR
/// calibration benchmark, at fast scales.
fn paper_seven() -> Vec<(&'static str, WorkloadRun)> {
    vec![
        ("cm1", wl::cm1::run(0.01, 5)),
        ("hacc", wl::hacc::run(0.01, 5)),
        ("cosmoflow", wl::cosmoflow::run(0.001, 5)),
        ("jag", wl::jag::run(0.01, 5)),
        ("montage", wl::montage::run(0.01, 5)),
        ("pegasus", wl::montage_pegasus::run(0.01, 5)),
        ("ior", wl::ior::run(wl::ior::IorParams::scaled(0.01), 5)),
    ]
}

/// Mild-but-active storage fault plan (the `streaming_vs_fused` one): the
/// resilience counters become part of the identity being checked.
fn stress_plan() -> FaultPlan {
    let end = SimTime::from_secs(1_000_000);
    FaultPlan::none()
        .with_nsd_outage(0, SimTime::from_secs(1), end)
        .with_mds_brownout(SimTime::ZERO, end, 3.0)
        .with_nsd_brownout(SimTime::from_secs(2), end, 1.5)
        .with_straggler(0, 1.2)
        .with_error_rates(0.03, 0.01)
}

/// The seven again, each under [`stress_plan`].
fn faulted_seven() -> Vec<(&'static str, WorkloadRun)> {
    let plan = stress_plan();
    let mut cm1 = wl::cm1::Cm1Params::scaled(0.01);
    cm1.faults = plan.clone();
    let mut hacc = wl::hacc::HaccParams::scaled(0.01);
    hacc.faults = plan.clone();
    let mut cosmo = wl::cosmoflow::CosmoflowParams::scaled(0.001);
    cosmo.faults = plan.clone();
    let mut jag = wl::jag::JagParams::scaled(0.01);
    jag.faults = plan.clone();
    let mut montage = wl::montage::MontageParams::scaled(0.01);
    montage.faults = plan.clone();
    let mut pegasus = wl::montage_pegasus::PegasusParams::scaled(0.01);
    pegasus.faults = plan.clone();
    let mut ior = wl::ior::IorParams::scaled(0.01);
    ior.faults = plan;
    vec![
        ("cm1+faults", wl::cm1::run_with(cm1, 0.01, 5)),
        ("hacc+faults", wl::hacc::run_with(hacc, 0.01, 5)),
        ("cosmoflow+faults", wl::cosmoflow::run_with(cosmo, 0.001, 5)),
        ("jag+faults", wl::jag::run_with(jag, 0.01, 5)),
        ("montage+faults", wl::montage::run_with(montage, 0.01, 5)),
        (
            "pegasus+faults",
            wl::montage_pegasus::run_with(pegasus, 0.01, 5),
        ),
        ("ior+faults", wl::ior::run(ior, 5)),
    ]
}

/// The acceptance gate of the spill store: for all fourteen runs (seven
/// workloads × {clean, faulted}), across a small and the default chunk
/// size, spill-capture → recover → off-disk streaming analysis equals
/// `TraceProfile::fused` on the same capture at 1, 2, and 8 workers.
#[test]
fn spilled_profile_matches_fused_on_all_workloads_and_worker_counts() {
    let mut runs = paper_seven();
    runs.extend(faulted_seven());
    let captures: Vec<(&str, ColumnarTrace, Dur)> = runs
        .iter()
        .map(|(n, r)| (*n, r.columnar(), r.runtime()))
        .collect();
    let oracles: Vec<TraceProfile> = captures
        .iter()
        .map(|(_, c, rt)| TraceProfile::fused(c, *rt))
        .collect();

    // Spill every capture once per chunk size; the sources are re-scanned
    // from disk on every profiling pass below.
    let mut sources: Vec<(usize, usize, SpillSource)> = Vec::new();
    for (i, (name, c, _)) in captures.iter().enumerate() {
        for (j, chunk_rows) in [512usize, DEFAULT_CHUNK_ROWS].into_iter().enumerate() {
            let path = tmp(&format!("{name}-{chunk_rows}.vsp3"));
            spill_columnar(c, chunk_rows, &path, SpillFaultPlan::none())
                .unwrap_or_else(|e| panic!("{name}: clean spill failed: {e}"));
            let src = SpillSource::open_strict(&path)
                .unwrap_or_else(|e| panic!("{name}: clean log must open strict: {e}"));
            sources.push((i, j, src));
        }
    }

    for workers in [1usize, 2, 8] {
        par::set_threads(workers);
        for (i, _, src) in &sources {
            let (name, _, rt) = &captures[*i];
            let spilled = TraceProfile::streaming_source(src, *rt)
                .unwrap_or_else(|e| panic!("{name}: off-disk streaming failed: {e}"));
            assert_eq!(
                &spilled, &oracles[*i],
                "{name}: spilled profile diverged from fused at {workers} workers"
            );
        }
    }
    par::set_threads(0); // back to auto

    for (_, _, src) in &sources {
        std::fs::remove_file(src.path()).expect("remove spill log");
    }
}

/// A v3 spill log loads through every v1/v2 persistence entry point: the
/// loaders sniff the magic bytes and route to the spill reader, so a
/// spilled trace round-trips exactly like a JSON one.
#[test]
fn spill_logs_load_through_the_persistence_entry_points() {
    let run = wl::jag::run(0.01, 5);
    let c = run.columnar();
    let mem = ChunkedTrace::from_columnar(&c, DEFAULT_CHUNK_ROWS);
    let path = tmp("persist-entry.vsp3");
    spill_columnar(&c, DEFAULT_CHUNK_ROWS, &path, SpillFaultPlan::none()).expect("clean spill");

    let chunked = persist::load_chunked(&path).expect("load_chunked reads spill logs");
    assert_eq!(chunked, mem);
    let (salvaged, comp) =
        persist::load_chunked_salvaged(&path).expect("load_chunked_salvaged reads spill logs");
    assert_eq!(salvaged, mem);
    assert!(comp.is_complete());
    let columnar = persist::load_columnar(&path).expect("load_columnar reads spill logs");
    assert_eq!(columnar, c);
    let (columnar2, comp2) =
        persist::load_columnar_salvaged(&path).expect("load_columnar_salvaged reads spill logs");
    assert_eq!(columnar2, c);
    assert!(comp2.is_complete());
    std::fs::remove_file(&path).expect("remove spill log");
}

/// Off-disk profiling holds at most the same ring as in-memory streaming:
/// writer staging during capture and the read/decode buffers during
/// analysis both stay under `resident_bound`.
#[test]
fn spill_capture_and_analysis_stay_under_the_ring_bound() {
    let run = wl::hacc::run(0.02, 5);
    let c = run.columnar();
    let chunk_rows = (c.len() / 10).max(16);
    let path = tmp("ring-bound.vsp3");

    trace_gauge().reset();
    spill_columnar(&c, chunk_rows, &path, SpillFaultPlan::none()).expect("clean spill");
    let src = SpillSource::open_strict(&path).expect("clean log opens strict");
    assert!(src.len() >= 8, "trace too small to exercise the ring");
    let _ = TraceProfile::streaming_source(&src, run.runtime()).expect("off-disk streaming");
    let peak = trace_gauge().peak();
    assert!(peak > 0, "spill path never charged the trace gauge");
    assert!(
        peak <= resident_bound(chunk_rows, RING_SLOTS),
        "peak {peak} exceeds resident_bound({chunk_rows}, {RING_SLOTS}) = {}",
        resident_bound(chunk_rows, RING_SLOTS)
    );
    std::fs::remove_file(&path).expect("remove spill log");
}
