//! Integration: the multi-tenant fleet sweep is deterministic, reduces to
//! dedicated runs for a single tenant, and fails fast on bad configs.
//!
//! * The fleet manifest, FCFS admission order, and the fully rendered
//!   statistics report must be **byte-identical** between the sequential
//!   driver and the parallel driver at 1, 2, and 8 workers — both for an
//!   all-baseline mix and for a mix with active fault plans (faulted and
//!   crashy variants).
//! * A fleet containing exactly one job must reproduce the dedicated run
//!   of that workload **byte-equal** on every extracted attribute: empty
//!   interference schedules are bit-identical to never installing one.
//! * A mix referencing an unknown workload or an unsupported variant must
//!   surface a typed `FleetError`, not a panic.
//!
//! One worker-sweep `#[test]` on purpose: `rt::par::set_threads` is
//! process-global, so the sweep must not interleave with itself.

use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::sweep::Driver;
use vani_suite::vani::tenancy::{
    build_manifest, fleet_sweep, ArrivalProcess, FleetConfig, FleetError, InterArrival,
    JobTemplate, JobVariant, NodeFaultSpec, SchedPolicy,
};
use vani_suite::workloads as wl;

const SCALE: f64 = 0.02;
const SEED: u64 = 11;

/// A small heterogeneous fleet; `with_faults` adds brownout-degraded and
/// crashy tenants to the mix (the "active FaultPlan" half of the matrix).
fn small_cfg(with_faults: bool) -> FleetConfig {
    let mut mix = vec![
        JobTemplate::new("cm1", JobVariant::Baseline, 3),
        JobTemplate::new("hacc", JobVariant::Baseline, 2),
        JobTemplate::new("ior", JobVariant::Baseline, 2),
    ];
    if with_faults {
        mix.push(JobTemplate::new("hacc", JobVariant::Faulted, 2));
        mix.push(JobTemplate::new("cm1", JobVariant::Crashy, 1));
    }
    let mut cfg = FleetConfig::standard(8, SCALE, SEED);
    cfg.mix = mix;
    cfg
}

#[test]
fn fleet_report_is_byte_identical_at_any_worker_count() {
    for with_faults in [false, true] {
        let cfg = small_cfg(with_faults);
        let manifest_ref = build_manifest(&cfg).expect("valid config").render();
        let report_ref = fleet_sweep(&cfg, Driver::Sequential).expect("valid config");
        let render_ref = report_ref.render();
        assert!(render_ref.contains("Fleet attribute distributions"));
        assert!(render_ref.contains("Noisy neighbor impact"));
        if with_faults {
            assert!(
                render_ref.contains("crashy"),
                "crashy tenants must appear in the report"
            );
        }

        for workers in [1usize, 2, 8] {
            vani_suite::rt::par::set_threads(workers);
            let report = fleet_sweep(&cfg, Driver::Parallel).expect("valid config");
            assert_eq!(
                report.manifest.render(),
                manifest_ref,
                "manifest diverged at {workers} workers (faults: {with_faults})"
            );
            assert_eq!(
                report.admission_digest(),
                report_ref.admission_digest(),
                "admission order diverged at {workers} workers (faults: {with_faults})"
            );
            assert_eq!(
                report.render(),
                render_ref,
                "fleet report diverged at {workers} workers (faults: {with_faults})"
            );
            vani_suite::rt::par::set_threads(0);
        }
    }
}

#[test]
fn single_tenant_fleet_reproduces_the_dedicated_run_byte_equal() {
    // One job, a cluster far wider than it needs: its interference
    // schedule is empty, so the fleet job must be bit-identical to the
    // dedicated run with the same (manifest-assigned) seed.
    let cfg = FleetConfig {
        n_jobs: 1,
        scale: SCALE,
        seed: SEED,
        cluster_nodes: 512,
        pfs_capacity_scale: SCALE,
        arrival: ArrivalProcess::Open {
            mean_interarrival: 10.0,
            dist: InterArrival::Exponential,
        },
        mix: vec![JobTemplate::new("cm1", JobVariant::Baseline, 1)],
        node_faults: NodeFaultSpec::None,
        sched: SchedPolicy::standard(),
        spill: None,
    };
    let manifest = build_manifest(&cfg).expect("valid config");
    let job_seed = manifest.jobs[0].seed;

    let report = fleet_sweep(&cfg, Driver::Sequential).expect("valid config");
    assert_eq!(report.records.len(), 1);
    let r = &report.records[0];
    assert_eq!(
        r.mean_neighbor_load, 0.0,
        "a lonely tenant has no neighbors"
    );
    assert_eq!(r.tenant_delay_secs, 0.0);
    assert_eq!(r.contended_ops, 0);

    let dedicated = Analysis::from_run(&wl::cm1::run(SCALE, job_seed));
    assert_eq!(
        r.runtime,
        dedicated.job_time.as_secs_f64(),
        "runtime must be byte-equal"
    );
    assert_eq!(r.io_time_frac, dedicated.io_time_frac);
    assert_eq!(r.read_bytes, dedicated.read_bytes);
    assert_eq!(r.write_bytes, dedicated.write_bytes);
    assert_eq!(r.data_ops, dedicated.data_ops);
    assert_eq!(r.meta_ops, dedicated.meta_ops);
    assert_eq!(r.nodes, dedicated.nodes);
    assert_eq!(r.n_ranks, dedicated.n_ranks);
}

#[test]
fn unknown_workload_is_a_typed_error_not_a_panic() {
    let mut cfg = small_cfg(false);
    cfg.mix
        .push(JobTemplate::new("lammps", JobVariant::Baseline, 1));
    let err = fleet_sweep(&cfg, Driver::Sequential).unwrap_err();
    assert_eq!(err, FleetError::UnknownWorkload("lammps".to_string()));
    let msg = err.to_string();
    assert!(
        msg.contains("lammps") && msg.contains("cm1"),
        "message lists known ids: {msg}"
    );
}

#[test]
fn unsupported_variant_and_oversized_jobs_are_typed_errors() {
    // HACC has no checkpoint/restart recovery: crashy must be rejected.
    let mut cfg = small_cfg(false);
    cfg.mix
        .push(JobTemplate::new("hacc", JobVariant::Crashy, 1));
    match fleet_sweep(&cfg, Driver::Sequential).unwrap_err() {
        FleetError::UnsupportedVariant { workload, variant } => {
            assert_eq!(workload, "hacc");
            assert_eq!(variant, "crashy");
        }
        other => panic!("expected UnsupportedVariant, got {other:?}"),
    }

    // A zero-node cluster cannot hold any job.
    let mut cfg = small_cfg(false);
    cfg.cluster_nodes = 0;
    match fleet_sweep(&cfg, Driver::Sequential).unwrap_err() {
        FleetError::JobTooLarge { cluster_nodes, .. } => assert_eq!(cluster_nodes, 0),
        other => panic!("expected JobTooLarge, got {other:?}"),
    }

    // An all-zero-weight mix is empty.
    let mut cfg = small_cfg(false);
    for t in &mut cfg.mix {
        t.weight = 0;
    }
    assert_eq!(
        fleet_sweep(&cfg, Driver::Sequential).unwrap_err(),
        FleetError::EmptyMix
    );
}
