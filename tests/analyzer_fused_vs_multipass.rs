//! Integration: the fused single-pass analyzer is bit-identical to the
//! legacy multi-pass pipeline on every exemplar workload, at every worker
//! count — and the rendered artifacts (tables, figures, YAML) are
//! byte-stable run to run.

use vani_suite::rt::par;
use vani_suite::sim::SimTime;
use vani_suite::storage::FaultPlan;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::{figures, tables, yaml};
use vani_suite::workloads as wl;

fn paper_six() -> Vec<(&'static str, exemplar_workloads::WorkloadRun)> {
    vec![
        ("cm1", wl::cm1::run(0.01, 5)),
        ("hacc", wl::hacc::run(0.01, 5)),
        ("cosmoflow", wl::cosmoflow::run(0.001, 5)),
        ("jag", wl::jag::run(0.01, 5)),
        ("montage", wl::montage::run(0.01, 5)),
        ("pegasus", wl::montage_pegasus::run(0.01, 5)),
    ]
}

/// A fault plan that exercises every mechanism at once: a server outage,
/// both brownout kinds, a straggler node, and seeded transient errors —
/// all mild enough that the retry middleware absorbs everything.
fn stress_plan() -> FaultPlan {
    let end = SimTime::from_secs(1_000_000);
    FaultPlan::none()
        .with_nsd_outage(0, SimTime::from_secs(1), end)
        .with_mds_brownout(SimTime::ZERO, end, 3.0)
        .with_nsd_brownout(SimTime::from_secs(2), end, 1.5)
        .with_straggler(0, 1.2)
        .with_error_rates(0.03, 0.01)
}

/// The six workloads again, each running under [`stress_plan`].
fn faulted_six() -> Vec<(&'static str, exemplar_workloads::WorkloadRun)> {
    let plan = stress_plan();
    let mut cm1 = wl::cm1::Cm1Params::scaled(0.01);
    cm1.faults = plan.clone();
    let mut hacc = wl::hacc::HaccParams::scaled(0.01);
    hacc.faults = plan.clone();
    let mut cosmo = wl::cosmoflow::CosmoflowParams::scaled(0.001);
    cosmo.faults = plan.clone();
    let mut jag = wl::jag::JagParams::scaled(0.01);
    jag.faults = plan.clone();
    let mut montage = wl::montage::MontageParams::scaled(0.01);
    montage.faults = plan.clone();
    let mut pegasus = wl::montage_pegasus::PegasusParams::scaled(0.01);
    pegasus.faults = plan;
    vec![
        ("cm1+faults", wl::cm1::run_with(cm1, 0.01, 5)),
        ("hacc+faults", wl::hacc::run_with(hacc, 0.01, 5)),
        ("cosmoflow+faults", wl::cosmoflow::run_with(cosmo, 0.001, 5)),
        ("jag+faults", wl::jag::run_with(jag, 0.01, 5)),
        ("montage+faults", wl::montage::run_with(montage, 0.01, 5)),
        (
            "pegasus+faults",
            wl::montage_pegasus::run_with(pegasus, 0.01, 5),
        ),
    ]
}

/// The acceptance gate for the fused scan: every field of `Analysis`
/// (counters, f64 fractions, histograms, timelines, file/phase/app
/// profiles, dependency edges) is exactly equal between the fused
/// single-pass scan and the multi-pass oracle, for all six workloads of
/// the paper, at 1, 2, and 8 workers — with and without an active fault
/// plan, since the resilience counters must be just as merge-order
/// invariant as everything else. Worker counts share one test so the
/// global `par::set_threads` override is never raced by a sibling test.
#[test]
fn fused_matches_multipass_on_all_workloads_and_worker_counts() {
    let mut runs = paper_six();
    runs.extend(faulted_six());
    // The fault plan must actually fire, or the faulted half of this test
    // degenerates into a copy of the clean half.
    assert!(
        runs.iter().any(|(n, r)| n.ends_with("+faults") && {
            let a = Analysis::from_run(r);
            a.fault_events > 0 && a.retry_events > 0
        }),
        "stress_plan produced no absorbed faults on any workload"
    );
    // The oracle at the default worker count is the reference point.
    let oracles: Vec<Analysis> = runs
        .iter()
        .map(|(_, r)| Analysis::from_run_multipass(r))
        .collect();
    for workers in [1u32, 2, 8] {
        par::set_threads(workers as usize);
        for ((name, run), oracle) in runs.iter().zip(&oracles) {
            let fused = Analysis::from_run(run);
            assert_eq!(
                &fused, oracle,
                "{name}: fused analysis diverged from the multipass oracle at {workers} workers"
            );
            // The oracle itself must also be worker-count invariant.
            let oracle_again = Analysis::from_run_multipass(run);
            assert_eq!(
                &oracle_again, oracle,
                "{name}: multipass analysis changed with worker count {workers}"
            );
        }
    }
    par::set_threads(0); // back to auto
}

/// Rendered artifacts are byte-stable: two independent analyses of
/// identically-seeded runs emit the exact same tables, figures, and YAML.
/// This pins the emission-order fixes (rank-sorted I/O fraction, files
/// sorted by (read_bytes, path), apps sorted by (first, name), sorted
/// dependency edges) against regressions that reintroduce HashMap order.
#[test]
fn rendered_artifacts_are_byte_stable() {
    let render = || {
        let runs = paper_six();
        let analyses: Vec<Analysis> = runs.iter().map(|(_, r)| Analysis::from_run(r)).collect();
        let refs: Vec<&Analysis> = analyses.iter().collect();
        let mut out = String::new();
        for t in [
            tables::table1(&refs),
            tables::table2(&refs),
            tables::table3(&refs),
            tables::table4(&refs),
            tables::table5(&refs),
            tables::table6(&refs),
            tables::table7(&refs),
            tables::table8(&refs),
            tables::table9(&refs, 1.0),
            tables::table10(&refs),
            tables::table11(&refs),
        ] {
            out.push_str(&t.render());
            out.push('\n');
        }
        for a in &analyses {
            out.push_str(&figures::figure(a));
            let ents = tables::entities_for(a);
            out.push_str(&yaml::emit(&ents));
        }
        out
    };
    let first = render();
    let second = render();
    assert_eq!(
        first, second,
        "rendered artifacts changed between identical runs"
    );
}
