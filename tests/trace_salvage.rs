//! Integration: trace-integrity salvage, end to end.
//!
//! A row-group capture that loses its tail (truncation) or takes
//! mid-file corruption still yields the longest consistent prefix, with
//! a typed completeness diagnostic; the fused and multipass analyzers
//! agree bit-for-bit on the salvaged columns, and the entity YAML carries
//! the completeness annotation. A crashed-and-recovered run's trace —
//! including its `Crash`/`RestartEpoch`/`Checkpoint` records — survives
//! the disk round-trip losslessly.

use sim_core::SimTime;
use std::fs;
use std::path::PathBuf;
use storage_sim::FaultPlan;
use vani_suite::recorder::chunk::ChunkedTrace;
use vani_suite::recorder::persist;
use vani_suite::recorder::tracer::Tracer;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::{tables, yaml};
use vani_suite::workloads as wl;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vani_trace_salvage");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn truncated_capture_salvages_a_consistent_prefix() {
    let run = wl::cm1::run(0.01, 11);
    let path = temp_path("cm1.truncated.rg.json");
    // Small row groups so truncation can land between group boundaries
    // even at test scale.
    fs::write(
        &path,
        persist::render_rowgroups(run.world.tracer.columnar(), 64),
    )
    .unwrap();

    // The writer died mid-record: chop the capture two thirds in.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();

    // Strict loading refuses, pointing at the damage.
    let err = persist::load_columnar(&path).expect_err("strict load must fail");
    assert!(err.to_string().contains("byte"), "{err}");

    // Salvage recovers the longest consistent prefix and says how much.
    let (salvaged, tc) = persist::load_columnar_salvaged(&path).unwrap();
    fs::remove_file(&path).unwrap();
    assert!(
        tc.loaded_records > 0,
        "two thirds of a capture must salvage something"
    );
    assert!(!tc.is_complete());
    assert!(tc.fraction() < 1.0);
    assert_eq!(tc.loaded_records as usize, salvaged.len());
    let original = run.world.tracer.columnar().to_records();
    assert_eq!(
        salvaged.to_records(),
        original[..salvaged.len()],
        "salvaged rows must be a prefix of the original capture"
    );

    // The fused analyzer and the multipass oracle agree on the salvaged
    // columns, and the YAML carries the completeness diagnostic.
    let mut partial = wl::cm1::run(0.01, 11);
    partial.world.tracer = Tracer::from_columnar(salvaged);
    let fused = Analysis::from_run(&partial);
    let multi = Analysis::from_run_multipass(&partial);
    assert_eq!(
        fused, multi,
        "fused and multipass must agree on salvaged traces"
    );

    let annotated = yaml::emit(&tables::entities_with_completeness(&fused, Some(&tc)));
    assert!(annotated.contains("trace_completeness"), "{annotated}");
    assert!(annotated.contains("trace_records_loaded"));
    assert!(annotated.contains("trace_records_expected"));
    // Without a diagnostic the emission is unchanged from the healthy path.
    let plain = yaml::emit(&tables::entities_for(&fused));
    assert!(!plain.contains("trace_completeness"));
}

#[test]
fn corrupted_group_stops_salvage_at_the_last_verified_group() {
    let run = wl::cosmoflow::run(0.01, 11);
    let path = temp_path("cosmo.corrupt.rg.json");
    let c = run.world.tracer.columnar();
    fs::write(&path, persist::render_rowgroups(c, 64)).unwrap();

    // Flip one byte inside the last row-group's column data.
    let mut text = fs::read_to_string(&path).unwrap();
    let hit = text.rfind("\"bytes\":[").unwrap() + "\"bytes\":[".len();
    let orig = text.as_bytes()[hit];
    let flip = if orig == b'1' { '2' } else { '1' };
    text.replace_range(hit..hit + 1, &flip.to_string());
    fs::write(&path, &text).unwrap();

    let err = persist::load_columnar(&path).expect_err("strict load must fail");
    assert!(err.to_string().contains("checksum"), "{err}");

    let (salvaged, tc) = persist::load_columnar_salvaged(&path).unwrap();
    fs::remove_file(&path).unwrap();
    assert!(tc.loaded_groups < tc.expected_groups);
    assert!(salvaged.len() < c.len());
    assert_eq!(salvaged.to_records(), c.to_records()[..salvaged.len()]);
}

#[test]
fn v2_capture_truncated_mid_sealed_chunk_salvages_the_prefix() {
    let run = wl::cm1::run(0.01, 11);
    let c = run.world.tracer.columnar();
    let path = temp_path("cm1.truncated.v2.rg.json");
    // Small sealed chunks so the cut lands well inside the chunk stream.
    let text = persist::render_chunked(&ChunkedTrace::from_columnar(c, 64));
    // The writer died mid-chunk: chop the capture two thirds in, which
    // lands inside a sealed chunk's hex-encoded column payload.
    fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();

    let err = persist::load_columnar(&path).expect_err("strict load must fail");
    assert!(err.to_string().contains("byte"), "{err}");

    let (salvaged, tc) = persist::load_columnar_salvaged(&path).unwrap();
    fs::remove_file(&path).unwrap();
    assert!(
        tc.loaded_records > 0,
        "two thirds of a v2 capture must salvage something"
    );
    assert!(!tc.is_complete());
    assert!(tc.fraction() < 1.0);
    assert!(tc.loaded_groups < tc.expected_groups);
    assert_eq!(tc.loaded_records as usize, salvaged.len());
    assert_eq!(
        salvaged.to_records(),
        c.to_records()[..salvaged.len()],
        "salvaged rows must be a prefix of the original capture"
    );
}

#[test]
fn v2_chunk_checksum_corruption_stops_salvage_at_the_last_verified_chunk() {
    let run = wl::cosmoflow::run(0.01, 11);
    let c = run.world.tracer.columnar();
    let path = temp_path("cosmo.corrupt.v2.rg.json");
    let text = persist::render_chunked(&ChunkedTrace::from_columnar(c, 64));

    // Flip one hex digit inside the last sealed chunk's encoded column
    // payload without breaking JSON: the per-column checksum must catch
    // it and salvage must stop at the preceding chunk boundary.
    let lines: Vec<&str> = text.lines().collect();
    let last = lines.len() - 1;
    let pos = lines[last].rfind('"').unwrap() - 2;
    let mut doctored = lines[last].to_string();
    let old = doctored.as_bytes()[pos];
    let new = if old == b'0' { "1" } else { "0" };
    doctored.replace_range(pos..pos + 1, new);
    let mut out: Vec<&str> = lines[..last].to_vec();
    out.push(&doctored);
    fs::write(&path, out.join("\n")).unwrap();

    let err = persist::load_columnar(&path).expect_err("strict load must fail");
    assert!(
        err.to_string().contains("checksum") || err.to_string().contains("decode"),
        "{err}"
    );

    let (salvaged, tc) = persist::load_columnar_salvaged(&path).unwrap();
    fs::remove_file(&path).unwrap();
    assert!(tc.loaded_groups < tc.expected_groups);
    assert_eq!(
        tc.loaded_records as usize,
        tc.loaded_groups as usize * 64,
        "salvage stops exactly on a sealed-chunk boundary"
    );
    assert!(salvaged.len() < c.len());
    assert_eq!(salvaged.to_records(), c.to_records()[..salvaged.len()]);
}

#[test]
fn crashed_run_trace_round_trips_with_resilience_attributes() {
    // A CM1 run killed halfway and recovered from its step checkpoints.
    let healthy = wl::cm1::run(0.01, 11);
    let at = SimTime::from_nanos(healthy.runtime().as_nanos() / 2);
    let mut p = wl::cm1::Cm1Params::scaled(0.01);
    p.faults = FaultPlan::none().with_rank_crash(0, at);
    let mut run = wl::cm1::run_with(p, 0.01, 11);

    let path = temp_path("cm1.crashed.rg.json");
    persist::save_columnar(run.world.tracer.columnar(), &path).unwrap();
    let reloaded = persist::load_columnar(&path).unwrap();
    fs::remove_file(&path).unwrap();
    assert_eq!(&reloaded, run.world.tracer.columnar());

    // The analysis of the reloaded trace still carries the resilience
    // attributes the crash left behind.
    let direct = Analysis::from_run(&run);
    run.world.tracer = Tracer::from_columnar(reloaded);
    let roundtripped = Analysis::from_run(&run);
    assert_eq!(direct, roundtripped);
    assert!(direct.restart_count() > 0);
    let y = yaml::emit(&tables::entities_for(&roundtripped));
    assert!(y.contains("restart_count"));
    assert!(y.contains("recovery_time"));
}
