//! Seeded corruption property suite over all three persistence
//! generations: v1 row-group JSON (`render_rowgroups`), v2 chunked JSON
//! (`save_chunked`), and the v3 binary spill log (`spill_columnar`).
//!
//! Property: for ANY random truncation or bit flip of a persisted trace,
//! every loader either returns a typed [`TraceLoadError`] / [`SpillError`]
//! or salvages — it never panics. When a salvaging loader succeeds, its
//! [`TraceCompleteness`] counts exactly what was loaded, the salvaged
//! trace never contains more records than the original, and every record
//! it does contain is the original record at the same position (salvage
//! recovers a verified prefix, it never invents or reorders data).
//!
//! A hand-crafted checksum-fixed corruption (flip a chunk's persisted
//! meta, then re-seal the frame checksum over the flipped payload) pins
//! the deep-verification path: the frame checksum passes, but the decode
//! disagrees with its seal-time meta and the chunk quarantines as
//! `Codec` — the class of damage an outer checksum alone cannot catch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use vani_suite::recorder::chunk::ChunkedTrace;
use vani_suite::recorder::persist::{self, TraceLoadError};
use vani_suite::recorder::spill::{fsck, spill_columnar, QuarantineReason, SpillFaultPlan};
use vani_suite::recorder::{ColumnarTrace, Layer, OpKind, SpillError, Tracer};
use vani_suite::rt::Rng;
use vani_suite::sim::SimTime;

/// Group/chunk size for all three formats: small enough that a ~900-row
/// trace has many independently-checksummed segments to damage.
const GROUP_ROWS: usize = 64;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vani_persist_corruption");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// A deterministic multi-file multi-app trace with variation in every
/// column, so damage anywhere in the encoding is observable.
fn sample_trace() -> ColumnarTrace {
    let mut t = Tracer::new();
    let files = [
        t.file_id("/p/gpfs1/ckpt/restart.0"),
        t.file_id("/p/gpfs1/out/data.h5"),
        t.file_id("/dev/shm/stage/tile.fits"),
    ];
    let apps = [t.app_id("cm1"), t.app_id("hacc")];
    let layers = [Layer::Posix, Layer::Stdio, Layer::MpiIo, Layer::HighLevel];
    let ops = [OpKind::Write, OpKind::Read, OpKind::Open, OpKind::Close];
    for i in 0..900u64 {
        t.record(
            (i % 8) as u32,
            (i % 3) as u32,
            apps[(i % 2) as usize],
            layers[(i % 4) as usize],
            ops[(i % 4) as usize],
            SimTime(i * 17),
            SimTime(i * 17 + 11),
            Some(files[(i % 3) as usize]),
            64 + (i % 512),
            4096 * i,
        );
    }
    ColumnarTrace::from_tracer(&t)
}

/// Assert `got` is a verified prefix of `want`: same records, in order,
/// from the start.
fn assert_prefix(label: &str, got: &ColumnarTrace, want: &ColumnarTrace) {
    let n = got.len();
    assert!(
        n <= want.len(),
        "{label}: salvage invented records ({n} > {})",
        want.len()
    );
    assert_eq!(got.rank, want.rank[..n], "{label}: rank prefix");
    assert_eq!(got.node, want.node[..n], "{label}: node prefix");
    assert_eq!(got.app, want.app[..n], "{label}: app prefix");
    assert_eq!(got.layer, want.layer[..n], "{label}: layer prefix");
    assert_eq!(got.op, want.op[..n], "{label}: op prefix");
    assert_eq!(got.start, want.start[..n], "{label}: start prefix");
    assert_eq!(got.end, want.end[..n], "{label}: end prefix");
    assert_eq!(got.file, want.file[..n], "{label}: file prefix");
    assert_eq!(got.offset, want.offset[..n], "{label}: offset prefix");
    assert_eq!(got.bytes, want.bytes[..n], "{label}: bytes prefix");
}

/// Run every loader against a (possibly damaged) file. Each call must
/// return — a typed error or a salvage — and salvages must be honest
/// prefixes with consistent completeness accounting.
fn exercise(label: &str, path: &Path, original: &ColumnarTrace) {
    // Strict loaders: Ok or typed error, never a panic.
    let _ = persist::load_chunked(path);
    let _ = persist::load_columnar(path);
    if let Ok((t, comp)) = persist::load_chunked_salvaged(path) {
        assert_eq!(
            comp.loaded_records,
            t.len() as u64,
            "{label}: completeness counts the salvaged records"
        );
        assert!(
            comp.fraction().is_finite() && comp.fraction() >= 0.0,
            "{label}: fraction must be a finite non-negative ratio"
        );
        let c = t
            .to_columnar()
            .unwrap_or_else(|e| panic!("{label}: salvaged chunks must decode: {e}"));
        assert_prefix(label, &c, original);
    }
    if let Ok((c, comp)) = persist::load_columnar_salvaged(path) {
        assert_eq!(
            comp.loaded_records,
            c.len() as u64,
            "{label}: completeness counts the salvaged records"
        );
        assert_prefix(label, &c, original);
    }
}

/// Persist `c` in the given generation and return the file's bytes.
fn persisted(gen: &str, c: &ColumnarTrace, path: &Path) -> Vec<u8> {
    match gen {
        "v1" => std::fs::write(path, persist::render_rowgroups(c, GROUP_ROWS)).expect("write v1"),
        "v2" => persist::save_chunked(&ChunkedTrace::from_columnar(c, GROUP_ROWS), path)
            .expect("write v2"),
        "v3" => {
            spill_columnar(c, GROUP_ROWS, path, SpillFaultPlan::none()).expect("write v3");
        }
        other => panic!("unknown generation {other}"),
    }
    std::fs::read(path).expect("read persisted bytes")
}

/// The property itself: 24 seeded truncations and 24 seeded bit flips per
/// generation, every loader exercised on each mutant, no panics allowed.
#[test]
fn random_truncations_and_bit_flips_never_panic_any_loader() {
    let c = sample_trace();
    for gen in ["v1", "v2", "v3"] {
        let clean_path = tmp(&format!("{gen}-clean.trace"));
        let bytes = persisted(gen, &c, &clean_path);
        // The pristine file itself round-trips completely.
        exercise(&format!("{gen} clean"), &clean_path, &c);

        let mut rng = Rng::new(0xc0_44u64 ^ gen.as_bytes()[1] as u64);
        let mutant_path = tmp(&format!("{gen}-mutant.trace"));
        for trial in 0..24 {
            let cut = 1 + (rng.next_u64() as usize) % (bytes.len() - 1);
            std::fs::write(&mutant_path, &bytes[..cut]).expect("write truncation");
            let label = format!("{gen} trial {trial}: truncated to {cut}B");
            catch_unwind(AssertUnwindSafe(|| exercise(&label, &mutant_path, &c)))
                .unwrap_or_else(|_| panic!("{label}: a loader panicked"));
        }
        for trial in 0..24 {
            let pos = (rng.next_u64() as usize) % bytes.len();
            let bit = 1u8 << (rng.next_u64() % 8);
            let mut flipped = bytes.clone();
            flipped[pos] ^= bit;
            std::fs::write(&mutant_path, &flipped).expect("write bit flip");
            let label = format!("{gen} trial {trial}: bit {bit:#04x} flipped at {pos}");
            catch_unwind(AssertUnwindSafe(|| exercise(&label, &mutant_path, &c)))
                .unwrap_or_else(|_| panic!("{label}: a loader panicked"));
        }
        std::fs::remove_file(&clean_path).expect("cleanup");
        std::fs::remove_file(&mutant_path).expect("cleanup");
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum-fixed corruption: flip a byte inside the first chunk's
/// persisted seal-time meta (its `n_ranks` tally), then recompute the
/// frame checksum so the outer integrity check passes. Only the deep
/// verification pass — decode and recompute the meta from the rows —
/// can catch it, and it must quarantine the chunk as `Codec`.
#[test]
fn checksum_fixed_meta_corruption_is_caught_by_deep_verification() {
    let c = sample_trace();
    let path = tmp("codec-mutant.vsp3");
    spill_columnar(&c, GROUP_ROWS, &path, SpillFaultPlan::none()).expect("clean spill");
    let mut bytes = std::fs::read(&path).expect("read spill log");

    // Walk the frame stream (preamble is 11 magic bytes + chunk_rows u64)
    // to the first CHUNK frame (kind 1).
    let mut off = 19usize;
    let (payload_start, payload_len) = loop {
        let kind = bytes[off];
        let len =
            u64::from_le_bytes(bytes[off + 1..off + 9].try_into().expect("frame len")) as usize;
        if kind == 1 {
            break (off + 9, len);
        }
        off += 9 + len + 8;
    };
    // Payload layout: rows u64, meta_len u64, then the meta — whose own
    // layout is rows u64, 6 presence flags, n_ranks u64. Flip the low
    // byte of n_ranks: parses fine, disagrees with the rows.
    bytes[payload_start + 30] ^= 0x01;
    let sum = fnv1a(&bytes[payload_start..payload_start + payload_len]);
    bytes[payload_start + payload_len..payload_start + payload_len + 8]
        .copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write mutant");

    let report = fsck(&path).expect("fsck walks the mutant without failing");
    assert_eq!(report.committed_records, 0, "first chunk is quarantined");
    let q = report.quarantined.first().expect("damage is quarantined");
    assert_eq!(
        q.reason,
        QuarantineReason::Codec,
        "a checksum-passing meta mismatch is codec-class damage"
    );
    match persist::load_chunked(&path) {
        Err(TraceLoadError::Spill(SpillError::Codec { .. })) => {}
        other => panic!("strict load must fail typed Codec, got {other:?}"),
    }
    let (salvaged, comp) = persist::load_chunked_salvaged(&path).expect("salvage still succeeds");
    assert_eq!(salvaged.len(), 0, "nothing before the damaged chunk");
    assert!(!comp.is_complete());
    std::fs::remove_file(&path).expect("cleanup");
}
