//! Integration: fleet-level failure domains (ISSUE 8 acceptance suite).
//!
//! * With an **active** `NodeFaultPlan`, the fully rendered fleet report
//!   and its JSON form are byte-identical between the sequential driver
//!   and the parallel driver at 1, 2, and 8 workers.
//! * With an **empty** plan, the report render and JSON are bit-identical
//!   to the pre-failure-domain fleet sweep, pinned by FNV-1a digests
//!   captured on the commit before this change landed.
//! * A job killed by a node outage completes after requeue with its lost
//!   work accounted in the degraded-mode fleet statistics, and a job that
//!   exhausts its retry budget is abandoned and charged but never
//!   simulated.
//!
//! One worker-sweep `#[test]` on purpose: `rt::par::set_threads` is
//! process-global, so the sweep must not interleave with itself. The
//! other tests stay on the sequential driver.

use vani_suite::vani::sweep::Driver;
use vani_suite::vani::tenancy::{
    fleet_sweep, FleetConfig, JobOutcome, JobTemplate, JobVariant, NodeFaultPlan, NodeFaultSpec,
};

const SCALE: f64 = 0.02;
const SEED: u64 = 11;

/// The exact config the pre-change pin digests were captured with: the
/// heterogeneous mix of tests/fleet_sweep.rs including faulted and
/// crashy tenants, 8 jobs on a 4-node cluster.
fn pinned_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::standard(8, SCALE, SEED);
    cfg.mix = vec![
        JobTemplate::new("cm1", JobVariant::Baseline, 3),
        JobTemplate::new("hacc", JobVariant::Baseline, 2),
        JobTemplate::new("ior", JobVariant::Baseline, 2),
        JobTemplate::new("hacc", JobVariant::Faulted, 2),
        JobTemplate::new("cm1", JobVariant::Crashy, 1),
    ];
    cfg
}

/// Same fleet with a hand-placed outage that lands on the long crashy
/// job (job 5, node 0, healthy span 21.765 s .. 55.287 s): killed at
/// t = 30 s, node repaired at t = 35 s, requeued with the 30 s base
/// backoff and restarted at t = 60 s.
fn one_kill_cfg() -> FleetConfig {
    let mut cfg = pinned_cfg();
    cfg.node_faults = NodeFaultSpec::Plan(NodeFaultPlan::none().with_outage(0, 30.0, 5.0));
    cfg
}

/// Outages timed to kill job 5's every attempt: restarts land at
/// kill + backoff (30, 60, 120 s doubling), so four kills exhaust the
/// default budget of 3 retries and abandon the job.
fn abandon_cfg() -> FleetConfig {
    let mut cfg = pinned_cfg();
    cfg.node_faults = NodeFaultSpec::Plan(
        NodeFaultPlan::none()
            .with_outage(0, 30.0, 5.0)
            .with_outage(0, 70.0, 5.0)
            .with_outage(0, 140.0, 5.0)
            .with_outage(0, 270.0, 5.0),
    );
    cfg
}

/// Same FNV-1a 64 as the report digests; local copy because the pin was
/// captured with exactly this fold.
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Pre-change digests of `report.render()` and `report.to_json().render()`
/// for [`pinned_cfg`], captured at commit f79efd7 (the last commit before
/// the failure-domain change). An empty fault plan must not move a byte.
const PIN_RENDER: u64 = 0x7d46_6fab_99ff_b9f5;
const PIN_JSON: u64 = 0x6bd4_f75b_1a6e_206f;

#[test]
fn empty_plan_fleet_output_is_bit_identical_to_pre_change() {
    let cfg = pinned_cfg();
    assert_eq!(cfg.node_faults, NodeFaultSpec::None);
    let report = fleet_sweep(&cfg, Driver::Sequential).expect("valid config");
    assert!(!report.is_degraded());
    let render = report.render();
    let json = report.to_json().render();
    assert!(
        !render.contains("Node outage timeline"),
        "healthy fleets must not grow degraded tables"
    );
    assert!(
        !json.contains("node_faults"),
        "healthy JSON must not grow a node_faults key"
    );
    assert_eq!(
        fnv1a64(&render),
        PIN_RENDER,
        "empty-plan fleet render diverged from the pre-change output"
    );
    assert_eq!(
        fnv1a64(&json),
        PIN_JSON,
        "empty-plan fleet JSON diverged from the pre-change output"
    );
}

#[test]
fn active_plan_report_is_byte_identical_at_any_worker_count() {
    let cfg = one_kill_cfg();
    let reference = fleet_sweep(&cfg, Driver::Sequential).expect("valid config");
    let render_ref = reference.render();
    let json_ref = reference.to_json().render();
    assert!(render_ref.contains("Node outage timeline"));

    for workers in [1usize, 2, 8] {
        vani_suite::rt::par::set_threads(workers);
        let report = fleet_sweep(&cfg, Driver::Parallel).expect("valid config");
        assert_eq!(
            report.manifest.render(),
            reference.manifest.render(),
            "manifest diverged at {workers} workers"
        );
        assert_eq!(
            report.render(),
            render_ref,
            "degraded fleet report diverged at {workers} workers"
        );
        assert_eq!(
            report.to_json().render(),
            json_ref,
            "degraded fleet JSON diverged at {workers} workers"
        );
        vani_suite::rt::par::set_threads(0);
    }
}

#[test]
fn killed_job_completes_after_requeue_with_lost_work_accounted() {
    let report = fleet_sweep(&one_kill_cfg(), Driver::Sequential).expect("valid config");
    assert!(report.is_degraded());

    // The schedule records the kill and the successful second attempt.
    let sched = &report.schedules[5];
    assert_eq!(sched.attempts.len(), 2, "one killed attempt plus the retry");
    assert_eq!(
        sched.attempts[0].killed_by,
        Some(0),
        "killed by the node-0 outage"
    );
    assert_eq!(sched.outcome, JobOutcome::CompletedAfterRetry(1));
    assert!(
        sched.attempts[1].start > sched.attempts[0].end,
        "the retry starts after the backoff, not at the kill instant"
    );

    // The simulated record carries the retry story and the charge.
    let rec = report
        .records
        .iter()
        .find(|r| r.job_id == 5)
        .expect("job 5 simulated");
    assert_eq!(rec.outcome, JobOutcome::CompletedAfterRetry(1));
    assert_eq!(rec.retries, 1);
    assert!(
        rec.lost_work_node_secs > 0.0,
        "the killed attempt's node-seconds are charged as lost work"
    );
    let (clean, retried, abandoned) = report.outcome_counts();
    assert_eq!((clean, retried, abandoned), (7, 1, 0));

    // Fleet-level degraded accounting: some work was lost, so goodput
    // dips below 1 and every degraded table is rendered.
    assert!(report.lost_work_node_secs() > 0.0);
    assert!(report.goodput_frac() < 1.0 && report.goodput_frac() > 0.0);
    assert!(report.retry_amplification() > 1.0);
    let render = report.render();
    for table in [
        "Node outage timeline",
        "Degraded-mode accounting (goodput vs offered load)",
        "Job outcomes under node failures",
        "Turnaround slowdown vs healthy fleet",
    ] {
        assert!(
            render.contains(table),
            "degraded report must include `{table}`"
        );
    }

    // The JSON mirror carries the same accounting.
    let json = report.to_json();
    let nf = json
        .get("node_faults")
        .expect("degraded JSON exposes node_faults");
    assert!(nf.get("completed_after_retry").is_some());
    assert!(nf.get("lost_work_node_secs").is_some());
    assert!(nf.get("goodput_frac").is_some());
}

#[test]
fn retry_budget_exhaustion_abandons_and_charges_but_never_simulates() {
    let report = fleet_sweep(&abandon_cfg(), Driver::Sequential).expect("valid config");
    let sched = &report.schedules[5];
    assert_eq!(sched.outcome, JobOutcome::Abandoned);
    assert_eq!(
        sched.attempts.len(),
        4,
        "initial attempt plus three budgeted retries"
    );
    assert!(sched.attempts.iter().all(|a| a.killed_by == Some(0)));

    // Abandoned jobs are charged but not simulated: 7 records for 8 jobs.
    assert_eq!(report.records.len(), 7);
    assert!(report.records.iter().all(|r| r.job_id != 5));
    assert_eq!(report.outcome_counts(), (7, 0, 1));
    assert!(report.lost_work_node_secs() > 0.0);
    assert!(report.goodput_frac() < 1.0);
    assert!(report.render().contains("abandoned"));
}
