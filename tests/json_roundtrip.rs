//! Integration: traces persisted with `vani_rt::json` survive the disk
//! round-trip losslessly — a reloaded trace yields the same columnar
//! analysis and the same rendered attribute tables as the original run.

use std::fs;
use vani_suite::recorder::columnar::ColumnarTrace;
use vani_suite::recorder::persist;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::tables;
use vani_suite::workloads as wl;

#[test]
fn cm1_trace_round_trips_through_disk() {
    let run = wl::cm1::run(0.01, 11);
    let dir = std::env::temp_dir().join("vani_json_roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cm1.trace.json");

    persist::save_tracer(&run.world.tracer, &path).unwrap();
    let reloaded = persist::load_tracer(&path).unwrap();
    fs::remove_file(&path).unwrap();

    // Records and intern tables are preserved exactly.
    assert_eq!(reloaded.records(), run.world.tracer.records());
    assert_eq!(reloaded.file_paths(), run.world.tracer.file_paths());
    assert_eq!(reloaded.app_names(), run.world.tracer.app_names());
    // The rebuilt intern maps still resolve every path.
    for (i, p) in run.world.tracer.file_paths().iter().enumerate() {
        let mut r = reloaded.clone();
        assert_eq!(r.file_id(p).0 as usize, i);
    }

    // Columnar analysis over the reloaded trace is identical.
    let c0 = run.columnar();
    let c1 = ColumnarTrace::from_tracer(&reloaded);
    assert_eq!(c0.to_records(), c1.to_records());
    assert_eq!(c0.io_ops(), c1.io_ops());
    let sel0 = c0.data_ops(None);
    let sel1 = c1.data_ops(None);
    assert_eq!(sel0, sel1);
    assert_eq!(c0.sum_bytes(&sel0), c1.sum_bytes(&sel1));
    assert_eq!(c0.sum_time(&sel0), c1.sum_time(&sel1));
    assert_eq!(c0.t_min(), c1.t_min());
    assert_eq!(c0.t_max(), c1.t_max());
}

#[test]
fn reloaded_trace_renders_identical_attribute_tables() {
    // Two identical runs (the stack is deterministic for a fixed seed) ...
    let run_a = wl::cm1::run(0.01, 11);
    let mut run_b = wl::cm1::run(0.01, 11);

    // ... but run_b analyzes a trace that went JSON → disk → back.
    let dir = std::env::temp_dir().join("vani_json_roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cm1.tables.trace.json");
    persist::save_tracer(&run_a.world.tracer, &path).unwrap();
    run_b.world.tracer = persist::load_tracer(&path).unwrap();
    fs::remove_file(&path).unwrap();

    let a = Analysis::from_run(&run_a);
    let b = Analysis::from_run(&run_b);
    let cols_a = [&a];
    let cols_b = [&b];
    for (name, ta, tb) in [
        ("table1", tables::table1(&cols_a), tables::table1(&cols_b)),
        (
            "table10",
            tables::table10(&cols_a),
            tables::table10(&cols_b),
        ),
        (
            "table11",
            tables::table11(&cols_a),
            tables::table11(&cols_b),
        ),
    ] {
        assert_eq!(ta.render(), tb.render(), "{name} diverged after reload");
    }
}

#[test]
fn malformed_traces_fail_with_byte_offset_context() {
    let dir = std::env::temp_dir().join("vani_json_roundtrip");
    fs::create_dir_all(&dir).unwrap();

    // A real trace, then sabotage it in every way a disk or a partial
    // write can: truncation, garbage bytes, and wrong-but-valid JSON.
    let run = wl::cm1::run(0.005, 3);
    let path = dir.join("sabotage.trace.json");
    persist::save_tracer(&run.world.tracer, &path).unwrap();
    let good = fs::read_to_string(&path).unwrap();

    let cases: [(&str, String); 4] = [
        ("truncated", good[..good.len() / 2].to_string()),
        ("garbage tail", format!("{good}garbage")),
        ("corrupt byte", {
            let mut s = good.clone().into_bytes();
            let mid = s.len() / 2;
            s[mid] = b'\\';
            String::from_utf8_lossy(&s).into_owned()
        }),
        ("wrong shape", "[1, 2, 3]".to_string()),
    ];
    for (name, text) in cases {
        fs::write(&path, &text).unwrap();
        let err = persist::load_tracer(&path).expect_err(name);
        let msg = err.to_string();
        assert!(
            msg.contains("byte"),
            "{name}: the error must carry byte-offset context, got: {msg}"
        );
    }

    // The columnar loader surfaces the same typed context.
    let cpath = dir.join("sabotage.columnar.json");
    let c = ColumnarTrace::from_tracer(&run.world.tracer);
    persist::save_columnar(&c, &cpath).unwrap();
    let cgood = fs::read_to_string(&cpath).unwrap();
    fs::write(&cpath, &cgood[..cgood.len() - cgood.len() / 3]).unwrap();
    let msg = persist::load_columnar(&cpath)
        .expect_err("truncated columnar")
        .to_string();
    assert!(
        msg.contains("byte"),
        "columnar error must carry byte-offset context: {msg}"
    );

    // A missing file is an io::Error, not a panic.
    assert!(persist::load_tracer(&dir.join("never_written.json")).is_err());

    fs::remove_file(&path).unwrap();
    fs::remove_file(&cpath).unwrap();
}

#[test]
fn columnar_persistence_is_canonical() {
    // Saving the same columnar trace twice produces byte-identical JSON,
    // and a save → load → save cycle is a fixed point.
    let run = wl::cm1::run(0.005, 3);
    let c = ColumnarTrace::from_tracer(&run.world.tracer);
    let dir = std::env::temp_dir().join("vani_json_roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("c1.json");
    let p2 = dir.join("c2.json");
    persist::save_columnar(&c, &p1).unwrap();
    let back = persist::load_columnar(&p1).unwrap();
    persist::save_columnar(&back, &p2).unwrap();
    assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
    fs::remove_file(&p1).unwrap();
    fs::remove_file(&p2).unwrap();
}
