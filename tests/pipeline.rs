//! Integration: the full pipeline (simulate → trace → analyze) holds the
//! paper's Table I invariants for every exemplar workload.

use vani_suite::vani::analyzer::Analysis;
use vani_suite::workloads as wl;

#[test]
fn table1_shape_invariants_hold_across_all_six() {
    let analyses = vec![
        Analysis::from_run(&wl::cm1::run(0.02, 7)),
        Analysis::from_run(&wl::hacc::run(0.02, 7)),
        Analysis::from_run(&wl::cosmoflow::run(0.002, 7)),
        Analysis::from_run(&wl::jag::run(0.02, 7)),
        Analysis::from_run(&wl::montage::run(0.02, 7)),
        Analysis::from_run(&wl::montage_pegasus::run(0.01, 7)),
    ];
    let by_name = |n: &str| analyses.iter().find(|a| a.kind.name() == n).unwrap();

    // Interfaces (Table I's bottom row).
    assert_eq!(by_name("CM1").interface, "POSIX");
    assert_eq!(by_name("HACC (FPP)").interface, "POSIX");
    assert_eq!(by_name("Cosmoflow").interface, "HDF5-MPI-IO");
    assert_eq!(by_name("JAG").interface, "STDIO");
    assert_eq!(by_name("Montage MPI").interface, "STDIO");
    assert_eq!(by_name("Montage Pegasus").interface, "STDIO");

    // Sharing classification.
    assert_eq!(by_name("HACC (FPP)").shared_files(), 0);
    // The dataset itself is fully shared; only rank-0's few checkpoint
    // files register as FPP via the POSIX fallback.
    let cf0 = by_name("Cosmoflow");
    assert!(cf0.shared_files() > 10 * cf0.fpp_files().max(1));
    assert!(by_name("Montage Pegasus").shared_files() > 0);
    assert!(by_name("Montage Pegasus").fpp_files() > 0);

    // Byte-direction shapes.
    let cm1 = by_name("CM1");
    assert!(cm1.read_bytes > cm1.write_bytes);
    let hacc = by_name("HACC (FPP)");
    assert_eq!(hacc.read_bytes, hacc.write_bytes);
    let cf = by_name("Cosmoflow");
    assert!(cf.read_bytes > 100 * cf.write_bytes.max(1));

    // Metadata-heavy vs data-heavy op mixes.
    assert!(
        by_name("Cosmoflow").data_frac() < 0.5,
        "CosmoFlow is metadata-bound"
    );
    assert!(
        by_name("Montage MPI").data_frac() > 0.5,
        "Montage is data-bound"
    );

    // Every workload detected at least one I/O phase and one app.
    for a in &analyses {
        assert!(!a.phases.is_empty(), "{} has no phases", a.kind.name());
        assert!(!a.apps.is_empty(), "{} has no apps", a.kind.name());
        assert_eq!(
            a.access_pattern == "Seq",
            a.kind.name() != "Montage Pegasus"
        );
    }
}

#[test]
fn trace_round_trips_through_disk_and_reanalyzes() {
    let run = wl::hacc::run(0.02, 3);
    let dir = std::env::temp_dir().join("vani_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hacc_trace.json");
    recorder_sim::persist::save_tracer(&run.world.tracer, &path).unwrap();
    let loaded = recorder_sim::persist::load_tracer(&path).unwrap();
    assert_eq!(loaded.records(), run.world.tracer.records());
    let c = recorder_sim::ColumnarTrace::from_tracer(&loaded);
    assert_eq!(c.len(), run.world.tracer.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn optimizer_rules_fire_selectively() {
    use vani_suite::vani::optimizer::recommend;
    let cf = Analysis::from_run(&wl::cosmoflow::run(0.002, 7));
    let hc = Analysis::from_run(&wl::hacc::run(0.02, 7));
    let cf_names: Vec<&str> = recommend(&cf)
        .iter()
        .map(|a| a.recommendation.name())
        .collect::<Vec<_>>();
    let hc_names: Vec<&str> = recommend(&hc)
        .iter()
        .map(|a| a.recommendation.name())
        .collect::<Vec<_>>();
    assert!(cf_names.contains(&"preload-dataset-to-shm"));
    assert!(hc_names.contains(&"disable-locking"));
    assert!(!hc_names.contains(&"preload-dataset-to-shm"));
}
