//! Integration: cross-cutting invariants of the analysis pipeline that must
//! hold for *every* workload — conservation laws, ordering properties, and
//! consistency between the three views of a run (full trace, analyzer,
//! Darshan-style aggregates).

use recorder_sim::darshan::DarshanProfile;
use recorder_sim::record::OpKind;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::{tables, yaml};
use vani_suite::workloads as wl;

fn all_runs() -> Vec<exemplar_workloads::WorkloadRun> {
    vec![
        wl::cm1::run(0.01, 11),
        wl::hacc::run(0.01, 11),
        wl::cosmoflow::run(0.001, 11),
        wl::jag::run(0.01, 11),
        wl::montage::run(0.01, 11),
        wl::montage_pegasus::run(0.01, 11),
    ]
}

#[test]
fn histograms_and_timelines_conserve_bytes_for_all_workloads() {
    for run in all_runs() {
        let a = Analysis::from_run(&run);
        let name = a.kind.name();
        // Request-size histogram mass == interface-layer bytes moved.
        assert_eq!(
            a.req_sizes.sum(),
            (a.read_bytes + a.write_bytes) as u128,
            "{name}: histogram mass"
        );
        // Timeline integral == bytes moved (within float tolerance).
        let tl = a.read_timeline.total() + a.write_timeline.total();
        let expect = (a.read_bytes + a.write_bytes) as f64;
        assert!(
            (tl - expect).abs() <= 1e-6 * expect.max(1.0),
            "{name}: timeline {tl} vs {expect}"
        );
    }
}

#[test]
fn phases_are_ordered_and_cover_all_interface_ops() {
    for run in all_runs() {
        let a = Analysis::from_run(&run);
        let name = a.kind.name();
        // Phases sorted by start and non-empty.
        for w in a.phases.windows(2) {
            assert!(w[0].start <= w[1].start, "{name}: phases out of order");
        }
        // Every interface-layer data op is inside some phase:
        // total data ops across phases == analyzer's data op count.
        let phase_data: u64 = a.phases.iter().map(|p| p.data_ops).sum();
        assert_eq!(phase_data, a.data_ops, "{name}: phase data ops");
        let phase_meta: u64 = a.phases.iter().map(|p| p.meta_ops).sum();
        assert_eq!(phase_meta, a.meta_ops, "{name}: phase meta ops");
        // Phase byte totals match too.
        let phase_bytes: u64 = a.phases.iter().map(|p| p.bytes).sum();
        assert_eq!(
            phase_bytes,
            a.read_bytes + a.write_bytes,
            "{name}: phase bytes"
        );
    }
}

#[test]
fn file_profiles_partition_interface_bytes() {
    for run in all_runs() {
        let a = Analysis::from_run(&run);
        let name = a.kind.name();
        let file_read: u64 = a.files.iter().map(|f| f.read_bytes).sum();
        let file_write: u64 = a.files.iter().map(|f| f.write_bytes).sum();
        assert_eq!(file_read, a.read_bytes, "{name}: per-file reads");
        assert_eq!(file_write, a.write_bytes, "{name}: per-file writes");
        // FPP + shared partition the file set.
        assert_eq!(
            a.fpp_files() + a.shared_files(),
            a.n_files(),
            "{name}: partition"
        );
    }
}

#[test]
fn darshan_aggregates_agree_with_the_full_trace() {
    for run in all_runs() {
        let name = run.kind.name();
        let profile = DarshanProfile::from_records(&run.world.tracer.records());
        let c = run.columnar();
        // POSIX-level byte totals must match between the fold and the trace.
        let posix_reads = c.select(|i| {
            c.op[i] == OpKind::Read && c.layer[i] == recorder_sim::record::Layer::Posix
        });
        let t = profile.totals();
        // Darshan folds every layer's records; at minimum it must count at
        // least the POSIX bytes and the rank census must match.
        assert!(
            t.bytes_read >= c.sum_bytes(&posix_reads),
            "{name}: darshan read bytes"
        );
        let trace_ranks: std::collections::HashSet<u32> = c
            .select(|i| c.op[i].is_io())
            .iter()
            .map(|&i| c.rank[i as usize])
            .collect();
        assert_eq!(profile.nprocs as usize, trace_ranks.len(), "{name}: nprocs");
    }
}

#[test]
fn yaml_characterization_round_trips_for_all_workloads() {
    for run in all_runs() {
        let a = Analysis::from_run(&run);
        let ents = tables::entities_for(&a);
        let out = yaml::emit(&ents);
        let parsed = yaml::parse_summary(&out);
        assert_eq!(parsed.len(), ents.len(), "{}: entity count", a.kind.name());
        for ((ty, _, n_attrs), ent) in parsed.iter().zip(&ents) {
            assert_eq!(ty, ent.etype.label());
            assert_eq!(*n_attrs, ent.attrs.len());
        }
    }
}

#[test]
fn granularity_brackets_every_histogram_bucket_mass() {
    for run in all_runs() {
        let a = Analysis::from_run(&run);
        let (lo, hi) = a.granularity();
        assert!(lo <= hi, "{}: granularity order", a.kind.name());
        // The granularity bracket stays within the observed bucket range.
        if a.req_sizes.total() > 0 {
            let buckets: Vec<u64> = a.req_sizes.iter().map(|(b, _)| b).collect();
            let min_b = *buckets.first().expect("non-empty");
            let max_b = *buckets.last().expect("non-empty");
            assert!(
                lo >= min_b,
                "{}: lo {lo} < min bucket {min_b}",
                a.kind.name()
            );
            assert!(
                hi <= max_b,
                "{}: hi {hi} > max bucket {max_b}",
                a.kind.name()
            );
        }
    }
}

#[test]
fn trace_records_are_well_formed_everywhere() {
    for run in all_runs() {
        let name = run.kind.name();
        for r in run.world.tracer.records() {
            assert!(r.end >= r.start, "{name}: negative duration record {r:?}");
            if r.op.is_meta() {
                assert_eq!(r.bytes, 0, "{name}: metadata op moved bytes {r:?}");
            }
            if r.op.is_data() {
                assert!(r.file.is_some(), "{name}: data op without a file {r:?}");
            }
        }
    }
}

#[test]
fn tables_render_consistently_for_the_full_column_set() {
    let analyses: Vec<Analysis> = all_runs().iter().map(Analysis::from_run).collect();
    let cols: Vec<&Analysis> = analyses.iter().collect();
    for t in [
        tables::table1(&cols),
        tables::table3(&cols),
        tables::table4(&cols),
        tables::table5(&cols),
        tables::table6(&cols),
        tables::table10(&cols),
        tables::table11(&cols),
    ] {
        // Header has 7 columns (attribute + six workloads); every row too.
        assert_eq!(t.header.len(), 7, "{}", t.title);
        for row in &t.rows {
            assert_eq!(row.len(), 7, "{}: row {:?}", t.title, row);
        }
        let rendered = t.render();
        assert!(rendered.lines().count() >= t.rows.len() + 2);
    }
}
