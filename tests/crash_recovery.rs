//! Integration: the crash-recovery plane is deterministic and supervised.
//!
//! Whole-job crashes with checkpoint/restart must be invisible to the
//! scheduling substrate: analyses of crashed-and-recovered runs — with and
//! without an additional fault-plan degradation active — are byte-identical
//! between `Driver::Sequential` and `Driver::Parallel` at 1, 2, and 8
//! workers, and so is the full crash-sweep report. A supervised sweep
//! containing a deliberately panicking scenario still completes, returning
//! the healthy results plus a failure manifest.
//!
//! One `#[test]` on purpose: `rt::par::set_threads` is process-global, so
//! the worker-count sweep must not interleave with itself.

use sim_core::SimTime;
use storage_sim::FaultPlan;
use vani_suite::recorder::persist;
use vani_suite::recorder::tracer::Tracer;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::crashsweep;
use vani_suite::vani::sweep::{Driver, ScenarioSet};
use vani_suite::vani::{figures, tables, yaml};
use vani_suite::workloads as wl;

const CM1_SCALE: f64 = 0.01;
const CF_SCALE: f64 = 0.02;
const SEED: u64 = 9;

/// Two crash-recovering workloads as a scenario fan-out, rendered over
/// the full output surface (attribute table, entity YAML, figure panel):
/// CM1 killed mid-run *while an MDS brownout is active* (crash plus
/// degradation in one plan), and CosmoFlow killed by a node crash with no
/// other faults.
fn crashed_pair(driver: Driver, cm1_at: SimTime, cf_at: SimTime) -> String {
    let mut set = ScenarioSet::new(31);
    set.add("cm1/crash+brownout", move |_| {
        let mut p = wl::cm1::Cm1Params::scaled(CM1_SCALE);
        p.faults = FaultPlan::none()
            .with_mds_brownout(SimTime::ZERO, SimTime::from_secs(1_000_000_000), 4.0)
            .with_rank_crash(1, cm1_at);
        Analysis::from_run(&wl::cm1::run_with(p, CM1_SCALE, SEED))
    });
    set.add("cosmoflow/node-crash", move |_| {
        let mut p = wl::cosmoflow::CosmoflowParams::scaled(CF_SCALE);
        p.faults = FaultPlan::none().with_node_crash(0, cf_at);
        Analysis::from_run(&wl::cosmoflow::run_with(p, CF_SCALE, SEED))
    });
    let analyses = set.run(driver);
    let cols: Vec<&Analysis> = analyses.iter().collect();
    let mut out = tables::table1(&cols).render();
    for a in &cols {
        out.push_str(&yaml::emit(&tables::entities_for(a)));
        out.push_str(&figures::figure(a));
    }
    out
}

/// Analyze the salvaged prefix of a deliberately truncated capture of a
/// crashed CM1 run, rendered with its completeness annotation.
fn salvaged_analysis(text: &str, cm1_at: SimTime) -> String {
    let cut = &text[..text.len() * 2 / 3];
    let (salvaged, tc) = persist::parse_rowgroups_salvaged(cut).unwrap();
    let mut p = wl::cm1::Cm1Params::scaled(CM1_SCALE);
    p.faults = FaultPlan::none().with_rank_crash(1, cm1_at);
    let mut run = wl::cm1::run_with(p, CM1_SCALE, SEED);
    run.world.tracer = Tracer::from_columnar(salvaged);
    let a = Analysis::from_run(&run);
    yaml::emit(&tables::entities_with_completeness(&a, Some(&tc)))
}

#[test]
fn crash_recovery_is_deterministic_and_supervised() {
    // Healthy baselines anchor the crash instants mid-run.
    let cm1_m = wl::cm1::run(CM1_SCALE, SEED).runtime();
    let cf_m = wl::cosmoflow::run(CF_SCALE, SEED).runtime();
    let cm1_at = SimTime::from_nanos(cm1_m.as_nanos() / 2);
    let cf_at = SimTime::from_nanos(cf_m.as_nanos() / 2);

    // Sequential references.
    let pair_ref = crashed_pair(Driver::Sequential, cm1_at, cf_at);
    assert!(
        pair_ref.contains("restart_count"),
        "recovered runs must carry resilience attributes:\n{pair_ref}"
    );
    assert!(pair_ref.contains("time_lost_to_crashes"));
    let sweep_ref = crashsweep::crash_sweep(CF_SCALE, 7, Driver::Sequential).render();
    assert!(sweep_ref.contains("time-to-solution"));

    // A deliberately truncated capture of a crashed run, shared by every
    // worker count below: the salvaged-prefix analysis must not depend on
    // the analyzer's parallelism either.
    let crashed_capture = {
        let mut p = wl::cm1::Cm1Params::scaled(CM1_SCALE);
        p.faults = FaultPlan::none().with_rank_crash(1, cm1_at);
        let run = wl::cm1::run_with(p, CM1_SCALE, SEED);
        persist::render_rowgroups(run.world.tracer.columnar(), 64)
    };
    let salvage_ref = salvaged_analysis(&crashed_capture, cm1_at);
    assert!(salvage_ref.contains("trace_completeness"), "{salvage_ref}");

    for workers in [1usize, 2, 8] {
        vani_rt::par::set_threads(workers);
        let pair = crashed_pair(Driver::Parallel, cm1_at, cf_at);
        assert_eq!(
            pair, pair_ref,
            "crash-recovery output diverged at {workers} workers"
        );
        let sweep = crashsweep::crash_sweep(CF_SCALE, 7, Driver::Parallel).render();
        assert_eq!(
            sweep, sweep_ref,
            "crash-sweep report diverged at {workers} workers"
        );
        let salvage = salvaged_analysis(&crashed_capture, cm1_at);
        assert_eq!(
            salvage, salvage_ref,
            "salvaged-trace YAML diverged at {workers} workers"
        );
        vani_rt::par::set_threads(0);
    }

    // A supervised sweep mixing a panicking scenario with a
    // crash-recovering workload completes: the healthy result comes back,
    // the panic becomes a typed failure in the manifest.
    let mut set = ScenarioSet::new(23);
    set.add("boom", |_| -> String {
        panic!("synthetic scenario failure")
    });
    set.add("cm1/crash", move |_| {
        let mut p = wl::cm1::Cm1Params::scaled(CM1_SCALE);
        p.faults = FaultPlan::none().with_rank_crash(0, cm1_at);
        let a = Analysis::from_run(&wl::cm1::run_with(p, CM1_SCALE, SEED));
        yaml::emit(&tables::entities_for(&a))
    });
    let report = set.run_supervised(Driver::Parallel, 2);
    assert_eq!(report.results.len(), 2);
    let err = report.results[0].as_ref().expect_err("boom must fail");
    assert_eq!(err.id, "boom");
    assert_eq!(err.attempts, 2);
    assert!(err.message.contains("synthetic scenario failure"));
    let ok = report.results[1]
        .as_ref()
        .expect("the crashed CM1 run must recover");
    assert!(ok.contains("restart_count"));
    assert!(!report.is_clean());
    let manifest = report.manifest();
    assert!(
        manifest.contains("boom"),
        "manifest must name the failure:\n{manifest}"
    );
}
