//! Integration: seeded property tests for the column codec (delta + RLE +
//! raw fallback) and the compressed-chunk layer built on top of it.
//!
//! The codec is the foundation of chunked capture, the version-2 row-group
//! format, and the streaming analyzer: a column that fails to round-trip
//! bit-exactly would silently corrupt every profile downstream, so these
//! tests hammer it with adversarial shapes (random, constant, runs,
//! monotone ramps, width-boundary values) across many seeds and widths.

use vani_suite::recorder::chunk::{ChunkedTrace, CompressedChunk, COLUMN_WIDTHS};
use vani_suite::recorder::codec::{
    decode_column, decode_column_into, encode_column, from_hex, to_hex,
};
use vani_suite::recorder::record::{AppId, FileId, Layer, OpKind};
use vani_suite::recorder::ColumnarTrace;
use vani_suite::sim::SimTime;

/// xorshift64* — the same tiny deterministic generator the unit tests use.
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Clamp a value into a column width the way capture does (narrow columns
/// store narrow types; the codec must round-trip exactly at the boundary).
fn mask(v: u64, width: u8) -> u64 {
    match width {
        8 => v,
        w => v & ((1u64 << (8 * w as u32)) - 1),
    }
}

/// One seeded column of a given shape: 0 = uniform random, 1 = constant,
/// 2 = long runs (RLE-friendly), 3 = monotone ramp with small jitter
/// (delta-friendly), 4 = alternating extremes (worst case for both).
fn column(shape: u64, rng: &mut Rng, n: usize, width: u8) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    match shape {
        0 => {
            for _ in 0..n {
                out.push(mask(rng.next(), width));
            }
        }
        1 => {
            let v = mask(rng.next(), width);
            out.resize(n, v);
        }
        2 => {
            while out.len() < n {
                let v = mask(rng.next(), width);
                let run = 1 + rng.below(40) as usize;
                for _ in 0..run.min(n - out.len()) {
                    out.push(v);
                }
            }
        }
        3 => {
            let mut v = mask(rng.next(), width) / 2;
            for _ in 0..n {
                v = mask(v.wrapping_add(rng.below(1 << 12)), width);
                out.push(v);
            }
        }
        _ => {
            let hi = mask(u64::MAX, width);
            for i in 0..n {
                out.push(if i % 2 == 0 { 0 } else { hi });
            }
        }
    }
    out
}

/// Every (seed × shape × width × length) cell round-trips bit-exactly
/// through encode → decode, through the recycled-buffer decoder, and
/// through the hex transport used by the on-disk format.
#[test]
fn every_column_shape_round_trips_across_seeds_widths_and_lengths() {
    let mut scratch: Vec<u64> = Vec::new();
    for seed in 1..=10u64 {
        for shape in 0..5u64 {
            for &width in &[1u8, 2, 4, 8] {
                for &n in &[0usize, 1, 2, 63, 64, 65, 1000] {
                    let mut rng = Rng::new(seed * 1_000_003 + shape * 131 + width as u64);
                    let vals = column(shape, &mut rng, n, width);
                    let enc = encode_column(&vals, width);
                    let dec = decode_column(&enc, n, width).unwrap_or_else(|e| {
                        panic!(
                            "seed {seed} shape {shape} width {width} n {n}: decode failed: {e:?}"
                        )
                    });
                    assert_eq!(dec, vals, "seed {seed} shape {shape} width {width} n {n}");

                    // Recycled-buffer decode (the streaming path) agrees.
                    scratch.clear();
                    scratch.extend_from_slice(&[0xDEAD_BEEF; 7]); // stale garbage
                    scratch.clear();
                    decode_column_into(&enc, n, width, &mut scratch).expect("decode_into");
                    assert_eq!(scratch, vals);

                    // Hex transport (persistence) is lossless.
                    assert_eq!(from_hex(&to_hex(&enc)).as_deref(), Some(&enc[..]));
                }
            }
        }
    }
}

/// Truncated or tag-corrupted buffers must surface a typed `CodecError`,
/// never a panic and never a silently wrong column.
#[test]
fn corrupt_buffers_are_rejected_not_decoded() {
    let mut rng = Rng::new(42);
    let vals = column(3, &mut rng, 200, 8);
    let enc = encode_column(&vals, 8);
    assert!(
        decode_column(&enc[..enc.len() - 1], 200, 8).is_err(),
        "truncated payload"
    );
    assert!(
        decode_column(&[], 200, 8).is_err(),
        "empty buffer, nonzero rows"
    );
    let mut bad_tag = enc.clone();
    bad_tag[0] = 0xFF;
    assert!(
        decode_column(&bad_tag, 200, 8).is_err(),
        "unknown codec tag"
    );
    // Asking for a different row count than encoded must not panic either.
    let _ = decode_column(&enc, 199, 8);
    let _ = decode_column(&enc, 201, 8);
}

/// A seeded synthetic trace with every column population pattern the
/// workloads produce (interleaved ranks, a few hot files, metadata ops
/// without files, monotone timestamps, striding offsets).
fn synthetic_trace(n: usize, seed: u64) -> ColumnarTrace {
    let mut rng = Rng::new(seed);
    let mut c = ColumnarTrace::default();
    for r in 0..4 {
        c.file_paths.push(format!("/scratch/f{r}"));
    }
    c.app_names.push("app-a".into());
    c.app_names.push("app-b".into());
    let mut t = 1u64;
    for i in 0..n {
        t += 1_000 + rng.below(50_000);
        let rank = (i % 6) as u32;
        let (layer, op, file) = if i % 17 == 0 {
            (Layer::Posix, OpKind::Open, None)
        } else if i % 2 == 0 {
            (
                Layer::Posix,
                OpKind::Read,
                Some(FileId((rng.below(4)) as u32)),
            )
        } else {
            (
                Layer::Stdio,
                OpKind::Write,
                Some(FileId((rng.below(4)) as u32)),
            )
        };
        let bytes = 1 + rng.below(1 << 20);
        c.push_row(
            rank,
            rank / 2,
            AppId((i % 2) as u16),
            layer,
            op,
            SimTime(t),
            SimTime(t + 500 + rng.below(10_000)),
            file,
            (i as u64) * 4096 % (1 << 28),
            bytes,
        );
    }
    c
}

/// A sealed chunk round-trips all ten columns and its meta survives the
/// encode → `from_encoded` loop the loader uses, at several sizes.
#[test]
fn sealed_chunks_round_trip_and_revalidate() {
    for &n in &[1usize, 7, 256, 4096] {
        let c = synthetic_trace(n, 0xC0FFEE + n as u64);
        let mut scratch = Vec::new();
        let chunk = CompressedChunk::seal(&c, 0..c.len(), &mut scratch);
        assert_eq!(chunk.rows, n);

        let mut out = ColumnarTrace::default();
        out.file_paths = c.file_paths.clone();
        out.app_names = c.app_names.clone();
        chunk.decode_into(&mut out, true).expect("decode");
        assert_eq!(out, c, "n = {n}");

        // The loader path: encoded columns alone rebuild an equal chunk.
        let cols: [Vec<u8>; 10] = std::array::from_fn(|i| chunk.column(i).to_vec());
        let rebuilt = CompressedChunk::from_encoded(cols, n).expect("from_encoded");
        assert_eq!(rebuilt, chunk, "n = {n}");
    }
}

/// Chunking at any size is lossless and size-invariant: `to_columnar`
/// returns the original trace and the compressed footprint stays within a
/// sane envelope (strictly smaller than raw for these shapes).
#[test]
fn chunked_trace_is_lossless_at_every_chunk_size() {
    let c = synthetic_trace(5000, 9);
    let raw_bytes: usize = 5000
        * COLUMN_WIDTHS
            .iter()
            .map(|&(_, w)| w as usize)
            .sum::<usize>();
    for &rows in &[64usize, 1000, 4096, 1 << 20] {
        let t = ChunkedTrace::from_columnar(&c, rows);
        assert_eq!(t.len(), c.len());
        assert_eq!(t.chunks.len(), c.len().div_ceil(rows));
        assert_eq!(
            t.to_columnar().expect("to_columnar"),
            c,
            "chunk_rows = {rows}"
        );
        assert!(
            t.compressed_bytes() < raw_bytes,
            "chunk_rows = {rows}: {} compressed vs {raw_bytes} raw",
            t.compressed_bytes()
        );
    }
}
