//! Integration: failure paths propagate cleanly through the layers.

use storage_sim::IoErr;
use vani_suite::cluster::topology::RankId;
use vani_suite::layers::posix::{self, OpenFlags};
use vani_suite::layers::stdio;
use vani_suite::layers::world::IoWorld;
use vani_suite::sim::{Dur, SimTime};

#[test]
fn enospc_surfaces_through_posix_and_stdio() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let mut cfg = w.storage.pfs().config().clone();
    cfg.capacity = 1 << 20; // 1 MiB file system
    w.storage.pfs_mut().set_config(cfg).unwrap();
    let r = RankId(0);
    // The reduced capacity now takes effect on the PFS itself: a 2 MiB
    // write into the 1 MiB file system must fail with ENOSPC.
    let (fd, t) = posix::open(
        &mut w,
        r,
        "/p/gpfs1/fill",
        OpenFlags::write_create(),
        SimTime::ZERO,
    );
    let fd = fd.unwrap();
    let (res, t) = posix::write_pattern(&mut w, r, fd, 2 << 20, 1, t);
    assert_eq!(
        res.unwrap_err(),
        IoErr::NoSpace,
        "2 MiB cannot fit in a 1 MiB PFS"
    );
    // A write that fits still succeeds (the failed write left no residue).
    let (ok, t) = posix::write_pattern(&mut w, r, fd, 512 << 10, 1, t);
    ok.unwrap();
    // The node-local tier is independent: shm still enforces its own limit.
    let (sfd, t) = posix::open(&mut w, r, "/dev/shm/fill", OpenFlags::write_create(), t);
    let sfd = sfd.unwrap();
    let (res, t) = posix::write_pattern(&mut w, r, sfd, 200 << 30, 1, t);
    assert_eq!(
        res.unwrap_err(),
        IoErr::NoSpace,
        "200 GiB cannot fit in /dev/shm"
    );
    // And stdio over the full PFS surfaces the same typed error.
    let (sh, t) = stdio::fopen(&mut w, r, "/p/gpfs1/fill2", "w", t);
    let sh = sh.unwrap();
    let (res, t) = stdio::fwrite_pattern(&mut w, r, sh, 1 << 20, 1, t);
    let flush = stdio::fclose(&mut w, r, sh, t).0;
    assert!(
        res.is_err() || flush.is_err(),
        "ENOSPC must surface through stdio (write or flush-on-close)"
    );
}

#[test]
fn fd_exhaustion_and_recovery() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let r = RankId(0);
    w.proc_mut(r).max_fds = 4;
    let mut t = SimTime::ZERO;
    let mut fds = Vec::new();
    for i in 0..4 {
        let (fd, t2) = posix::open(
            &mut w,
            r,
            &format!("/p/gpfs1/f{i}"),
            OpenFlags::write_create(),
            t,
        );
        fds.push(fd.unwrap());
        t = t2;
    }
    let (err, t) = posix::open(&mut w, r, "/p/gpfs1/f4", OpenFlags::write_create(), t);
    assert_eq!(err.unwrap_err(), IoErr::TooManyOpenFiles);
    let (_, t) = posix::close(&mut w, r, fds[0], t);
    let (ok, _) = posix::open(&mut w, r, "/p/gpfs1/f4", OpenFlags::write_create(), t);
    ok.unwrap();
}

#[test]
fn missing_files_fail_cleanly_at_every_layer() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let r = RankId(0);
    let (e1, t) = posix::open(
        &mut w,
        r,
        "/p/gpfs1/nope",
        OpenFlags::read_only(),
        SimTime::ZERO,
    );
    assert_eq!(e1.unwrap_err(), IoErr::NotFound);
    let (e2, t2) = stdio::fopen(&mut w, r, "/p/gpfs1/nope", "r", t);
    assert_eq!(e2.unwrap_err(), IoErr::NotFound);
    let (e3, _) = io_layers::hdf5::open(&mut w, r, "/p/gpfs1/nope.h5", Default::default(), t2);
    assert_eq!(e3.err().unwrap(), IoErr::NotFound);
}

#[test]
fn deadlock_detection_catches_missing_gate() {
    use vani_suite::cluster::engine::{
        Blocker, Engine, FnScript, GateId, Outcome, RankScript, StepEffect,
    };
    use vani_suite::cluster::mpi::MpiCostModel;
    let world = ();
    let script = FnScript(|_w: &mut (), _r, _n| StepEffect {
        outcome: Outcome::WaitGate(GateId(1)),
        open_gates: vec![],
    });
    let scripts: Vec<Box<dyn RankScript<()>>> = vec![Box::new(script)];
    let cost = MpiCostModel {
        latency: sim_core::Dur::from_micros(1),
        bandwidth: 1 << 30,
    };
    let mut e = Engine::new(world, scripts, cost);
    // The engine reports the deadlock as a typed error naming the exact
    // rank and gate — no panic, no unwinding.
    let err = e.run().unwrap_err();
    assert_eq!(err.blocked.len(), 1);
    assert_eq!(err.blocked[0].1, Blocker::Gate(GateId(1)));
    let msg = err.to_string();
    assert!(
        msg.contains("deadlock"),
        "diagnostic must say deadlock: {msg}"
    );
    assert!(
        msg.contains("gate 1"),
        "diagnostic must name the gate: {msg}"
    );
    assert!(
        msg.contains("rank0") || msg.contains("rank 0") || msg.contains("r0"),
        "diagnostic must name the rank: {msg}"
    );
}
