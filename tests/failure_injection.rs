//! Integration: failure paths propagate cleanly through the layers.

use vani_suite::cluster::topology::RankId;
use vani_suite::layers::posix::{self, OpenFlags};
use vani_suite::layers::stdio;
use vani_suite::layers::world::IoWorld;
use vani_suite::sim::{Dur, SimTime};
use storage_sim::IoErr;

#[test]
fn enospc_surfaces_through_posix_and_stdio() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let mut cfg = w.storage.pfs().config().clone();
    cfg.capacity = 1 << 20; // 1 MiB file system
    w.storage.pfs_mut().set_config(cfg);
    // Rebuild the PFS with the tiny capacity by writing until it fills.
    let r = RankId(0);
    let (fd, t) = posix::open(&mut w, r, "/p/gpfs1/fill", OpenFlags::write_create(), SimTime::ZERO);
    let fd = fd.unwrap();
    // Note: capacity was set after construction; the store still enforces
    // the original 24 PiB. Use shm (128 GiB per node) via huge writes
    // instead to observe ENOSPC deterministically.
    let (sfd, t2) = posix::open(&mut w, r, "/dev/shm/fill", OpenFlags::write_create(), t);
    let sfd = sfd.unwrap();
    let (res, t3) = posix::write_pattern(&mut w, r, sfd, 200 << 30, 1, t2);
    assert_eq!(res.unwrap_err(), IoErr::NoSpace, "200 GiB cannot fit in /dev/shm");
    let (ok, _) = posix::write_pattern(&mut w, r, fd, 1 << 20, 1, t3);
    ok.unwrap();
}

#[test]
fn fd_exhaustion_and_recovery() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let r = RankId(0);
    w.proc_mut(r).max_fds = 4;
    let mut t = SimTime::ZERO;
    let mut fds = Vec::new();
    for i in 0..4 {
        let (fd, t2) = posix::open(&mut w, r, &format!("/p/gpfs1/f{i}"), OpenFlags::write_create(), t);
        fds.push(fd.unwrap());
        t = t2;
    }
    let (err, t) = posix::open(&mut w, r, "/p/gpfs1/f4", OpenFlags::write_create(), t);
    assert_eq!(err.unwrap_err(), IoErr::TooManyOpenFiles);
    let (_, t) = posix::close(&mut w, r, fds[0], t);
    let (ok, _) = posix::open(&mut w, r, "/p/gpfs1/f4", OpenFlags::write_create(), t);
    ok.unwrap();
}

#[test]
fn missing_files_fail_cleanly_at_every_layer() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
    let r = RankId(0);
    let (e1, t) = posix::open(&mut w, r, "/p/gpfs1/nope", OpenFlags::read_only(), SimTime::ZERO);
    assert_eq!(e1.unwrap_err(), IoErr::NotFound);
    let (e2, t2) = stdio::fopen(&mut w, r, "/p/gpfs1/nope", "r", t);
    assert_eq!(e2.unwrap_err(), IoErr::NotFound);
    let (e3, _) = io_layers::hdf5::open(&mut w, r, "/p/gpfs1/nope.h5", Default::default(), t2);
    assert_eq!(e3.err().unwrap(), IoErr::NotFound);
}

#[test]
fn deadlock_detection_catches_missing_gate() {
    use vani_suite::cluster::engine::{Engine, FnScript, GateId, Outcome, RankScript, StepEffect};
    use vani_suite::cluster::mpi::MpiCostModel;
    let world = ();
    let script = FnScript(|_w: &mut (), _r, _n| StepEffect {
        outcome: Outcome::WaitGate(GateId(1)),
        open_gates: vec![],
    });
    let scripts: Vec<Box<dyn RankScript<()>>> = vec![Box::new(script)];
    let cost = MpiCostModel { latency: sim_core::Dur::from_micros(1), bandwidth: 1 << 30 };
    let mut e = Engine::new(world, scripts, cost);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.run()));
    assert!(res.is_err(), "deadlock must panic loudly");
}
