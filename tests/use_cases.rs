//! Integration: the §V use cases reproduce the paper's *shape* — the
//! reconfigured variant wins by a materially large factor.

use vani_suite::vani::reconfig;

#[test]
fn figure7_preload_speedup_band() {
    let pts = reconfig::figure7(0.02, &[8, 16], 7);
    for p in &pts {
        assert!(
            p.speedup() > 1.3,
            "fig7 at {} nodes: speedup {:.2} too small",
            p.nodes,
            p.speedup()
        );
        assert!(p.optimized_io < p.baseline_io);
    }
}

#[test]
fn figure8_node_local_speedup_band() {
    let pts = reconfig::figure8(0.1, &[8, 16], 7);
    for p in &pts {
        assert!(
            p.speedup() > 4.0,
            "fig8 at {} nodes: speedup {:.2} too small",
            p.nodes,
            p.speedup()
        );
    }
    // Strong scaling: per-rank baseline I/O shrinks sublinearly or not at
    // all (contention), but never grows faster than the work shrinks.
    assert!(pts[1].baseline_io < pts[0].baseline_io * 1.5);
}
