//! Integration: the whole stack is deterministic — the same seed yields
//! bit-identical schedules for every workload.

use vani_suite::workloads as wl;

fn fingerprint(run: &exemplar_workloads::WorkloadRun) -> (u64, usize, u64) {
    let c = run.columnar();
    let sum: u64 = c.end.iter().fold(0u64, |acc, &e| acc.wrapping_add(e));
    (run.report.makespan.as_nanos(), c.len(), sum)
}

#[test]
fn all_workloads_are_deterministic() {
    let pairs: Vec<(&str, Box<dyn Fn() -> exemplar_workloads::WorkloadRun>)> = vec![
        ("cm1", Box::new(|| wl::cm1::run(0.01, 5))),
        ("hacc", Box::new(|| wl::hacc::run(0.01, 5))),
        ("cosmoflow", Box::new(|| wl::cosmoflow::run(0.001, 5))),
        ("jag", Box::new(|| wl::jag::run(0.01, 5))),
        ("montage", Box::new(|| wl::montage::run(0.01, 5))),
        ("pegasus", Box::new(|| wl::montage_pegasus::run(0.01, 5))),
    ];
    for (name, f) in pairs {
        let a = fingerprint(&f());
        let b = fingerprint(&f());
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

/// The `vani_rt::par` kernels must be bit-identical to their sequential
/// fallback: chunk boundaries depend only on input length and chunk results
/// combine in chunk order, so the worker count must never change a result —
/// not even the floating-point rounding of a non-associative reduction.
#[test]
fn parallel_kernels_match_sequential_bit_for_bit() {
    use vani_rt::par;

    let run = wl::cm1::run(0.01, 5);
    let c = run.columnar();
    let sel = c.data_ops(None);

    let compute = || {
        let bytes = c.sum_bytes(&sel);
        let time = c.sum_time(&sel);
        let mut by_rank: Vec<(u32, u64)> = c
            .group_by_rank(&sel)
            .into_iter()
            .map(|(k, g)| (k, g.bytes))
            .collect();
        by_rank.sort_unstable();
        // A non-associative f64 fold: parallel summation order matters.
        let mean_bw: f64 = par::par_reduce(
            &sel,
            || 0.0f64,
            |acc, &i| acc + c.dur(i as usize).bandwidth(c.bytes[i as usize]),
            |a, b| a + b,
        );
        (bytes, time, by_rank, mean_bw.to_bits())
    };

    par::set_threads(1);
    let seq = compute();
    par::set_threads(8);
    let par8 = compute();
    par::set_threads(0); // back to auto
    assert_eq!(seq, par8, "parallel results diverged from sequential");
}

#[test]
fn different_seeds_change_jittered_timings() {
    let a = wl::hacc::run(0.02, 1);
    let b = wl::hacc::run(0.02, 2);
    // Same op counts (structure is seed-independent) ...
    assert_eq!(a.world.tracer.len(), b.world.tracer.len());
    // ... but service-time jitter shifts the makespan.
    assert_ne!(a.report.makespan, b.report.makespan);
}
