//! Integration: the whole stack is deterministic — the same seed yields
//! bit-identical schedules for every workload.

use vani_suite::workloads as wl;

fn fingerprint(run: &exemplar_workloads::WorkloadRun) -> (u64, usize, u64) {
    let c = run.columnar();
    let sum: u64 = c.end.iter().fold(0u64, |acc, &e| acc.wrapping_add(e));
    (run.report.makespan.as_nanos(), c.len(), sum)
}

#[test]
fn all_workloads_are_deterministic() {
    let pairs: Vec<(&str, Box<dyn Fn() -> exemplar_workloads::WorkloadRun>)> = vec![
        ("cm1", Box::new(|| wl::cm1::run(0.01, 5))),
        ("hacc", Box::new(|| wl::hacc::run(0.01, 5))),
        ("cosmoflow", Box::new(|| wl::cosmoflow::run(0.001, 5))),
        ("jag", Box::new(|| wl::jag::run(0.01, 5))),
        ("montage", Box::new(|| wl::montage::run(0.01, 5))),
        ("pegasus", Box::new(|| wl::montage_pegasus::run(0.01, 5))),
    ];
    for (name, f) in pairs {
        let a = fingerprint(&f());
        let b = fingerprint(&f());
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn different_seeds_change_jittered_timings() {
    let a = wl::hacc::run(0.02, 1);
    let b = wl::hacc::run(0.02, 2);
    // Same op counts (structure is seed-independent) ...
    assert_eq!(a.world.tracer.len(), b.world.tracer.len());
    // ... but service-time jitter shifts the makespan.
    assert_ne!(a.report.makespan, b.report.makespan);
}
