//! Integration: the scenario-parallel driver is invisible in the output.
//!
//! Everything the repro harness renders — paper-six attribute tables,
//! entity YAML, the fault-sweep report — must be byte-identical between
//! `Driver::Sequential` and `Driver::Parallel` at 1, 2, and 8 workers,
//! with and without an active `FaultPlan`.
//!
//! One `#[test]` on purpose: `rt::par::set_threads` is process-global, so
//! the worker-count sweep must not interleave with itself.

use sim_core::SimTime;
use storage_sim::FaultPlan;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::sweep::{self, Driver, ScenarioSet};
use vani_suite::vani::{tables, yaml};
use vani_suite::workloads as wl;

const SCALE: f64 = 0.01;
const FAULT_SCALE: f64 = 0.02;
const SEED: u64 = 5;

/// Tables + per-run entity YAML: the full rendered surface of a paper-six
/// fan-out.
fn render_six(analyses: &[Analysis]) -> String {
    let cols: Vec<&Analysis> = analyses.iter().collect();
    let mut out = String::new();
    out.push_str(&tables::table1(&cols).render());
    out.push_str(&tables::table3(&cols).render());
    out.push_str(&tables::table6(&cols).render());
    for a in &cols {
        out.push_str(&yaml::emit(&tables::entities_for(a)));
    }
    out
}

/// A faulted pair of workloads as a custom scenario set: covers the
/// "active FaultPlan" half outside the built-in fault sweep.
fn faulted_pair(driver: Driver) -> String {
    let plan = FaultPlan::none()
        .with_mds_brownout(SimTime::ZERO, SimTime::from_secs(1_000_000_000), 8.0)
        .with_error_rates(0.01, 0.0);
    let mut set = ScenarioSet::new(17);
    {
        let plan = plan.clone();
        set.add("cm1/faulted", move |_| {
            let mut p = wl::cm1::Cm1Params::scaled(SCALE);
            p.faults = plan.clone();
            Analysis::from_run(&wl::cm1::run_with(p, SCALE, SEED))
        });
    }
    set.add("cosmoflow/faulted", move |_| {
        let mut p = wl::cosmoflow::CosmoflowParams::scaled(FAULT_SCALE);
        p.faults = plan.clone();
        Analysis::from_run(&wl::cosmoflow::run_with(p, FAULT_SCALE, SEED))
    });
    set.run(driver)
        .iter()
        .map(|a| yaml::emit(&tables::entities_for(a)))
        .collect()
}

#[test]
fn parallel_driver_is_byte_identical_to_sequential() {
    // Sequential references.
    let six_ref = render_six(&sweep::paper_six(SCALE, SEED, Driver::Sequential));
    let sweep_ref = sweep::fault_sweep(FAULT_SCALE, 7, 20.0, Driver::Sequential).render();
    let faulted_ref = faulted_pair(Driver::Sequential);
    assert!(six_ref.contains("CM1"), "tables must render something");
    assert!(sweep_ref.contains("MDS brownout"));
    assert!(faulted_ref.contains("osmoflow"));

    for workers in [1usize, 2, 8] {
        vani_rt::par::set_threads(workers);
        let six = render_six(&sweep::paper_six(SCALE, SEED, Driver::Parallel));
        assert_eq!(
            six, six_ref,
            "paper-six output diverged at {workers} workers"
        );
        let fsw = sweep::fault_sweep(FAULT_SCALE, 7, 20.0, Driver::Parallel).render();
        assert_eq!(
            fsw, sweep_ref,
            "fault-sweep report diverged at {workers} workers"
        );
        let faulted = faulted_pair(Driver::Parallel);
        assert_eq!(
            faulted, faulted_ref,
            "faulted-pair YAML diverged at {workers} workers"
        );
        vani_rt::par::set_threads(0);
    }
}
