//! Integration: the deterministic fault plane, end to end.
//!
//! Exercises the `repro -- fault-sweep` experiments through the public API
//! and pins the paper-level claims: metadata-bound workloads are far more
//! brownout-sensitive than data-bound ones, a dead NSD server costs about
//! its capacity share plus contention, and the Figure 7 preload-to-shm
//! reconfiguration doubles as fault isolation.

use vani_suite::sim::SimTime;
use vani_suite::storage::FaultPlan;
use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::{faultsweep, tables, yaml};
use vani_suite::workloads as wl;

#[test]
fn mds_brownout_hits_cosmoflow_at_least_twice_as_hard_as_hacc() {
    let (cosmo, hacc) = faultsweep::mds_brownout_impact(0.02, 7, 20.0);
    assert!(
        cosmo.degradation() > 1.5,
        "the brownout must visibly slow CosmoFlow: {:.2}x",
        cosmo.degradation()
    );
    assert!(
        cosmo.degradation() >= 2.0 * hacc.degradation(),
        "metadata-bound CosmoFlow ({:.2}x) must degrade >= 2x more than data-bound HACC ({:.2}x)",
        cosmo.degradation(),
        hacc.degradation()
    );
}

#[test]
fn single_nsd_outage_costs_about_the_server_share() {
    let b = faultsweep::nsd_outage_bench(11);
    assert!(b.degradation() >= b.server_share() * 0.5);
    assert!(b.degradation() <= (b.server_share() * 3.0).min(0.95));
}

#[test]
fn preload_to_shm_is_a_fault_shield() {
    let s = faultsweep::shm_shield_impact(0.02, 7);
    assert!(
        s.baseline.degradation() > 1.5,
        "baseline: {:.2}x",
        s.baseline.degradation()
    );
    assert!(
        s.preloaded.degradation() < 1.0 + 0.5 * (s.baseline.degradation() - 1.0),
        "preload ({:.2}x) must shield at least half of the baseline's slowdown ({:.2}x)",
        s.preloaded.degradation(),
        s.baseline.degradation()
    );
    assert!(s.shielding() > 0.5);
}

/// Every fault kind at once on a representative workload mix: nothing may
/// panic, every run completes, and the analyzer surfaces the resilience
/// attributes in the entity emission.
#[test]
fn injected_faults_never_panic_and_surface_as_attributes() {
    let end = SimTime::from_secs(1_000_000);
    let plan = FaultPlan::none()
        .with_nsd_outage(1, SimTime::ZERO, end)
        .with_mds_brownout(SimTime::ZERO, end, 4.0)
        .with_nsd_brownout(SimTime::ZERO, end, 2.0)
        .with_straggler(0, 1.3)
        .with_error_rates(0.05, 0.02);

    let mut cm1 = wl::cm1::Cm1Params::scaled(0.01);
    cm1.faults = plan.clone();
    let mut cosmo = wl::cosmoflow::CosmoflowParams::scaled(0.002);
    cosmo.faults = plan.clone();
    let mut montage = wl::montage::MontageParams::scaled(0.01);
    montage.faults = plan;

    let mut any_rerouted = false;
    for run in [
        wl::cm1::run_with(cm1, 0.01, 13),
        wl::cosmoflow::run_with(cosmo, 0.002, 13),
        wl::montage::run_with(montage, 0.01, 13),
    ] {
        let a = Analysis::from_run(&run);
        assert!(
            a.fault_events > 0,
            "{}: the 5% error rate must fire",
            run.kind.name()
        );
        assert_eq!(
            a.fault_events,
            a.retry_events,
            "{}: every absorbed fault is followed by exactly one retry",
            run.kind.name()
        );
        assert!(
            a.retried_bytes > 0,
            "{}: retried data ops re-submit their payload",
            run.kind.name()
        );
        assert!(a.time_lost_to_faults() > 0.0);
        assert!(a.error_rate() > 0.0 && a.error_rate() < 1.0);
        assert!(a.retry_amplification() > 0.0);
        // A faulted run's YAML carries the resilience attributes ...
        let y = yaml::emit(&tables::entities_for(&a));
        assert!(
            y.contains("error_rate"),
            "{}: YAML must carry error_rate",
            run.kind.name()
        );
        assert!(y.contains("retry_amplification"));
        assert!(y.contains("time_lost_to_faults"));
        // ... and, when the dead server's stripes were actually touched
        // (small cached writes may never reach it), names the rerouted
        // bytes per server.
        if a.rerouted_by_server.iter().sum::<u64>() > 0 {
            any_rerouted = true;
            assert!(y.contains("nsd_outage_impact"));
        }
    }
    assert!(
        any_rerouted,
        "at least one workload must hit the dead server's stripes"
    );

    // A fault-free run emits none of this: the attributes are strictly
    // additive and golden outputs stay byte-identical.
    let clean = Analysis::from_run(&wl::cm1::run(0.01, 13));
    let y = yaml::emit(&tables::entities_for(&clean));
    assert!(!y.contains("error_rate"));
    assert!(!y.contains("nsd_outage_impact"));
}

/// Same plan, same seed: the whole faulted stack is deterministic.
#[test]
fn faulted_runs_are_deterministic() {
    let end = SimTime::from_secs(1_000_000);
    let plan = FaultPlan::none()
        .with_nsd_brownout(SimTime::ZERO, end, 2.0)
        .with_error_rates(0.05, 0.02);
    let run = |seed: u64| {
        let mut p = wl::cm1::Cm1Params::scaled(0.01);
        p.faults = plan.clone();
        let r = wl::cm1::run_with(p, 0.01, seed);
        (r.runtime(), Analysis::from_run(&r))
    };
    let (t1, a1) = run(21);
    let (t2, a2) = run(21);
    assert_eq!(t1, t2, "same seed, same plan: identical makespan");
    assert_eq!(a1, a2, "same seed, same plan: identical analysis");
    let (t3, a3) = run(22);
    assert!(
        t3 != t1 || a3 != a1,
        "a different seed should perturb the faulted run"
    );
}
