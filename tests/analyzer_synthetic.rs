//! Unit-level analyzer behavior against hand-built synthetic runs: phase
//! detection boundaries, access-pattern classification, and interface
//! detection, exercised through a minimal scripted workload so every record
//! is under the test's control.

use vani_suite::cluster::engine::{RankScript, StepEffect};
use vani_suite::cluster::topology::RankId;
use vani_suite::layers::posix::{self, Fd, OpenFlags, Whence};
use vani_suite::layers::world::IoWorld;
use vani_suite::sim::{Dur, SimTime};
use vani_suite::vani::analyzer::Analysis;
use vani_suite::workloads::harness::{execute, WorkloadKind};

/// A scripted op for the synthetic rank.
#[derive(Clone)]
enum SynOp {
    /// Write `len` bytes at the current position.
    Write(u64),
    /// Read `len` bytes at the current position.
    Read(u64),
    /// Seek to an absolute offset.
    Seek(u64),
    /// Idle (compute) for the duration — creates inter-phase gaps.
    Idle(Dur),
}

struct SynScript {
    path: String,
    ops: Vec<SynOp>,
    idx: usize,
    fd: Option<Fd>,
}

impl RankScript<IoWorld> for SynScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        if self.fd.is_none() {
            let (fd, t) = posix::open(w, rank, &self.path, OpenFlags::write_create(), now);
            self.fd = Some(fd.expect("open"));
            return StepEffect::busy_until(t);
        }
        let fd = self.fd.expect("opened");
        if self.idx >= self.ops.len() {
            let (_, t) = posix::close(w, rank, fd, now);
            self.idx += 1;
            if self.idx == self.ops.len() + 1 {
                return StepEffect::busy_until(t);
            }
            return StepEffect::done();
        }
        let op = self.ops[self.idx].clone();
        self.idx += 1;
        let t = match op {
            SynOp::Write(len) => posix::write_pattern(w, rank, fd, len, 1, now).1,
            SynOp::Read(len) => posix::read(w, rank, fd, len, now).1,
            SynOp::Seek(to) => posix::lseek(w, rank, fd, to as i64, Whence::Set, now).1,
            SynOp::Idle(d) => w.compute(rank, d, now),
        };
        StepEffect::busy_until(t)
    }
}

fn run_script(ops: Vec<SynOp>) -> Analysis {
    let mut world = IoWorld::lassen(1, 1, Dur::from_secs(3600), 3);
    world.set_app(RankId(0), "synthetic");
    let script = SynScript {
        path: "/p/gpfs1/syn.bin".to_string(),
        ops,
        idx: 0,
        fd: None,
    };
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = vec![Box::new(script)];
    let run = execute(WorkloadKind::Ior, 1.0, world, scripts, vec![]);
    Analysis::from_run(&run)
}

#[test]
fn two_bursts_separated_by_a_long_idle_are_two_phases() {
    // Burst 1: ten writes. Long idle (≫ runtime/50). Burst 2: ten reads.
    let mut ops = vec![SynOp::Write(1 << 20); 10];
    ops.push(SynOp::Idle(Dur::from_secs(60)));
    ops.push(SynOp::Seek(0));
    ops.extend(vec![SynOp::Read(1 << 20); 10]);
    let a = run_script(ops);
    assert_eq!(a.phases.len(), 2, "expected exactly two phases");
    assert!(a.phases[0].data_ops >= 10);
    assert!(a.phases[1].data_ops >= 10);
    assert!(a.phases[1].start > a.phases[0].end);
}

#[test]
fn back_to_back_bursts_are_one_phase() {
    let mut ops = vec![SynOp::Write(1 << 20); 10];
    ops.push(SynOp::Seek(0));
    ops.extend(vec![SynOp::Read(1 << 20); 10]);
    let a = run_script(ops);
    assert_eq!(a.phases.len(), 1, "no gap → one phase");
}

#[test]
fn monotone_offsets_classify_sequential() {
    let a = run_script(vec![SynOp::Write(4096); 50]);
    assert_eq!(a.access_pattern, "Seq");
}

#[test]
fn shuffled_offsets_classify_mixed() {
    // Seek backwards before most writes: offsets are non-monotonic.
    let mut ops = Vec::new();
    for i in 0..30u64 {
        let dst = if i % 2 == 0 {
            (30 - i) * 8192
        } else {
            i * 8192
        };
        ops.push(SynOp::Seek(dst));
        ops.push(SynOp::Write(4096));
    }
    let a = run_script(ops);
    assert_eq!(a.access_pattern, "Mixed");
}

#[test]
fn pure_posix_run_detects_posix_interface() {
    let a = run_script(vec![SynOp::Write(4096); 4]);
    assert_eq!(a.interface, "POSIX");
    assert_eq!(a.n_files(), 1);
    assert_eq!(a.fpp_files(), 1);
    assert_eq!(a.shared_files(), 0);
}

#[test]
fn dominant_transfer_size_reported_per_phase() {
    // 20 writes of 4 KiB and 2 of 1 MiB: the phase's dominant transfer is
    // the 4 KiB bucket.
    let mut ops = vec![SynOp::Write(4096); 20];
    ops.extend(vec![SynOp::Write(1 << 20); 2]);
    let a = run_script(ops);
    assert_eq!(a.phases.len(), 1);
    assert_eq!(a.phases[0].dominant_xfer, 4096);
}

#[test]
fn io_time_fraction_reflects_idle_share() {
    // One tiny write and a huge idle: I/O fraction must be near zero.
    let a = run_script(vec![SynOp::Write(4096), SynOp::Idle(Dur::from_secs(100))]);
    assert!(a.io_time_frac < 0.01, "io frac {}", a.io_time_frac);
    // All I/O and no idle: fraction should be large.
    let b = run_script(vec![SynOp::Write(8 << 20); 30]);
    assert!(b.io_time_frac > 0.5, "io frac {}", b.io_time_frac);
}
