//! Torture suite for the crash-consistent spill store: every injected
//! fault class, at several target chunks, must leave a log that recovery
//! walks without panicking, salvaging exactly the longest committed
//! prefix with a typed diagnostic — and analyzing that recovered prefix
//! must be bit-identical to in-memory streaming over the same records at
//! any worker count.
//!
//! Fault classes (see `recorder_sim::spill::SpillFaultKind`):
//!
//! * `TornFinalWrite` — footer torn, process dies: all chunks survive,
//!   the log is unsealed, and the torn footer is quarantined as damage.
//! * `PartialAppend` — a chunk frame cut mid-write: the prefix before it
//!   survives, the torn frame is quarantined.
//! * `Enospc` — typed resource error; the RAII guard leaves no litter.
//! * `BitFlip` — latent corruption: the file seals normally and the flip
//!   only surfaces as a checksum quarantine when a reader verifies.
//! * `CrashBeforeCommit` — chunk written, no commit marker: the chunk is
//!   readable but quarantined (no fsync ordering covers it).
//!
//! One worker-sweep `#[test]` on purpose: `rt::par::set_threads` is
//! process-global, so the sweep must not interleave with itself.

use std::path::PathBuf;

use vani_suite::recorder::chunk::ChunkedTrace;
use vani_suite::recorder::spill::{
    fsck, spill_columnar, QuarantineReason, SpillError, SpillFaultKind, SpillFaultPlan, SpillSource,
};
use vani_suite::recorder::ColumnarTrace;
use vani_suite::rt::par;
use vani_suite::sim::Dur;
use vani_suite::vani::analyzer::TraceProfile;
use vani_suite::workloads as wl;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vani_spill_torture");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// One capture shared by every fault case: a real workload trace sealed
/// into enough chunks that prefix boundaries are interesting.
fn capture() -> (ColumnarTrace, Dur, usize) {
    let run = wl::hacc::run(0.01, 5);
    let c = run.columnar();
    let chunk_rows = (c.len() / 7).max(16);
    (c, run.runtime(), chunk_rows)
}

/// Inject `kind` at `target`, return the surviving log's path and the
/// number of chunks recovery must commit. Asserts the capture-side
/// contract of each class (typed error vs sealed file) on the way.
fn tortured_log(
    c: &ColumnarTrace,
    chunk_rows: usize,
    n_chunks: u64,
    kind: SpillFaultKind,
    target: u64,
) -> (PathBuf, u64) {
    let path = tmp(&format!("{}-{target}.vsp3", kind.name()));
    let plan = SpillFaultPlan::at_chunk(kind, 0x7042_0000 ^ target, target);
    match spill_columnar(c, chunk_rows, &path, plan) {
        // Latent fault: the write path never notices a bit flip.
        Ok(sum) => {
            assert_eq!(
                kind,
                SpillFaultKind::BitFlip,
                "only BitFlip seals successfully"
            );
            (sum.path, target)
        }
        Err(SpillError::Injected { fault, path }) => {
            assert_eq!(fault, kind, "injected fault reports its own class");
            let committed = match kind {
                // The footer tears after every chunk committed.
                SpillFaultKind::TornFinalWrite => n_chunks,
                // The torn / uncommitted chunk itself is lost.
                SpillFaultKind::PartialAppend | SpillFaultKind::CrashBeforeCommit => target,
                SpillFaultKind::Enospc | SpillFaultKind::BitFlip => {
                    unreachable!("not crash-class")
                }
            };
            (path, committed)
        }
        Err(e) => panic!("{kind}: unexpected spill error {e}"),
    }
}

/// The tentpole acceptance gate: every fault point recovers the longest
/// committed prefix (never a panic), and analyzing the recovered prefix
/// off disk equals in-memory streaming over the same records at 1, 2,
/// and 8 workers.
#[test]
fn every_fault_class_recovers_the_longest_committed_prefix_at_all_worker_counts() {
    let (c, rt, chunk_rows) = capture();
    let mem = ChunkedTrace::from_columnar(&c, chunk_rows);
    let n_chunks = mem.chunks.len() as u64;
    assert!(n_chunks >= 6, "need several chunks to torture prefixes");

    // (fault, target) cases: crash-class and latent faults at the first,
    // an early, a middle, and the last chunk. TornFinalWrite fires at
    // finish regardless of target, so one case suffices.
    let mut cases: Vec<(SpillFaultKind, u64)> = vec![(SpillFaultKind::TornFinalWrite, 0)];
    for kind in [
        SpillFaultKind::PartialAppend,
        SpillFaultKind::CrashBeforeCommit,
        SpillFaultKind::BitFlip,
    ] {
        for target in [0, 1, n_chunks / 2, n_chunks - 1] {
            cases.push((kind, target));
        }
    }

    // Torture once per case; profile the recovered prefix at every
    // worker count against the in-memory truncation oracle.
    let mut recovered: Vec<(String, SpillSource, ChunkedTrace)> = Vec::new();
    for &(kind, target) in &cases {
        let (path, committed) = tortured_log(&c, chunk_rows, n_chunks, kind, target);
        let src = SpillSource::open_salvaged(&path)
            .unwrap_or_else(|e| panic!("{kind}@{target}: recovery must not fail: {e}"));
        assert_eq!(
            src.report().committed_chunks,
            committed,
            "{kind}@{target}: longest committed prefix"
        );
        assert!(
            !src.report().is_clean(),
            "{kind}@{target}: a tortured log is never clean"
        );
        assert!(
            !src.report().completeness.is_complete(),
            "{kind}@{target}: damage is never provably complete"
        );
        let truncated = ChunkedTrace {
            chunk_rows,
            chunks: mem.chunks[..committed as usize].to_vec(),
            file_paths: mem.file_paths.clone(),
            app_names: mem.app_names.clone(),
        };
        assert_eq!(
            src.len(),
            truncated.len() as u64,
            "{kind}@{target}: recovered record count"
        );
        recovered.push((format!("{kind}@{target}"), src, truncated));
    }

    for workers in [1usize, 2, 8] {
        par::set_threads(workers);
        for (label, src, truncated) in &recovered {
            let off_disk = TraceProfile::streaming_source(src, rt)
                .unwrap_or_else(|e| panic!("{label}: off-disk streaming failed: {e}"));
            let in_mem = TraceProfile::streaming(truncated, rt);
            assert_eq!(
                off_disk, in_mem,
                "{label}: recovered analysis diverged from the in-memory truncation at {workers} workers"
            );
        }
    }
    par::set_threads(0); // back to auto

    for (_, src, _) in &recovered {
        std::fs::remove_file(src.path()).expect("remove tortured log");
    }
}

/// Each fault class quarantines with the reason that names it: torn
/// frames read as damage, an uncommitted chunk reads as uncommitted, a
/// bit flip reads as a checksum failure — and `fsck` never panics on any
/// of them.
#[test]
fn fsck_diagnostics_name_the_fault_class() {
    let (c, _, chunk_rows) = capture();
    let mem = ChunkedTrace::from_columnar(&c, chunk_rows);
    let n_chunks = mem.chunks.len() as u64;
    let target = n_chunks / 2;

    for kind in [
        SpillFaultKind::TornFinalWrite,
        SpillFaultKind::PartialAppend,
        SpillFaultKind::CrashBeforeCommit,
        SpillFaultKind::BitFlip,
    ] {
        let (path, _) = tortured_log(&c, chunk_rows, n_chunks, kind, target);
        let report = fsck(&path).unwrap_or_else(|e| panic!("{kind}: fsck must not fail: {e}"));
        assert!(!report.sealed, "{kind}: a tortured log never reads sealed");
        let q = report
            .quarantined
            .first()
            .unwrap_or_else(|| panic!("{kind}: damage must be quarantined"));
        match kind {
            SpillFaultKind::CrashBeforeCommit => {
                assert_eq!(q.reason, QuarantineReason::Uncommitted, "{kind}")
            }
            SpillFaultKind::BitFlip => {
                assert_eq!(q.reason, QuarantineReason::BadChecksum, "{kind}")
            }
            SpillFaultKind::TornFinalWrite | SpillFaultKind::PartialAppend => assert_ne!(
                q.reason,
                QuarantineReason::Uncommitted,
                "{kind}: a torn frame is damage, not a clean uncommitted tail"
            ),
            SpillFaultKind::Enospc => unreachable!(),
        }
        std::fs::remove_file(&path).expect("remove tortured log");
    }
}

/// ENOSPC is an environmental error, not a crash: the writer surfaces a
/// typed error, the RAII guard removes the temp file, and neither the
/// temp nor the final log exists afterwards.
#[test]
fn enospc_is_typed_and_leaves_no_files_behind() {
    let (c, _, chunk_rows) = capture();
    let path = tmp("enospc-case.vsp3");
    let plan = SpillFaultPlan::at_chunk(SpillFaultKind::Enospc, 1, 2);
    match spill_columnar(&c, chunk_rows, &path, plan) {
        Err(SpillError::Enospc { at_bytes }) => {
            assert!(at_bytes > 0, "the device filled after the preamble");
        }
        other => panic!("ENOSPC must be typed, got {other:?}"),
    }
    assert!(!path.exists(), "no final log after ENOSPC");
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    assert!(
        !PathBuf::from(tmp_name).exists(),
        "the RAII guard removes the temp file"
    );
}
