//! Integration: the streaming bounded-memory analyzer is **bit-identical**
//! to the fused in-memory scan on every exemplar workload — the seven of
//! the paper's corpus (six applications plus IOR) — at 1, 2, and 8
//! workers, with and without an active fault plan, across chunk sizes.
//!
//! Also pinned here: chunked capture (sealing during the run) produces
//! exactly the same compressed trace as batch capture followed by
//! `ChunkedTrace::from_columnar`; the streaming path's resident trace
//! memory stays under the ring bound while profiling a trace far larger
//! than one chunk; and the adaptive sampler is deterministic (and off by
//! default, where the identity contract applies).
//!
//! One worker-sweep `#[test]` on purpose: `rt::par::set_threads` is
//! process-global, so the sweep must not interleave with itself.

use vani_suite::recorder::chunk::{
    resident_bound, trace_gauge, ChunkedTrace, DEFAULT_CHUNK_ROWS, RING_SLOTS,
};
use vani_suite::recorder::tracer::Tracer;
use vani_suite::recorder::ColumnarTrace;
use vani_suite::rt::par;
use vani_suite::sim::{Dur, SimTime};
use vani_suite::storage::FaultPlan;
use vani_suite::vani::analyzer::TraceProfile;
use vani_suite::workloads as wl;
use vani_suite::workloads::WorkloadRun;

/// The paper's seven exemplars: the six applications plus the IOR
/// calibration benchmark, at fast scales.
fn paper_seven() -> Vec<(&'static str, WorkloadRun)> {
    vec![
        ("cm1", wl::cm1::run(0.01, 5)),
        ("hacc", wl::hacc::run(0.01, 5)),
        ("cosmoflow", wl::cosmoflow::run(0.001, 5)),
        ("jag", wl::jag::run(0.01, 5)),
        ("montage", wl::montage::run(0.01, 5)),
        ("pegasus", wl::montage_pegasus::run(0.01, 5)),
        ("ior", wl::ior::run(wl::ior::IorParams::scaled(0.01), 5)),
    ]
}

/// Mild-but-active fault plan: everything fires, the retry middleware
/// absorbs everything, and the resilience counters become part of the
/// identity being checked.
fn stress_plan() -> FaultPlan {
    let end = SimTime::from_secs(1_000_000);
    FaultPlan::none()
        .with_nsd_outage(0, SimTime::from_secs(1), end)
        .with_mds_brownout(SimTime::ZERO, end, 3.0)
        .with_nsd_brownout(SimTime::from_secs(2), end, 1.5)
        .with_straggler(0, 1.2)
        .with_error_rates(0.03, 0.01)
}

/// The seven again, each under [`stress_plan`].
fn faulted_seven() -> Vec<(&'static str, WorkloadRun)> {
    let plan = stress_plan();
    let mut cm1 = wl::cm1::Cm1Params::scaled(0.01);
    cm1.faults = plan.clone();
    let mut hacc = wl::hacc::HaccParams::scaled(0.01);
    hacc.faults = plan.clone();
    let mut cosmo = wl::cosmoflow::CosmoflowParams::scaled(0.001);
    cosmo.faults = plan.clone();
    let mut jag = wl::jag::JagParams::scaled(0.01);
    jag.faults = plan.clone();
    let mut montage = wl::montage::MontageParams::scaled(0.01);
    montage.faults = plan.clone();
    let mut pegasus = wl::montage_pegasus::PegasusParams::scaled(0.01);
    pegasus.faults = plan.clone();
    let mut ior = wl::ior::IorParams::scaled(0.01);
    ior.faults = plan;
    vec![
        ("cm1+faults", wl::cm1::run_with(cm1, 0.01, 5)),
        ("hacc+faults", wl::hacc::run_with(hacc, 0.01, 5)),
        ("cosmoflow+faults", wl::cosmoflow::run_with(cosmo, 0.001, 5)),
        ("jag+faults", wl::jag::run_with(jag, 0.01, 5)),
        ("montage+faults", wl::montage::run_with(montage, 0.01, 5)),
        (
            "pegasus+faults",
            wl::montage_pegasus::run_with(pegasus, 0.01, 5),
        ),
        ("ior+faults", wl::ior::run(ior, 5)),
    ]
}

/// The acceptance gate of the streaming analyzer: for all fourteen runs
/// (seven workloads × {clean, faulted}), at 1, 2, and 8 workers, across
/// small / misaligned / default chunk sizes, `TraceProfile::streaming` is
/// exactly equal — every counter, f64, histogram, timeline, phase list,
/// file/app profile, and dependency edge — to `TraceProfile::fused` on
/// the same capture.
#[test]
fn streaming_profile_matches_fused_on_all_workloads_and_worker_counts() {
    let mut runs = paper_seven();
    runs.extend(faulted_seven());
    let captures: Vec<(&str, ColumnarTrace, Dur)> = runs
        .iter()
        .map(|(n, r)| (*n, r.columnar(), r.runtime()))
        .collect();
    let oracles: Vec<TraceProfile> = captures
        .iter()
        .map(|(_, c, rt)| TraceProfile::fused(c, *rt))
        .collect();

    for workers in [1usize, 2, 8] {
        par::set_threads(workers);
        for ((name, c, rt), oracle) in captures.iter().zip(&oracles) {
            for chunk_rows in [512usize, 4095, DEFAULT_CHUNK_ROWS] {
                let t = ChunkedTrace::from_columnar(c, chunk_rows);
                let streamed = TraceProfile::streaming(&t, *rt);
                assert_eq!(
                    &streamed, oracle,
                    "{name}: streaming diverged from fused at {workers} workers, chunk_rows {chunk_rows}"
                );
            }
        }
    }
    par::set_threads(0); // back to auto
}

/// Replay a batch capture through a second tracer in chunked mode. The
/// intern tables are seeded in original order first, so every replayed
/// record keeps its original `FileId`/`AppId` and the two traces are
/// comparable cell for cell.
fn replay_chunked(c: &ColumnarTrace, chunk_rows: usize) -> ChunkedTrace {
    let mut t = Tracer::with_chunked(chunk_rows);
    for p in &c.file_paths {
        t.file_id(p);
    }
    for a in &c.app_names {
        t.app_id(a);
    }
    for i in 0..c.len() {
        t.record(
            c.rank[i],
            c.node[i],
            vani_suite::recorder::record::AppId(c.app[i]),
            c.layer[i],
            c.op[i],
            SimTime(c.start[i]),
            SimTime(c.end[i]),
            c.file_id(i),
            c.offset[i],
            c.bytes[i],
        );
    }
    t.into_chunked()
}

/// Sealing during capture and sealing after the fact are the same
/// operation: a tracer in chunked mode yields chunk-for-chunk,
/// byte-for-byte the trace that `ChunkedTrace::from_columnar` builds from
/// the equivalent batch capture — so every streaming guarantee proved on
/// converted traces transfers to live chunked capture.
#[test]
fn chunked_capture_equals_from_columnar() {
    for (name, run) in paper_seven() {
        let c = run.columnar();
        for chunk_rows in [1000usize, DEFAULT_CHUNK_ROWS] {
            let live = replay_chunked(&c, chunk_rows);
            let batch = ChunkedTrace::from_columnar(&c, chunk_rows);
            assert_eq!(live, batch, "{name}: chunk_rows {chunk_rows}");
        }
    }
}

/// Bounded memory, demonstrated: streaming a trace that is many chunks
/// long keeps the resident decoded-trace footprint under the ring bound,
/// while the fused path holds the entire capture.
#[test]
fn streaming_peak_memory_stays_under_the_ring_bound() {
    let run = wl::hacc::run(0.02, 5);
    let c = run.columnar();
    let chunk_rows = (c.len() / 10).max(16);
    let t = ChunkedTrace::from_columnar(&c, chunk_rows);
    assert!(t.chunks.len() >= 8, "trace too small to exercise the ring");
    trace_gauge().reset();
    let _ = TraceProfile::streaming(&t, run.runtime());
    let peak = trace_gauge().peak();
    assert!(peak > 0, "streaming never charged the trace gauge");
    assert!(
        peak <= resident_bound(chunk_rows, RING_SLOTS),
        "peak {peak} exceeds resident_bound({chunk_rows}, {RING_SLOTS}) = {}",
        resident_bound(chunk_rows, RING_SLOTS)
    );
}

/// The adaptive sampler: off by default (identity applies), deterministic
/// under a budget (two identical replays admit identical record sets), and
/// actually adaptive (a tight budget widens the stride and drops records).
#[test]
fn sampler_is_off_by_default_and_deterministic_under_budget() {
    let run = wl::jag::run(0.01, 5);
    let c = run.columnar();
    assert!(
        run.world.tracer.sampler().is_none(),
        "sampling must be opt-in"
    );

    let replay = |budget: Option<f64>| -> ColumnarTrace {
        let mut t = Tracer::with_overhead(Dur::from_nanos(10_000));
        t.set_sampler_budget(budget);
        for i in 0..c.len() {
            let file = c.file_id(i).map(|f| t.file_id(run.world.tracer.path_of(f)));
            let app = t.app_id(
                run.world
                    .tracer
                    .app_name(vani_suite::recorder::record::AppId(c.app[i])),
            );
            t.record(
                c.rank[i],
                c.node[i],
                app,
                c.layer[i],
                c.op[i],
                SimTime(c.start[i]),
                SimTime(c.end[i]),
                file,
                c.offset[i],
                c.bytes[i],
            );
        }
        t.to_columnar()
    };

    let full = replay(None);
    assert_eq!(full.len(), c.len(), "no sampler: every record captured");
    let a = replay(Some(1e-6));
    let b = replay(Some(1e-6));
    assert_eq!(a, b, "sampling must be deterministic for a fixed budget");
    assert!(
        a.len() < full.len(),
        "a near-zero overhead budget must drop records ({} vs {})",
        a.len(),
        full.len()
    );
}
