//! Crash-consistent spill-to-disk trace store: an append-only segment log
//! that sealed [`CompressedChunk`]s stream into as they leave the capture
//! ring, so traces larger than RAM survive on disk and the streaming
//! analyzer folds chunks straight off the file.
//!
//! ## On-disk format (persistence v3)
//!
//! A spill file opens with an 19-byte preamble — the magic
//! [`SPILL_MAGIC`] (`vanispill3\n`) followed by `chunk_rows` as a `u64`
//! little-endian — and then a sequence of self-describing frames:
//!
//! ```text
//! [kind: u8][payload_len: u64 LE][payload][fnv1a64(payload): u64 LE]
//! ```
//!
//! Frame kinds:
//!
//! * `INTERN` (2) — a delta of newly interned file paths and app names,
//!   always appended *before* the first chunk that may reference them,
//! * `CHUNK` (1) — one sealed chunk: row count, the seal-time
//!   [`ChunkMeta`] (so recovery never decodes just to learn dims), and the
//!   ten encoded columns,
//! * `COMMIT` (3) — a durability marker carrying the running tallies
//!   (chunks, records, interned files, interned apps). The writer
//!   `fsync`s after every `COMMIT`: a commit frame on disk means
//!   everything before it is durable. This is the fsync-point model.
//! * `FOOTER` (4) — final tallies; its presence marks the log *sealed*.
//!   After the footer fsync the `*.tmp` file is renamed to its final
//!   name, so a file without the `.tmp` suffix is always sealed — unless
//!   a latent fault (bit rot) corrupted it afterwards, which the
//!   checksummed frames detect on open.
//!
//! ## Recovery invariants
//!
//! [`fsck`] walks frames from the front and stops at the first anomaly
//! (torn tail, checksum mismatch, malformed payload, codec failure or a
//! persisted meta that disagrees with a decode). The recovered trace is
//! the *longest committed prefix*: the chunks counted by the last valid
//! `COMMIT` (or the `FOOTER`, which acts as the final commit). Everything
//! after that point — readable-but-uncommitted chunks included — is
//! quarantined with a typed [`QuarantineReason`], never silently kept,
//! because without a commit marker there is no fsync ordering guarantee
//! that those bytes are the bytes the tracer wrote. Intern tables are
//! truncated to the adopted commit's tallies for the same reason.
//!
//! ## Fault injection
//!
//! [`SpillFaultPlan`] arms one deterministic, seeded fault in the writer:
//! torn final write, partial append, ENOSPC, latent bit-flip, or a crash
//! between a chunk and its commit. Crash-class faults disarm the RAII
//! temp-file guard (a real `kill -9` runs no destructors) and return
//! [`SpillError::Injected`] carrying the path of the mutilated file so
//! the torture suite can hand it to [`fsck`].

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::chunk::{
    columnar_capacity_bytes, BitWords, ChunkMeta, ChunkedTrace, CompressedChunk, GaugeCharge,
};
use crate::columnar::ColumnarTrace;
use crate::persist::TraceCompleteness;

/// First bytes of every version-3 spill file; the loaders in
/// [`crate::persist`] sniff this to route binary spill logs away from the
/// UTF-8 JSON paths of v1/v2.
pub const SPILL_MAGIC: &[u8; 11] = b"vanispill3\n";

const FRAME_CHUNK: u8 = 1;
const FRAME_INTERN: u8 = 2;
const FRAME_COMMIT: u8 = 3;
const FRAME_FOOTER: u8 = 4;

/// Frame head bytes: kind tag plus payload length.
const FRAME_HEAD: u64 = 9;
/// Trailing checksum bytes per frame.
const FRAME_SUM: u64 = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 scramble — turns a small seed into well-mixed bits for
/// picking fault targets and tear offsets deterministically.
fn scramble(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Typed failures of the spill store — every corruption, crash, and
/// resource fault surfaces as one of these, never a panic.
#[derive(Debug)]
pub enum SpillError {
    /// The file could not be created, read, written, or renamed.
    Io(io::Error),
    /// The file does not start with [`SPILL_MAGIC`] or has a nonsense
    /// preamble — not a v3 spill log at all.
    NotSpill {
        /// What the preamble check saw.
        detail: String,
    },
    /// A frame ran off the end of the file (torn write / truncation).
    Torn {
        /// Byte offset where the torn frame starts.
        offset: u64,
        /// What was expected versus what remained.
        detail: String,
    },
    /// A frame's payload does not match its stored FNV-1a checksum.
    BadChecksum {
        /// Frame index from the front of the log.
        frame: u64,
        /// Byte offset of the frame.
        offset: u64,
    },
    /// A frame verified but its payload did not parse.
    Malformed {
        /// Frame index from the front of the log.
        frame: u64,
        /// Byte offset of the frame.
        offset: u64,
        /// What failed to parse.
        detail: String,
    },
    /// A chunk's columns verified and parsed but failed to decode, or the
    /// decode disagreed with the persisted seal-time meta.
    Codec {
        /// Chunk index (in capture order).
        chunk: u64,
        /// The codec's complaint.
        detail: String,
    },
    /// Strict open: readable chunks exist past the last commit marker.
    Uncommitted {
        /// Chunk frames present in the log.
        chunks: u64,
        /// Chunks covered by the last valid commit.
        committed: u64,
    },
    /// Strict open: the log has no footer (writer never finished).
    Unsealed {
        /// Chunks covered by the last valid commit.
        committed_chunks: u64,
    },
    /// The simulated device filled up mid-append.
    Enospc {
        /// Bytes written when the device filled.
        at_bytes: u64,
    },
    /// An armed [`SpillFaultPlan`] fired a crash-class fault; the
    /// mutilated file survives at `path` for recovery.
    Injected {
        /// Which fault fired.
        fault: SpillFaultKind,
        /// The surviving (torn / partial) file.
        path: PathBuf,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::NotSpill { detail } => {
                write!(f, "not a v3 spill log: {detail}")
            }
            SpillError::Torn { offset, detail } => {
                write!(f, "torn frame at byte {offset}: {detail}")
            }
            SpillError::BadChecksum { frame, offset } => {
                write!(f, "frame {frame} at byte {offset}: checksum mismatch")
            }
            SpillError::Malformed {
                frame,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "frame {frame} at byte {offset}: malformed payload: {detail}"
                )
            }
            SpillError::Codec { chunk, detail } => {
                write!(f, "chunk {chunk}: decode failed: {detail}")
            }
            SpillError::Uncommitted { chunks, committed } => {
                write!(
                    f,
                    "strict open: {chunks} chunk(s) present but only {committed} committed"
                )
            }
            SpillError::Unsealed { committed_chunks } => {
                write!(
                    f,
                    "strict open: log unsealed (no footer; {committed_chunks} chunk(s) committed)"
                )
            }
            SpillError::Enospc { at_bytes } => {
                write!(f, "no space left on device after {at_bytes} bytes")
            }
            SpillError::Injected { fault, path } => {
                write!(
                    f,
                    "injected fault {fault} fired; surviving file at {}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for SpillError {}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// The fault classes an armed [`SpillFaultPlan`] can fire in the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFaultKind {
    /// The footer write tears partway through, then the process dies:
    /// every chunk committed, log unsealed.
    TornFinalWrite,
    /// A chunk frame's bytes are cut short mid-write, then the process
    /// dies: the torn chunk (and everything after) is lost.
    PartialAppend,
    /// The device fills at the target append; the writer surfaces a typed
    /// error and the RAII guard removes the temp file.
    Enospc,
    /// One payload byte flips *after* checksumming — the write completes
    /// and the file seals normally, but the corruption is latent until a
    /// reader verifies the frame.
    BitFlip,
    /// The process dies after appending the target chunk but before its
    /// commit marker: the chunk's bytes are on disk but not durable.
    CrashBeforeCommit,
}

impl SpillFaultKind {
    /// Stable lowercase name for diagnostics and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SpillFaultKind::TornFinalWrite => "torn-final-write",
            SpillFaultKind::PartialAppend => "partial-append",
            SpillFaultKind::Enospc => "enospc",
            SpillFaultKind::BitFlip => "bit-flip",
            SpillFaultKind::CrashBeforeCommit => "crash-before-commit",
        }
    }

    /// All five fault classes, for sweep-style torture loops.
    pub fn all() -> [SpillFaultKind; 5] {
        [
            SpillFaultKind::TornFinalWrite,
            SpillFaultKind::PartialAppend,
            SpillFaultKind::Enospc,
            SpillFaultKind::BitFlip,
            SpillFaultKind::CrashBeforeCommit,
        ]
    }
}

impl fmt::Display for SpillFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic, seeded plan for at most one injected fault per spill
/// file. The target chunk index and every tear/flip offset derive from
/// the seed, so a torture run replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillFaultPlan {
    armed: Option<(SpillFaultKind, u64, u64)>,
}

impl SpillFaultPlan {
    /// No fault: the writer behaves like a healthy device.
    pub fn none() -> SpillFaultPlan {
        SpillFaultPlan { armed: None }
    }

    /// Arm `kind` with a seed-derived target chunk in `0..chunks` (the
    /// caller's estimate of how many chunks the capture will seal; a
    /// target past the actual count simply never fires).
    pub fn seeded(kind: SpillFaultKind, seed: u64, chunks: u64) -> SpillFaultPlan {
        let target = if chunks == 0 {
            0
        } else {
            scramble(seed) % chunks
        };
        SpillFaultPlan {
            armed: Some((kind, seed, target)),
        }
    }

    /// Arm `kind` at an explicit target chunk index.
    pub fn at_chunk(kind: SpillFaultKind, seed: u64, target: u64) -> SpillFaultPlan {
        SpillFaultPlan {
            armed: Some((kind, seed, target)),
        }
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// The armed fault class, if any.
    pub fn kind(&self) -> Option<SpillFaultKind> {
        self.armed.map(|(k, _, _)| k)
    }

    fn fires_at(&self, kind: SpillFaultKind, chunk: u64) -> Option<u64> {
        match self.armed {
            Some((k, seed, target)) if k == kind && target == chunk => Some(seed),
            _ => None,
        }
    }
}

/// What a completed spill wrote, as reported by [`SpillWriter::finish`].
#[derive(Debug, Clone)]
pub struct SpillSummary {
    /// The sealed file's final path.
    pub path: PathBuf,
    /// Chunks appended.
    pub chunks: u64,
    /// Records appended.
    pub records: u64,
    /// Total file bytes.
    pub bytes: u64,
    /// fsync calls issued (one per commit, one for the footer).
    pub fsync_points: u64,
}

/// Append-only writer for one spill log. Bytes go to `<path>.tmp`; only
/// [`finish`](Self::finish) renames the temp to its final name, and the
/// RAII drop guard removes the temp on every panic or typed-error path —
/// crash-class injected faults excepted, because a killed process runs no
/// destructors either.
#[derive(Debug)]
pub struct SpillWriter {
    file: Option<File>,
    final_path: PathBuf,
    tmp_path: PathBuf,
    guard_armed: bool,
    chunk_rows: usize,
    written: u64,
    chunks_appended: u64,
    records_appended: u64,
    files_persisted: usize,
    apps_persisted: usize,
    fsync_points: u64,
    staging: Vec<u8>,
    frame: Vec<u8>,
    charge: GaugeCharge,
    fault: SpillFaultPlan,
}

fn tmp_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".tmp");
    PathBuf::from(s)
}

impl SpillWriter {
    /// Open `<path>.tmp` for appending and write the v3 preamble.
    pub fn create(
        path: &Path,
        chunk_rows: usize,
        fault: SpillFaultPlan,
    ) -> Result<SpillWriter, SpillError> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let tmp_path = tmp_path_for(path);
        let mut file = File::create(&tmp_path)?;
        let mut w = SpillWriter {
            file: None,
            final_path: path.to_path_buf(),
            tmp_path,
            guard_armed: true,
            chunk_rows,
            written: 0,
            chunks_appended: 0,
            records_appended: 0,
            files_persisted: 0,
            apps_persisted: 0,
            fsync_points: 0,
            staging: Vec::new(),
            frame: Vec::new(),
            charge: GaugeCharge::default(),
            fault,
        };
        if let Err(e) = file
            .write_all(SPILL_MAGIC)
            .and_then(|()| file.write_all(&(chunk_rows as u64).to_le_bytes()))
        {
            // `w` drops here and the guard removes the temp.
            return Err(e.into());
        }
        w.written = SPILL_MAGIC.len() as u64 + 8;
        w.file = Some(file);
        Ok(w)
    }

    fn resync_charge(&mut self) {
        self.charge
            .resync((self.staging.capacity() + self.frame.capacity()) as u64);
    }

    /// Assemble and append one frame from `self.staging`. `flip` corrupts
    /// one payload byte after checksumming (latent fault); `cut` writes
    /// only a prefix of the frame (torn write).
    fn write_frame(
        &mut self,
        kind: u8,
        flip: Option<usize>,
        cut: Option<usize>,
    ) -> Result<(), SpillError> {
        let sum = fnv1a(&self.staging);
        if let Some(i) = flip {
            if !self.staging.is_empty() {
                let at = i % self.staging.len();
                self.staging[at] ^= 0x40;
            }
        }
        self.frame.clear();
        self.frame.push(kind);
        self.frame
            .extend_from_slice(&(self.staging.len() as u64).to_le_bytes());
        self.frame.extend_from_slice(&self.staging);
        self.frame.extend_from_slice(&sum.to_le_bytes());
        self.resync_charge();
        let n = cut.unwrap_or(self.frame.len()).min(self.frame.len());
        self.file
            .as_mut()
            .expect("writer is open")
            .write_all(&self.frame[..n])?;
        self.written += n as u64;
        Ok(())
    }

    fn commit(&mut self) -> Result<(), SpillError> {
        self.staging.clear();
        for v in [
            self.chunks_appended,
            self.records_appended,
            self.files_persisted as u64,
            self.apps_persisted as u64,
        ] {
            self.staging.extend_from_slice(&v.to_le_bytes());
        }
        self.write_frame(FRAME_COMMIT, None, None)?;
        self.file.as_ref().expect("writer is open").sync_data()?;
        self.fsync_points += 1;
        Ok(())
    }

    /// Persist any intern-table entries past what the log already holds.
    /// Called by [`append`](Self::append) automatically; callers spilling
    /// a trace that might seal zero chunks call it once up front so the
    /// tables survive even an empty capture.
    pub fn intern(
        &mut self,
        file_paths: &[String],
        app_names: &[String],
    ) -> Result<(), SpillError> {
        if file_paths.len() <= self.files_persisted && app_names.len() <= self.apps_persisted {
            return Ok(());
        }
        self.staging.clear();
        let stage_delta = |staging: &mut Vec<u8>, all: &[String], from: usize| {
            staging.extend_from_slice(&((all.len() - from) as u64).to_le_bytes());
            for s in &all[from..] {
                staging.extend_from_slice(&(s.len() as u64).to_le_bytes());
                staging.extend_from_slice(s.as_bytes());
            }
        };
        stage_delta(&mut self.staging, file_paths, self.files_persisted);
        stage_delta(&mut self.staging, app_names, self.apps_persisted);
        self.write_frame(FRAME_INTERN, None, None)?;
        self.files_persisted = file_paths.len();
        self.apps_persisted = app_names.len();
        Ok(())
    }

    /// Append one sealed chunk: intern delta (if the tables grew), the
    /// chunk frame, then a commit marker followed by an fsync.
    pub fn append(
        &mut self,
        chunk: &CompressedChunk,
        file_paths: &[String],
        app_names: &[String],
    ) -> Result<(), SpillError> {
        let idx = self.chunks_appended;
        if self.fault.fires_at(SpillFaultKind::Enospc, idx).is_some() {
            // Typed resource fault: the caller drops the writer and the
            // guard removes the temp file.
            return Err(SpillError::Enospc {
                at_bytes: self.written,
            });
        }
        self.intern(file_paths, app_names)?;
        self.staging.clear();
        self.staging
            .extend_from_slice(&(chunk.rows as u64).to_le_bytes());
        let mut meta = Vec::new();
        stage_meta(&mut meta, &chunk.meta);
        self.staging
            .extend_from_slice(&(meta.len() as u64).to_le_bytes());
        self.staging.extend_from_slice(&meta);
        for c in 0..10 {
            self.staging
                .extend_from_slice(&(chunk.column(c).len() as u64).to_le_bytes());
        }
        for c in 0..10 {
            self.staging.extend_from_slice(chunk.column(c));
        }
        let flip = self
            .fault
            .fires_at(SpillFaultKind::BitFlip, idx)
            .map(|seed| scramble(seed ^ 0xb17f) as usize);
        if let Some(seed) = self.fault.fires_at(SpillFaultKind::PartialAppend, idx) {
            let frame_len = FRAME_HEAD + self.staging.len() as u64 + FRAME_SUM;
            let cut = 1 + (scramble(seed ^ 0x7ea2) % (frame_len - 1)) as usize;
            self.write_frame(FRAME_CHUNK, None, Some(cut))?;
            return Err(self.crash(SpillFaultKind::PartialAppend));
        }
        self.write_frame(FRAME_CHUNK, flip, None)?;
        self.chunks_appended += 1;
        self.records_appended += chunk.rows as u64;
        if self
            .fault
            .fires_at(SpillFaultKind::CrashBeforeCommit, idx)
            .is_some()
        {
            return Err(self.crash(SpillFaultKind::CrashBeforeCommit));
        }
        self.commit()
    }

    /// Simulate a process death: keep the mutilated temp file (a killed
    /// process runs no destructors), close the handle, and surface the
    /// surviving path in a typed error.
    fn crash(&mut self, fault: SpillFaultKind) -> SpillError {
        self.guard_armed = false;
        self.file = None;
        SpillError::Injected {
            fault,
            path: self.tmp_path.clone(),
        }
    }

    /// Bytes appended so far (the temp file's length).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Write the footer, fsync, and rename `<path>.tmp` to its final
    /// name. Only after this returns is the log sealed.
    pub fn finish(mut self) -> Result<SpillSummary, SpillError> {
        self.staging.clear();
        for v in [
            self.chunks_appended,
            self.records_appended,
            self.chunk_rows as u64,
            self.files_persisted as u64,
            self.apps_persisted as u64,
        ] {
            self.staging.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(seed) = self
            .fault
            .armed
            .and_then(|(k, seed, _)| (k == SpillFaultKind::TornFinalWrite).then_some(seed))
        {
            let frame_len = FRAME_HEAD + self.staging.len() as u64 + FRAME_SUM;
            let cut = 1 + (scramble(seed ^ 0xf007) % (frame_len - 1)) as usize;
            self.write_frame(FRAME_FOOTER, None, Some(cut))?;
            return Err(self.crash(SpillFaultKind::TornFinalWrite));
        }
        self.write_frame(FRAME_FOOTER, None, None)?;
        let file = self.file.take().expect("writer is open");
        file.sync_data()?;
        drop(file);
        self.fsync_points += 1;
        fs::rename(&self.tmp_path, &self.final_path)?;
        self.guard_armed = false;
        Ok(SpillSummary {
            path: self.final_path.clone(),
            chunks: self.chunks_appended,
            records: self.records_appended,
            bytes: self.written,
            fsync_points: self.fsync_points,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if self.guard_armed {
            self.file = None;
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

/// Seal an existing columnar trace chunk-at-a-time straight into a spill
/// log (the post-hoc entry mirroring [`ChunkedTrace::from_columnar`]).
/// The full intern tables are persisted before the first chunk, so any
/// committed prefix resolves every id it can reference.
pub fn spill_columnar(
    c: &ColumnarTrace,
    chunk_rows: usize,
    path: &Path,
    fault: SpillFaultPlan,
) -> Result<SpillSummary, SpillError> {
    let mut w = SpillWriter::create(path, chunk_rows, fault)?;
    let mut scratch: Vec<u64> = Vec::with_capacity(chunk_rows.min(c.len()));
    let _charge = GaugeCharge::new((scratch.capacity() * 8) as u64);
    w.intern(&c.file_paths, &c.app_names)?;
    let mut at = 0usize;
    while at < c.len() {
        let end = (at + chunk_rows).min(c.len());
        let chunk = CompressedChunk::seal(c, at..end, &mut scratch);
        w.append(&chunk, &c.file_paths, &c.app_names)?;
        at = end;
    }
    w.finish()
}

fn stage_meta(buf: &mut Vec<u8>, meta: &ChunkMeta) {
    buf.extend_from_slice(&(meta.rows as u64).to_le_bytes());
    for l in 0..6 {
        buf.push(meta.present[l] as u8);
    }
    for v in [meta.n_ranks, meta.n_apps, meta.n_files] {
        buf.extend_from_slice(&(v as u64).to_le_bytes());
    }
    for l in 0..6 {
        let words = meta.layer_files[l].words();
        buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian cursor over a verified payload.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, at: 0 }
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn u8(&mut self) -> Option<u8> {
        let s = self.take(1)?;
        Some(s[0])
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Some(s)
    }

    fn done(&self) -> bool {
        self.at == self.b.len()
    }
}

fn parse_meta(cur: &mut Cur<'_>) -> Option<ChunkMeta> {
    let rows = cur.u64()? as usize;
    let mut present = [false; 6];
    for p in present.iter_mut() {
        *p = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
    }
    let n_ranks = cur.u64()? as usize;
    let n_apps = cur.u64()? as usize;
    let n_files = cur.u64()? as usize;
    let mut layer_files: [BitWords; 6] = Default::default();
    for lf in layer_files.iter_mut() {
        let n = cur.u64()? as usize;
        let bytes = cur.take(n.checked_mul(8)?)?;
        let words = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        *lf = BitWords::from_words(words);
    }
    Some(ChunkMeta {
        rows,
        present,
        layer_files,
        n_ranks,
        n_apps,
        n_files,
    })
}

/// A chunk frame's parsed payload: rows, persisted meta, encoded columns.
fn parse_chunk_payload(
    payload: &[u8],
    chunk_rows: usize,
) -> Result<(usize, ChunkMeta, [Vec<u8>; 10]), String> {
    let mut cur = Cur::new(payload);
    let rows = cur.u64().ok_or("missing row count")? as usize;
    if rows == 0 || rows > chunk_rows {
        return Err(format!("row count {rows} outside 1..={chunk_rows}"));
    }
    let meta_len = cur.u64().ok_or("missing meta length")? as usize;
    let meta_bytes = cur.take(meta_len).ok_or("meta runs past payload")?;
    let mut mc = Cur::new(meta_bytes);
    let meta = parse_meta(&mut mc).ok_or("meta does not parse")?;
    if !mc.done() {
        return Err("trailing bytes after meta".into());
    }
    if meta.rows != rows {
        return Err(format!("meta rows {} != frame rows {rows}", meta.rows));
    }
    let mut lens = [0usize; 10];
    for l in lens.iter_mut() {
        *l = cur.u64().ok_or("missing column length")? as usize;
    }
    let mut cols: [Vec<u8>; 10] = Default::default();
    for (c, len) in cols.iter_mut().zip(lens) {
        *c = cur.take(len).ok_or("column runs past payload")?.to_vec();
    }
    if !cur.done() {
        return Err("trailing bytes after columns".into());
    }
    Ok((rows, meta, cols))
}

fn parse_intern_payload(payload: &[u8]) -> Result<(Vec<String>, Vec<String>), String> {
    let mut cur = Cur::new(payload);
    let parse_list = |cur: &mut Cur<'_>| -> Result<Vec<String>, String> {
        let n = cur.u64().ok_or("missing entry count")? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            let len = cur.u64().ok_or("missing string length")? as usize;
            let bytes = cur.take(len).ok_or("string runs past payload")?;
            out.push(
                std::str::from_utf8(bytes)
                    .map_err(|_| "intern entry is not UTF-8".to_string())?
                    .to_string(),
            );
        }
        Ok(out)
    };
    let files = parse_list(&mut cur)?;
    let apps = parse_list(&mut cur)?;
    if !cur.done() {
        return Err("trailing bytes after intern lists".into());
    }
    Ok((files, apps))
}

/// Why a segment (frame) was quarantined rather than recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A readable chunk past the last commit marker — no fsync ordering
    /// guarantee covers it.
    Uncommitted,
    /// Stored checksum disagrees with the payload (bit rot / corruption).
    BadChecksum,
    /// The frame ran off the end of the file (torn write).
    Torn,
    /// Checksum passed but the payload did not parse, or a commit/footer
    /// carried tallies the log cannot support.
    Malformed,
    /// Columns parsed but failed to decode, or the decode disagreed with
    /// the persisted seal-time meta.
    Codec,
    /// An unknown frame kind (format corruption or a future version).
    UnknownKind,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuarantineReason::Uncommitted => "uncommitted",
            QuarantineReason::BadChecksum => "bad-checksum",
            QuarantineReason::Torn => "torn",
            QuarantineReason::Malformed => "malformed",
            QuarantineReason::Codec => "codec",
            QuarantineReason::UnknownKind => "unknown-kind",
        })
    }
}

/// One quarantined segment in an [`FsckReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// Frame index from the front of the log.
    pub frame: u64,
    /// Byte offset of the frame.
    pub offset: u64,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// What [`fsck`] recovered from a spill log.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Recovered versus expected records and chunks. `expected` comes
    /// from the footer when the log is sealed, otherwise from every chunk
    /// frame observed (committed or not).
    pub completeness: TraceCompleteness,
    /// Whether a valid footer was found (the writer finished).
    pub sealed: bool,
    /// Chunks in the recovered (longest committed) prefix.
    pub committed_chunks: u64,
    /// Records in the recovered prefix.
    pub committed_records: u64,
    /// Durability points observed: one per valid commit, plus the footer.
    pub fsync_points: u64,
    /// Frames excluded from recovery, with typed reasons.
    pub quarantined: Vec<QuarantinedSegment>,
}

impl FsckReport {
    /// Whether the log is sealed, fully committed, and anomaly-free.
    pub fn is_clean(&self) -> bool {
        self.sealed && self.quarantined.is_empty() && self.completeness.is_complete()
    }
}

/// The result of walking a log front to back with deep verification.
struct Walk {
    chunk_rows: usize,
    sealed: bool,
    committed_chunks: u64,
    committed_records: u64,
    committed_files: u64,
    committed_apps: u64,
    /// Per observed chunk frame: (frame index, byte offset, seal meta).
    seen_chunks: Vec<(u64, u64, ChunkMeta)>,
    seen_records: u64,
    files: Vec<String>,
    apps: Vec<String>,
    commits_seen: u64,
    quarantined: Vec<QuarantinedSegment>,
}

/// Walk every frame, verifying checksums and (deeply) decoding each chunk
/// to cross-check its persisted meta. Stops at the first anomaly — the
/// longest-committed-prefix rule. Errors are returned only for files that
/// cannot be opened or are not spill logs at all; damage inside the log
/// is recovery data, not failure.
fn walk(path: &Path) -> Result<Walk, SpillError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut head = [0u8; 19];
    file.read_exact(&mut head)
        .map_err(|_| SpillError::NotSpill {
            detail: format!("file is {file_len} bytes, shorter than the preamble"),
        })?;
    if &head[..11] != SPILL_MAGIC {
        return Err(SpillError::NotSpill {
            detail: "bad magic".into(),
        });
    }
    let chunk_rows = u64::from_le_bytes(head[11..19].try_into().unwrap());
    if chunk_rows == 0 || chunk_rows > (1 << 32) {
        return Err(SpillError::NotSpill {
            detail: format!("preamble chunk_rows {chunk_rows} is not sane"),
        });
    }
    let mut w = Walk {
        chunk_rows: chunk_rows as usize,
        sealed: false,
        committed_chunks: 0,
        committed_records: 0,
        committed_files: 0,
        committed_apps: 0,
        seen_chunks: Vec::new(),
        seen_records: 0,
        files: Vec::new(),
        apps: Vec::new(),
        commits_seen: 0,
        quarantined: Vec::new(),
    };
    let mut pos = 19u64;
    let mut frame_idx = 0u64;
    let mut payload: Vec<u8> = Vec::new();
    let mut pcharge = GaugeCharge::default();
    let mut buf = ColumnarTrace::with_capacity(0);
    let mut bcharge = GaugeCharge::default();
    let quarantine = |w: &mut Walk, frame: u64, offset: u64, reason: QuarantineReason| {
        w.quarantined.push(QuarantinedSegment {
            frame,
            offset,
            reason,
        });
    };
    while pos < file_len {
        let at = pos;
        if file_len - pos < FRAME_HEAD + FRAME_SUM {
            quarantine(&mut w, frame_idx, at, QuarantineReason::Torn);
            break;
        }
        let mut fh = [0u8; 9];
        file.read_exact(&mut fh)?;
        let kind = fh[0];
        let payload_len = u64::from_le_bytes(fh[1..9].try_into().unwrap());
        if payload_len > file_len - pos - FRAME_HEAD - FRAME_SUM {
            quarantine(&mut w, frame_idx, at, QuarantineReason::Torn);
            break;
        }
        payload.resize(payload_len as usize, 0);
        pcharge.resync(payload.capacity() as u64);
        file.read_exact(&mut payload)?;
        let mut sum = [0u8; 8];
        file.read_exact(&mut sum)?;
        pos += FRAME_HEAD + payload_len + FRAME_SUM;
        if fnv1a(&payload) != u64::from_le_bytes(sum) {
            quarantine(&mut w, frame_idx, at, QuarantineReason::BadChecksum);
            break;
        }
        match kind {
            FRAME_CHUNK => {
                let (rows, meta, cols) = match parse_chunk_payload(&payload, w.chunk_rows) {
                    Ok(p) => p,
                    Err(_) => {
                        quarantine(&mut w, frame_idx, at, QuarantineReason::Malformed);
                        break;
                    }
                };
                // Deep verify: decode once and recompute the meta; a chunk
                // whose bytes decode to different statistics than its seal
                // recorded is corruption the checksum happened to miss.
                let chunk = CompressedChunk::from_parts(rows, meta.clone(), cols);
                buf.clear_rows();
                let ok = chunk.decode_into(&mut buf, false).is_ok() && {
                    let mut recomputed = ChunkMeta::default();
                    for i in 0..rows {
                        recomputed.absorb(
                            buf.rank[i],
                            buf.app[i],
                            buf.layer[i],
                            buf.op[i],
                            buf.file[i],
                        );
                    }
                    recomputed == meta
                };
                bcharge.resync(columnar_capacity_bytes(&buf));
                if !ok {
                    quarantine(&mut w, frame_idx, at, QuarantineReason::Codec);
                    break;
                }
                w.seen_records += rows as u64;
                w.seen_chunks.push((frame_idx, at, meta));
            }
            FRAME_INTERN => match parse_intern_payload(&payload) {
                Ok((mut files, mut apps)) => {
                    w.files.append(&mut files);
                    w.apps.append(&mut apps);
                }
                Err(_) => {
                    quarantine(&mut w, frame_idx, at, QuarantineReason::Malformed);
                    break;
                }
            },
            FRAME_COMMIT | FRAME_FOOTER => {
                let mut cur = Cur::new(&payload);
                let chunks = cur.u64();
                let records = cur.u64();
                let foot_rows = (kind == FRAME_FOOTER).then(|| cur.u64()).flatten();
                let files = cur.u64();
                let apps = cur.u64();
                let sane = match (chunks, records, files, apps) {
                    (Some(c), Some(r), Some(f), Some(a)) => {
                        cur.done()
                            && c == w.seen_chunks.len() as u64
                            && r == w.seen_records
                            && f <= w.files.len() as u64
                            && a <= w.apps.len() as u64
                            && (kind != FRAME_FOOTER || foot_rows == Some(w.chunk_rows as u64))
                    }
                    _ => false,
                };
                if !sane {
                    quarantine(&mut w, frame_idx, at, QuarantineReason::Malformed);
                    break;
                }
                w.committed_chunks = chunks.unwrap();
                w.committed_records = records.unwrap();
                w.committed_files = files.unwrap();
                w.committed_apps = apps.unwrap();
                if kind == FRAME_FOOTER {
                    w.sealed = true;
                    if pos < file_len {
                        // Bytes after a footer were never written by our
                        // writer; stop before misreading them.
                        quarantine(&mut w, frame_idx + 1, pos, QuarantineReason::Malformed);
                        break;
                    }
                } else {
                    w.commits_seen += 1;
                }
            }
            _ => {
                quarantine(&mut w, frame_idx, at, QuarantineReason::UnknownKind);
                break;
            }
        }
        frame_idx += 1;
    }
    // Readable chunks past the adopted commit point are not recoverable.
    for &(frame, offset, _) in w.seen_chunks.iter().skip(w.committed_chunks as usize) {
        w.quarantined.push(QuarantinedSegment {
            frame,
            offset,
            reason: QuarantineReason::Uncommitted,
        });
    }
    w.files.truncate(w.committed_files as usize);
    w.apps.truncate(w.committed_apps as usize);
    Ok(w)
}

impl Walk {
    fn completeness(&self) -> TraceCompleteness {
        // A damaged frame (torn / bad checksum / malformed / codec) hides
        // its own contents, so the walk cannot know how much followed it.
        // Count it as one expected-but-lost group: recovery from a
        // damaged log is never reported as provably complete.
        let damaged = self
            .quarantined
            .iter()
            .any(|q| q.reason != QuarantineReason::Uncommitted) as u64;
        let (expected_records, expected_groups) = if self.sealed {
            (self.committed_records, self.committed_chunks)
        } else {
            (self.seen_records, self.seen_chunks.len() as u64 + damaged)
        };
        TraceCompleteness {
            expected_records,
            loaded_records: self.committed_records,
            expected_groups,
            loaded_groups: self.committed_chunks,
        }
    }

    fn report(&self) -> FsckReport {
        FsckReport {
            completeness: self.completeness(),
            sealed: self.sealed,
            committed_chunks: self.committed_chunks,
            committed_records: self.committed_records,
            fsync_points: self.commits_seen + self.sealed as u64,
            quarantined: self.quarantined.clone(),
        }
    }
}

/// Recovery pass: walk a (possibly mutilated) spill log, verify every
/// frame, and report the longest committed prefix plus quarantined
/// segments. Never panics on damage; errors only when the file cannot be
/// opened or is not a spill log at all.
pub fn fsck(path: &Path) -> Result<FsckReport, SpillError> {
    Ok(walk(path)?.report())
}

/// A verified spill log the streaming analyzer folds straight off disk.
/// Holds only the committed prefix's metadata (dims, intern tables,
/// per-chunk seal metas are *not* retained — just their merge); each
/// [`scan_chunks`](ChunkSource::scan_chunks) pass re-reads the file one
/// frame at a time, so resident bytes stay bounded by one chunk
/// regardless of log size.
#[derive(Debug)]
pub struct SpillSource {
    path: PathBuf,
    chunk_rows: usize,
    committed_chunks: u64,
    committed_records: u64,
    file_paths: Vec<String>,
    app_names: Vec<String>,
    merged: ChunkMeta,
    report: FsckReport,
}

impl SpillSource {
    /// Open a log that must be sealed, fully committed, and anomaly-free;
    /// any damage is a typed error (the strict loader's contract).
    pub fn open_strict(path: &Path) -> Result<SpillSource, SpillError> {
        let src = SpillSource::open_salvaged(path)?;
        if let Some(q) = src.report.quarantined.first() {
            return Err(match q.reason {
                QuarantineReason::Uncommitted => SpillError::Uncommitted {
                    chunks: src.report.completeness.expected_groups,
                    committed: src.committed_chunks,
                },
                QuarantineReason::BadChecksum => SpillError::BadChecksum {
                    frame: q.frame,
                    offset: q.offset,
                },
                QuarantineReason::Torn => SpillError::Torn {
                    offset: q.offset,
                    detail: "frame runs past end of file".into(),
                },
                QuarantineReason::Codec => SpillError::Codec {
                    chunk: src.committed_chunks,
                    detail: "chunk failed deep verification".into(),
                },
                QuarantineReason::Malformed | QuarantineReason::UnknownKind => {
                    SpillError::Malformed {
                        frame: q.frame,
                        offset: q.offset,
                        detail: "frame payload did not parse".into(),
                    }
                }
            });
        }
        if !src.report.sealed {
            return Err(SpillError::Unsealed {
                committed_chunks: src.committed_chunks,
            });
        }
        Ok(src)
    }

    /// Open whatever the log holds: recover the longest committed prefix
    /// and keep the [`FsckReport`] for diagnostics. Errors only when the
    /// file cannot be opened or is not a spill log.
    pub fn open_salvaged(path: &Path) -> Result<SpillSource, SpillError> {
        let w = walk(path)?;
        let mut merged = ChunkMeta::default();
        for (_, _, meta) in w.seen_chunks.iter().take(w.committed_chunks as usize) {
            merged.merge(meta);
        }
        let report = w.report();
        Ok(SpillSource {
            path: path.to_path_buf(),
            chunk_rows: w.chunk_rows,
            committed_chunks: w.committed_chunks,
            committed_records: w.committed_records,
            file_paths: w.files,
            app_names: w.apps,
            merged,
            report,
        })
    }

    /// The recovery report from open time.
    pub fn report(&self) -> &FsckReport {
        &self.report
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records in the committed prefix.
    pub fn len(&self) -> u64 {
        self.committed_records
    }

    /// Whether the committed prefix holds no records.
    pub fn is_empty(&self) -> bool {
        self.committed_records == 0
    }

    /// Materialize the committed prefix as an in-memory [`ChunkedTrace`]
    /// (the persist-compat path; defeats the memory bound by design).
    pub fn to_chunked(&self) -> Result<ChunkedTrace, SpillError> {
        let mut chunks = Vec::with_capacity(self.committed_chunks as usize);
        self.scan_chunks(&mut |ch: &CompressedChunk| chunks.push(ch.clone()))?;
        Ok(ChunkedTrace {
            chunk_rows: self.chunk_rows,
            chunks,
            file_paths: self.file_paths.clone(),
            app_names: self.app_names.clone(),
        })
    }
}

/// Anything the streaming analyzer can fold chunks out of, in capture
/// order: an in-memory [`ChunkedTrace`] or an on-disk [`SpillSource`].
/// Multi-pass by design — the analyzer's pattern fallback re-scans.
pub trait ChunkSource {
    /// Rows per full chunk.
    fn chunk_rows(&self) -> usize;
    /// File id → path.
    fn file_paths(&self) -> &[String];
    /// App id → name.
    fn app_names(&self) -> &[String];
    /// Merge of every chunk's seal-time statistics.
    fn merged_meta(&self) -> ChunkMeta;
    /// Total records.
    fn total_records(&self) -> u64;
    /// Visit every chunk in capture order. May be called repeatedly.
    fn scan_chunks(&self, f: &mut dyn FnMut(&CompressedChunk)) -> Result<(), SpillError>;
}

impl ChunkSource for ChunkedTrace {
    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn file_paths(&self) -> &[String] {
        &self.file_paths
    }

    fn app_names(&self) -> &[String] {
        &self.app_names
    }

    fn merged_meta(&self) -> ChunkMeta {
        ChunkedTrace::merged_meta(self)
    }

    fn total_records(&self) -> u64 {
        self.len() as u64
    }

    fn scan_chunks(&self, f: &mut dyn FnMut(&CompressedChunk)) -> Result<(), SpillError> {
        for ch in &self.chunks {
            f(ch);
        }
        Ok(())
    }
}

impl ChunkSource for SpillSource {
    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn file_paths(&self) -> &[String] {
        &self.file_paths
    }

    fn app_names(&self) -> &[String] {
        &self.app_names
    }

    fn merged_meta(&self) -> ChunkMeta {
        self.merged.clone()
    }

    fn total_records(&self) -> u64 {
        self.committed_records
    }

    /// Re-read the file one frame at a time, handing each committed chunk
    /// to `f`. Frames were verified at open; checksums are re-checked
    /// cheaply in case the file changed underneath us.
    fn scan_chunks(&self, f: &mut dyn FnMut(&CompressedChunk)) -> Result<(), SpillError> {
        let mut file = File::open(&self.path)?;
        let file_len = file.metadata()?.len();
        let mut head = [0u8; 19];
        file.read_exact(&mut head)?;
        let mut pos = 19u64;
        let mut frame_idx = 0u64;
        let mut payload: Vec<u8> = Vec::new();
        let mut pcharge = GaugeCharge::default();
        let mut handed = 0u64;
        while pos < file_len && handed < self.committed_chunks {
            let at = pos;
            if file_len - pos < FRAME_HEAD + FRAME_SUM {
                return Err(SpillError::Torn {
                    offset: at,
                    detail: "file shrank since open".into(),
                });
            }
            let mut fh = [0u8; 9];
            file.read_exact(&mut fh)?;
            let kind = fh[0];
            let payload_len = u64::from_le_bytes(fh[1..9].try_into().unwrap());
            if payload_len > file_len - pos - FRAME_HEAD - FRAME_SUM {
                return Err(SpillError::Torn {
                    offset: at,
                    detail: "frame runs past end of file".into(),
                });
            }
            payload.resize(payload_len as usize, 0);
            pcharge.resync(payload.capacity() as u64);
            file.read_exact(&mut payload)?;
            let mut sum = [0u8; 8];
            file.read_exact(&mut sum)?;
            pos += FRAME_HEAD + payload_len + FRAME_SUM;
            if fnv1a(&payload) != u64::from_le_bytes(sum) {
                return Err(SpillError::BadChecksum {
                    frame: frame_idx,
                    offset: at,
                });
            }
            if kind == FRAME_CHUNK {
                let (rows, meta, cols) =
                    parse_chunk_payload(&payload, self.chunk_rows).map_err(|detail| {
                        SpillError::Malformed {
                            frame: frame_idx,
                            offset: at,
                            detail,
                        }
                    })?;
                let chunk = CompressedChunk::from_parts(rows, meta, cols);
                f(&chunk);
                handed += 1;
            }
            frame_idx += 1;
        }
        if handed != self.committed_chunks {
            return Err(SpillError::Torn {
                offset: pos,
                detail: format!(
                    "expected {} committed chunk(s), found {handed}",
                    self.committed_chunks
                ),
            });
        }
        Ok(())
    }
}

/// Strict v3 load: the log must be sealed and anomaly-free.
pub fn load_spill(path: &Path) -> Result<ChunkedTrace, SpillError> {
    SpillSource::open_strict(path)?.to_chunked()
}

/// Salvage v3 load: recover the longest committed prefix and report how
/// much of the log survived.
pub fn load_spill_salvaged(path: &Path) -> Result<(ChunkedTrace, TraceCompleteness), SpillError> {
    let src = SpillSource::open_salvaged(path)?;
    let completeness = src.report.completeness;
    Ok((src.to_chunked()?, completeness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AppId, FileId, Layer, OpKind};
    use sim_core::SimTime;

    fn synthetic(n: usize) -> ColumnarTrace {
        let mut c = ColumnarTrace::with_capacity(n);
        for i in 0..n as u64 {
            c.push_row(
                (i % 8) as u32,
                (i % 2) as u32,
                AppId((i % 2) as u16),
                Layer::Posix,
                if i % 9 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                SimTime(i * 10),
                SimTime(i * 10 + 4),
                Some(FileId((i % 5) as u32)),
                i * 512,
                4096,
            );
        }
        c.file_paths = (0..5).map(|i| format!("/spill/f{i}")).collect();
        c.app_names = vec!["app0".into(), "app1".into()];
        c
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vani-spill-unit-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn round_trip_is_identity() {
        let dir = tmp_dir("rt");
        let c = synthetic(1000);
        let path = dir.join("t.vsp3");
        let sum = spill_columnar(&c, 128, &path, SpillFaultPlan::none()).expect("spills");
        assert_eq!(sum.chunks, 8);
        assert_eq!(sum.records, 1000);
        let direct = ChunkedTrace::from_columnar(&c, 128);
        let loaded = load_spill(&path).expect("loads");
        assert_eq!(loaded, direct);
        let report = fsck(&path).expect("fscks");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.fsync_points, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_trace_seals_with_intern_tables() {
        let dir = tmp_dir("empty");
        let c = synthetic(0);
        let path = dir.join("e.vsp3");
        spill_columnar(&c, 64, &path, SpillFaultPlan::none()).expect("spills");
        let loaded = load_spill(&path).expect("loads");
        assert!(loaded.is_empty());
        assert_eq!(loaded.file_paths.len(), 5);
        assert_eq!(loaded.app_names.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_faults_leave_recoverable_prefix() {
        let dir = tmp_dir("crash");
        let c = synthetic(640);
        for (i, kind) in [
            SpillFaultKind::PartialAppend,
            SpillFaultKind::CrashBeforeCommit,
        ]
        .into_iter()
        .enumerate()
        {
            let path = dir.join(format!("c{i}.vsp3"));
            let plan = SpillFaultPlan::at_chunk(kind, 42, 3);
            let err = spill_columnar(&c, 64, &path, plan).expect_err("fault fires");
            let surviving = match err {
                SpillError::Injected { path, .. } => path,
                other => panic!("expected Injected, got {other}"),
            };
            let report = fsck(&surviving).expect("fsck never fails on damage");
            assert!(!report.sealed);
            assert_eq!(report.committed_chunks, 3, "{kind}");
            assert_eq!(report.committed_records, 192, "{kind}");
            assert!(!report.quarantined.is_empty(), "{kind}");
            let (trace, comp) = load_spill_salvaged(&surviving).expect("salvage");
            assert_eq!(trace.len(), 192);
            assert_eq!(comp.loaded_records, 192);
            assert!(!comp.is_complete());
            let _ = fs::remove_file(&surviving);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_typed_and_leaves_no_litter() {
        let dir = tmp_dir("enospc");
        let c = synthetic(640);
        let path = dir.join("n.vsp3");
        let plan = SpillFaultPlan::at_chunk(SpillFaultKind::Enospc, 7, 5);
        let err = spill_columnar(&c, 64, &path, plan).expect_err("device fills");
        assert!(matches!(err, SpillError::Enospc { .. }), "{err}");
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "guard must remove the temp file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_latent_until_verified() {
        let dir = tmp_dir("flip");
        let c = synthetic(640);
        let path = dir.join("b.vsp3");
        let plan = SpillFaultPlan::at_chunk(SpillFaultKind::BitFlip, 11, 4);
        // The write completes and the log seals normally.
        spill_columnar(&c, 64, &path, plan).expect("latent fault");
        assert!(matches!(
            SpillSource::open_strict(&path),
            Err(SpillError::BadChecksum { .. })
        ));
        let report = fsck(&path).expect("fsck");
        assert_eq!(report.committed_chunks, 4);
        assert!(report
            .quarantined
            .iter()
            .any(|q| q.reason == QuarantineReason::BadChecksum));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_write_keeps_every_commit() {
        let dir = tmp_dir("torn");
        let c = synthetic(640);
        let path = dir.join("t.vsp3");
        let plan = SpillFaultPlan::at_chunk(SpillFaultKind::TornFinalWrite, 3, 0);
        let err = spill_columnar(&c, 64, &path, plan).expect_err("footer tears");
        let surviving = match err {
            SpillError::Injected { path, .. } => path,
            other => panic!("expected Injected, got {other}"),
        };
        let report = fsck(&surviving).expect("fsck");
        assert!(!report.sealed);
        assert_eq!(report.committed_chunks, 10);
        assert_eq!(report.committed_records, 640);
        let (trace, _) = load_spill_salvaged(&surviving).expect("salvage");
        assert_eq!(trace.to_columnar().expect("decodes"), c);
        let _ = fs::remove_file(&surviving);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_write_panic_leaves_directory_clean() {
        let dir = tmp_dir("panic");
        let path = dir.join("p.vsp3");
        let c = synthetic(100);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = SpillWriter::create(&path, 64, SpillFaultPlan::none()).expect("creates");
            let mut scratch = Vec::new();
            let chunk = CompressedChunk::seal(&c, 0..64, &mut scratch);
            w.append(&chunk, &c.file_paths, &c.app_names)
                .expect("appends");
            panic!("simulated capture panic");
        }));
        assert!(result.is_err());
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "RAII guard must remove the temp file during unwind"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_on_nonexistent_and_non_spill_paths_is_typed() {
        let dir = tmp_dir("typed");
        assert!(matches!(
            fsck(&dir.join("missing.vsp3")),
            Err(SpillError::Io(_))
        ));
        let junk = dir.join("junk.bin");
        fs::write(&junk, b"not a spill log at all").expect("writes");
        assert!(matches!(fsck(&junk), Err(SpillError::NotSpill { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
