//! Column-major trace storage and analysis kernels.
//!
//! Recorder logs are row-major; the paper converts them to parquet and runs
//! DASK over the columns because filtering and aggregation are hopelessly
//! slow row-by-row. [`ColumnarTrace`] is that conversion: a struct-of-arrays
//! copy of the trace with rayon-parallel filter and group-by kernels the
//! analyzer builds everything else out of.

use crate::record::{AppId, FileId, Layer, OpKind, TraceRecord};
use crate::tracer::Tracer;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sim_core::{Dur, SimTime};
use std::collections::HashMap;

/// Sentinel for "no file" in the file column.
const NO_FILE: u32 = u32::MAX;

/// A struct-of-arrays view of a whole trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColumnarTrace {
    /// Caller rank per record.
    pub rank: Vec<u32>,
    /// Caller node per record.
    pub node: Vec<u32>,
    /// Application id per record.
    pub app: Vec<u16>,
    /// Capture layer per record.
    pub layer: Vec<Layer>,
    /// Operation per record.
    pub op: Vec<OpKind>,
    /// Start time (ns) per record.
    pub start: Vec<u64>,
    /// End time (ns) per record.
    pub end: Vec<u64>,
    /// File id per record (`u32::MAX` = none).
    pub file: Vec<u32>,
    /// Offset per record.
    pub offset: Vec<u64>,
    /// Bytes moved per record.
    pub bytes: Vec<u64>,
    /// File id → path.
    pub file_paths: Vec<String>,
    /// App id → name.
    pub app_names: Vec<String>,
}

/// Aggregate over a group of records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupAgg {
    /// Record count.
    pub ops: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total busy time.
    pub time: Dur,
}

impl ColumnarTrace {
    /// Convert a captured trace to columns.
    pub fn from_tracer(t: &Tracer) -> Self {
        Self::from_records(t.records(), t.file_paths().to_vec(), t.app_names().to_vec())
    }

    /// Convert raw records to columns.
    pub fn from_records(records: &[TraceRecord], file_paths: Vec<String>, app_names: Vec<String>) -> Self {
        let n = records.len();
        let mut c = ColumnarTrace {
            rank: Vec::with_capacity(n),
            node: Vec::with_capacity(n),
            app: Vec::with_capacity(n),
            layer: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            file: Vec::with_capacity(n),
            offset: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            file_paths,
            app_names,
        };
        for r in records {
            c.rank.push(r.rank);
            c.node.push(r.node);
            c.app.push(r.app.0);
            c.layer.push(r.layer);
            c.op.push(r.op);
            c.start.push(r.start.as_nanos());
            c.end.push(r.end.as_nanos());
            c.file.push(r.file.map(|f| f.0).unwrap_or(NO_FILE));
            c.offset.push(r.offset);
            c.bytes.push(r.bytes);
        }
        c
    }

    /// Reconstruct row-major records (inverse of [`Self::from_records`]).
    pub fn to_records(&self) -> Vec<TraceRecord> {
        (0..self.len())
            .map(|i| TraceRecord {
                rank: self.rank[i],
                node: self.node[i],
                app: AppId(self.app[i]),
                layer: self.layer[i],
                op: self.op[i],
                start: SimTime(self.start[i]),
                end: SimTime(self.end[i]),
                file: self.file_id(i),
                offset: self.offset[i],
                bytes: self.bytes[i],
            })
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// The file id of record `i`, if any.
    pub fn file_id(&self, i: usize) -> Option<FileId> {
        (self.file[i] != NO_FILE).then(|| FileId(self.file[i]))
    }

    /// Duration of record `i`.
    pub fn dur(&self, i: usize) -> Dur {
        Dur(self.end[i].saturating_sub(self.start[i]))
    }

    /// Indices matching a predicate, in record order (rayon-parallel scan).
    pub fn select<P>(&self, pred: P) -> Vec<u32>
    where
        P: Fn(usize) -> bool + Sync,
    {
        let mut v: Vec<u32> = (0..self.len() as u32)
            .into_par_iter()
            .filter(|&i| pred(i as usize))
            .collect();
        v.sort_unstable();
        v
    }

    /// Indices of all I/O operations (data + metadata).
    pub fn io_ops(&self) -> Vec<u32> {
        self.select(|i| self.op[i].is_io())
    }

    /// Indices of data operations at a given layer, or across layers.
    pub fn data_ops(&self, layer: Option<Layer>) -> Vec<u32> {
        self.select(|i| self.op[i].is_data() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Indices of metadata operations at a given layer, or across layers.
    pub fn meta_ops(&self, layer: Option<Layer>) -> Vec<u32> {
        self.select(|i| self.op[i].is_meta() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Sum of `bytes` over a selection.
    pub fn sum_bytes(&self, sel: &[u32]) -> u64 {
        sel.par_iter().map(|&i| self.bytes[i as usize]).sum()
    }

    /// Sum of durations over a selection.
    pub fn sum_time(&self, sel: &[u32]) -> Dur {
        Dur(sel
            .par_iter()
            .map(|&i| self.end[i as usize] - self.start[i as usize])
            .sum())
    }

    /// Group a selection by file id.
    pub fn group_by_file(&self, sel: &[u32]) -> HashMap<u32, GroupAgg> {
        self.group_by(sel, |i| self.file[i])
    }

    /// Group a selection by rank.
    pub fn group_by_rank(&self, sel: &[u32]) -> HashMap<u32, GroupAgg> {
        self.group_by(sel, |i| self.rank[i])
    }

    /// Group a selection by app id.
    pub fn group_by_app(&self, sel: &[u32]) -> HashMap<u16, GroupAgg> {
        self.group_by(sel, |i| self.app[i])
    }

    /// Generic group-by over a selection.
    pub fn group_by<K, F>(&self, sel: &[u32], key: F) -> HashMap<K, GroupAgg>
    where
        K: std::hash::Hash + Eq + Send,
        F: Fn(usize) -> K + Sync,
    {
        sel.par_iter()
            .fold(HashMap::new, |mut acc: HashMap<K, GroupAgg>, &i| {
                let i = i as usize;
                let e = acc.entry(key(i)).or_default();
                e.ops += 1;
                e.bytes += self.bytes[i];
                e.time += Dur(self.end[i] - self.start[i]);
                acc
            })
            .reduce(HashMap::new, |mut a, b| {
                for (k, v) in b {
                    let e = a.entry(k).or_default();
                    e.ops += v.ops;
                    e.bytes += v.bytes;
                    e.time += v.time;
                }
                a
            })
    }

    /// Earliest start over the whole trace.
    pub fn t_min(&self) -> SimTime {
        SimTime(self.start.par_iter().copied().min().unwrap_or(0))
    }

    /// Latest end over the whole trace.
    pub fn t_max(&self) -> SimTime {
        SimTime(self.end.par_iter().copied().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Tracer {
        let mut t = Tracer::new();
        let f0 = t.file_id("/a");
        let f1 = t.file_id("/b");
        let app = t.app_id("app");
        // rank 0: open, write 100 B (1 s), close on /a
        t.record(0, 0, app, Layer::Posix, OpKind::Open, SimTime(0), SimTime(10), Some(f0), 0, 0);
        t.record(0, 0, app, Layer::Posix, OpKind::Write, SimTime(10), SimTime(1_000_000_010), Some(f0), 0, 100);
        t.record(0, 0, app, Layer::Posix, OpKind::Close, SimTime(1_000_000_010), SimTime(1_000_000_020), Some(f0), 0, 0);
        // rank 1: read 50 B on /b, compute
        t.record(1, 0, app, Layer::Stdio, OpKind::Read, SimTime(0), SimTime(500), Some(f1), 0, 50);
        t.record(1, 0, app, Layer::App, OpKind::Compute, SimTime(500), SimTime(10_000), None, 0, 0);
        t
    }

    #[test]
    fn conversion_round_trips() {
        let t = sample_trace();
        let c = ColumnarTrace::from_tracer(&t);
        assert_eq!(c.len(), 5);
        let back = c.to_records();
        assert_eq!(back.as_slice(), t.records());
    }

    #[test]
    fn selections_split_data_and_meta() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        assert_eq!(c.data_ops(None).len(), 2);
        assert_eq!(c.meta_ops(None).len(), 2);
        assert_eq!(c.io_ops().len(), 4);
        assert_eq!(c.data_ops(Some(Layer::Posix)).len(), 1);
        assert_eq!(c.data_ops(Some(Layer::Stdio)).len(), 1);
    }

    #[test]
    fn aggregates_are_correct() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        let data = c.data_ops(None);
        assert_eq!(c.sum_bytes(&data), 150);
        let by_file = c.group_by_file(&data);
        assert_eq!(by_file[&0].bytes, 100);
        assert_eq!(by_file[&1].bytes, 50);
        let by_rank = c.group_by_rank(&c.io_ops());
        assert_eq!(by_rank[&0].ops, 3);
        assert_eq!(by_rank[&1].ops, 1);
    }

    #[test]
    fn time_range_spans_all_records() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        assert_eq!(c.t_min(), SimTime(0));
        assert_eq!(c.t_max(), SimTime(1_000_000_020));
    }

    proptest! {
        /// Row → column → row is the identity for arbitrary records.
        #[test]
        fn prop_round_trip(
            recs in proptest::collection::vec(
                (0u32..8, 0u32..4, 0u64..1_000, 1u64..1_000, 0u64..4096, 0u64..65536),
                0..50,
            )
        ) {
            let records: Vec<TraceRecord> = recs
                .iter()
                .map(|&(rank, node, start, dur, off, bytes)| TraceRecord {
                    rank,
                    node,
                    app: AppId(0),
                    layer: Layer::Posix,
                    op: if bytes % 2 == 0 { OpKind::Read } else { OpKind::Open },
                    start: SimTime(start),
                    end: SimTime(start + dur),
                    file: if bytes % 3 == 0 { None } else { Some(FileId(rank)) },
                    offset: off,
                    bytes,
                })
                .collect();
            let c = ColumnarTrace::from_records(&records, vec!["/f".into(); 8], vec!["a".into()]);
            prop_assert_eq!(c.to_records(), records);
        }

        /// group_by_rank partitions the selection: totals match.
        #[test]
        fn prop_group_by_partitions(
            recs in proptest::collection::vec((0u32..5, 1u64..100), 1..100)
        ) {
            let records: Vec<TraceRecord> = recs
                .iter()
                .enumerate()
                .map(|(i, &(rank, bytes))| TraceRecord {
                    rank,
                    node: 0,
                    app: AppId(0),
                    layer: Layer::Posix,
                    op: OpKind::Write,
                    start: SimTime(i as u64),
                    end: SimTime(i as u64 + 1),
                    file: None,
                    offset: 0,
                    bytes,
                })
                .collect();
            let c = ColumnarTrace::from_records(&records, vec![], vec!["a".into()]);
            let sel = c.data_ops(None);
            let groups = c.group_by_rank(&sel);
            let total_ops: u64 = groups.values().map(|g| g.ops).sum();
            let total_bytes: u64 = groups.values().map(|g| g.bytes).sum();
            prop_assert_eq!(total_ops, recs.len() as u64);
            prop_assert_eq!(total_bytes, c.sum_bytes(&sel));
        }
    }
}
