//! Column-major trace storage and analysis kernels.
//!
//! Recorder logs are row-major; the paper converts them to parquet and runs
//! DASK over the columns because filtering and aggregation are hopelessly
//! slow row-by-row. [`ColumnarTrace`] is that conversion: a struct-of-arrays
//! copy of the trace with parallel filter and group-by kernels (built on
//! [`vani_rt::par`]) the analyzer builds everything else out of.

use crate::record::{AppId, FileId, Layer, OpKind, TraceRecord};
use crate::tracer::Tracer;
use sim_core::{Dur, SimTime};
use std::collections::HashMap;
use vani_rt::par;
use vani_rt::Selection;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// Sentinel for "no file" in the file column.
pub(crate) const NO_FILE: u32 = u32::MAX;

/// A struct-of-arrays view of a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarTrace {
    /// Caller rank per record.
    pub rank: Vec<u32>,
    /// Caller node per record.
    pub node: Vec<u32>,
    /// Application id per record.
    pub app: Vec<u16>,
    /// Capture layer per record.
    pub layer: Vec<Layer>,
    /// Operation per record.
    pub op: Vec<OpKind>,
    /// Start time (ns) per record.
    pub start: Vec<u64>,
    /// End time (ns) per record.
    pub end: Vec<u64>,
    /// File id per record (`u32::MAX` = none).
    pub file: Vec<u32>,
    /// Offset per record.
    pub offset: Vec<u64>,
    /// Bytes moved per record.
    pub bytes: Vec<u64>,
    /// File id → path.
    pub file_paths: Vec<String>,
    /// App id → name.
    pub app_names: Vec<String>,
}

/// Aggregate over a group of records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupAgg {
    /// Record count.
    pub ops: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total busy time.
    pub time: Dur,
}

impl ColumnarTrace {
    /// Columnar view of a captured trace.
    ///
    /// Since the tracer captures straight into columns this is a plain
    /// clone of the column vectors (one memcpy per column) — the historical
    /// row → column transpose is gone. Kept as a compat shim; prefer
    /// [`Tracer::columnar`] for a borrowed view that copies nothing.
    pub fn from_tracer(t: &Tracer) -> Self {
        t.to_columnar()
    }

    /// Empty trace with all ten columns pre-sized for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        ColumnarTrace {
            rank: Vec::with_capacity(n),
            node: Vec::with_capacity(n),
            app: Vec::with_capacity(n),
            layer: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            file: Vec::with_capacity(n),
            offset: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            file_paths: Vec::new(),
            app_names: Vec::new(),
        }
    }

    /// Check that all ten data columns agree on the record count (the
    /// `rank` column is authoritative). Returns the first offending column
    /// as `(name, its_len, expected_len)` — loaders reject such traces
    /// instead of silently zipping short columns against long ones.
    pub fn validate(&self) -> Result<(), (String, usize, usize)> {
        let n = self.rank.len();
        for (name, len) in [
            ("node", self.node.len()),
            ("app", self.app.len()),
            ("layer", self.layer.len()),
            ("op", self.op.len()),
            ("start", self.start.len()),
            ("end", self.end.len()),
            ("file", self.file.len()),
            ("offset", self.offset.len()),
            ("bytes", self.bytes.len()),
        ] {
            if len != n {
                return Err((name.to_string(), len, n));
            }
        }
        Ok(())
    }

    /// Reserve room for at least `additional` more records in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.rank.reserve(additional);
        self.node.reserve(additional);
        self.app.reserve(additional);
        self.layer.reserve(additional);
        self.op.reserve(additional);
        self.start.reserve(additional);
        self.end.reserve(additional);
        self.file.reserve(additional);
        self.offset.reserve(additional);
        self.bytes.reserve(additional);
    }

    /// Drop every record while keeping column capacity and the intern
    /// tables. The chunked capture path seals a full buffer and recycles it
    /// for the next chunk without reallocating.
    pub fn clear_rows(&mut self) {
        self.rank.clear();
        self.node.clear();
        self.app.clear();
        self.layer.clear();
        self.op.clear();
        self.start.clear();
        self.end.clear();
        self.file.clear();
        self.offset.clear();
        self.bytes.clear();
    }

    /// Append one record directly to the columns (the capture hot path —
    /// no intermediate row struct is materialized).
    #[allow(clippy::too_many_arguments)]
    pub fn push_row(
        &mut self,
        rank: u32,
        node: u32,
        app: AppId,
        layer: Layer,
        op: OpKind,
        start: SimTime,
        end: SimTime,
        file: Option<FileId>,
        offset: u64,
        bytes: u64,
    ) {
        self.rank.push(rank);
        self.node.push(node);
        self.app.push(app.0);
        self.layer.push(layer);
        self.op.push(op);
        self.start.push(start.as_nanos());
        self.end.push(end.as_nanos());
        self.file.push(file.map(|f| f.0).unwrap_or(NO_FILE));
        self.offset.push(offset);
        self.bytes.push(bytes);
    }

    /// Convert raw records to columns.
    pub fn from_records(
        records: &[TraceRecord],
        file_paths: Vec<String>,
        app_names: Vec<String>,
    ) -> Self {
        let n = records.len();
        let mut c = ColumnarTrace {
            rank: Vec::with_capacity(n),
            node: Vec::with_capacity(n),
            app: Vec::with_capacity(n),
            layer: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            file: Vec::with_capacity(n),
            offset: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            file_paths,
            app_names,
        };
        for r in records {
            c.rank.push(r.rank);
            c.node.push(r.node);
            c.app.push(r.app.0);
            c.layer.push(r.layer);
            c.op.push(r.op);
            c.start.push(r.start.as_nanos());
            c.end.push(r.end.as_nanos());
            c.file.push(r.file.map(|f| f.0).unwrap_or(NO_FILE));
            c.offset.push(r.offset);
            c.bytes.push(r.bytes);
        }
        c
    }

    /// Reconstruct row-major records (inverse of [`Self::from_records`]).
    pub fn to_records(&self) -> Vec<TraceRecord> {
        (0..self.len())
            .map(|i| TraceRecord {
                rank: self.rank[i],
                node: self.node[i],
                app: AppId(self.app[i]),
                layer: self.layer[i],
                op: self.op[i],
                start: SimTime(self.start[i]),
                end: SimTime(self.end[i]),
                file: self.file_id(i),
                offset: self.offset[i],
                bytes: self.bytes[i],
            })
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// The file id of record `i`, if any.
    pub fn file_id(&self, i: usize) -> Option<FileId> {
        (self.file[i] != NO_FILE).then(|| FileId(self.file[i]))
    }

    /// Duration of record `i`.
    pub fn dur(&self, i: usize) -> Dur {
        Dur(self.end[i].saturating_sub(self.start[i]))
    }

    /// Indices matching a predicate, in record order (parallel scan with a
    /// sequential fast path below `rt::par::SEQ_THRESHOLD` records).
    ///
    /// Prefer [`Self::mask`] where an index list is not strictly needed:
    /// a [`Selection`] costs one bit per record instead of four bytes per
    /// match and feeds the same aggregation kernels.
    pub fn select<P>(&self, pred: P) -> Vec<u32>
    where
        P: Fn(usize) -> bool + Sync,
    {
        par::par_filter_indices(self.len(), pred)
    }

    /// Records matching a predicate, as a lazy bitmap (parallel scan).
    pub fn mask<P>(&self, pred: P) -> Selection
    where
        P: Fn(usize) -> bool + Sync,
    {
        Selection::from_pred(self.len(), pred)
    }

    /// Bitmap of all I/O operations (data + metadata).
    pub fn io_mask(&self) -> Selection {
        self.mask(|i| self.op[i].is_io())
    }

    /// Bitmap of data operations at a given layer, or across layers.
    pub fn data_mask(&self, layer: Option<Layer>) -> Selection {
        self.mask(|i| self.op[i].is_data() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Bitmap of metadata operations at a given layer, or across layers.
    pub fn meta_mask(&self, layer: Option<Layer>) -> Selection {
        self.mask(|i| self.op[i].is_meta() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Indices of all I/O operations (data + metadata).
    pub fn io_ops(&self) -> Vec<u32> {
        self.select(|i| self.op[i].is_io())
    }

    /// Indices of data operations at a given layer, or across layers.
    pub fn data_ops(&self, layer: Option<Layer>) -> Vec<u32> {
        self.select(|i| self.op[i].is_data() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Indices of metadata operations at a given layer, or across layers.
    pub fn meta_ops(&self, layer: Option<Layer>) -> Vec<u32> {
        self.select(|i| self.op[i].is_meta() && layer.is_none_or(|l| self.layer[i] == l))
    }

    /// Sum of `bytes` over a selection.
    pub fn sum_bytes(&self, sel: &[u32]) -> u64 {
        par::par_reduce(
            sel,
            || 0u64,
            |acc, &i| acc + self.bytes[i as usize],
            |a, b| a + b,
        )
    }

    /// Sum of durations over a selection.
    pub fn sum_time(&self, sel: &[u32]) -> Dur {
        Dur(par::par_reduce(
            sel,
            || 0u64,
            |acc, &i| acc + (self.end[i as usize] - self.start[i as usize]),
            |a, b| a + b,
        ))
    }

    /// Sum of `bytes` over a bitmap selection.
    pub fn sum_bytes_sel(&self, sel: &Selection) -> u64 {
        sel.fold_shards(|| 0u64, |acc, i| *acc += self.bytes[i], |a, b| *a += b)
    }

    /// Sum of durations over a bitmap selection.
    pub fn sum_time_sel(&self, sel: &Selection) -> Dur {
        Dur(sel.fold_shards(
            || 0u64,
            |acc, i| *acc += self.end[i] - self.start[i],
            |a, b| *a += b,
        ))
    }

    /// Generic group-by over a bitmap selection.
    pub fn group_by_sel<K, F>(&self, sel: &Selection, key: F) -> HashMap<K, GroupAgg>
    where
        K: std::hash::Hash + Eq + Send,
        F: Fn(usize) -> K + Sync,
    {
        sel.fold_shards(
            HashMap::new,
            |table: &mut HashMap<K, GroupAgg>, i| {
                let agg = table.entry(key(i)).or_default();
                agg.ops += 1;
                agg.bytes += self.bytes[i];
                agg.time += Dur(self.end[i] - self.start[i]);
            },
            |out, shard| {
                for (k, v) in shard {
                    let agg = out.entry(k).or_default();
                    agg.ops += v.ops;
                    agg.bytes += v.bytes;
                    agg.time += v.time;
                }
            },
        )
    }

    /// Group a selection by file id.
    pub fn group_by_file(&self, sel: &[u32]) -> HashMap<u32, GroupAgg> {
        self.group_by(sel, |i| self.file[i])
    }

    /// Group a selection by rank.
    pub fn group_by_rank(&self, sel: &[u32]) -> HashMap<u32, GroupAgg> {
        self.group_by(sel, |i| self.rank[i])
    }

    /// Group a selection by app id.
    pub fn group_by_app(&self, sel: &[u32]) -> HashMap<u16, GroupAgg> {
        self.group_by(sel, |i| self.app[i])
    }

    /// Generic group-by over a selection.
    pub fn group_by<K, F>(&self, sel: &[u32], key: F) -> HashMap<K, GroupAgg>
    where
        K: std::hash::Hash + Eq + Send,
        F: Fn(usize) -> K + Sync,
    {
        par::par_group_by(
            sel,
            |&i| key(i as usize),
            |agg: &mut GroupAgg, &i| {
                let i = i as usize;
                agg.ops += 1;
                agg.bytes += self.bytes[i];
                agg.time += Dur(self.end[i] - self.start[i]);
            },
            |a, b| {
                a.ops += b.ops;
                a.bytes += b.bytes;
                a.time += b.time;
            },
        )
    }

    /// Earliest start over the whole trace.
    pub fn t_min(&self) -> SimTime {
        if self.start.is_empty() {
            return SimTime::ZERO;
        }
        SimTime(par::par_reduce(
            &self.start,
            || u64::MAX,
            |acc, &t| acc.min(t),
            |a, b| a.min(b),
        ))
    }

    /// Latest end over the whole trace.
    pub fn t_max(&self) -> SimTime {
        SimTime(par::par_reduce(
            &self.end,
            || 0u64,
            |acc, &t| acc.max(t),
            |a, b| a.max(b),
        ))
    }
}

impl ToJson for ColumnarTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", self.rank.to_json()),
            ("node", self.node.to_json()),
            ("app", self.app.to_json()),
            ("layer", self.layer.to_json()),
            ("op", self.op.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
            ("file", self.file.to_json()),
            ("offset", self.offset.to_json()),
            ("bytes", self.bytes.to_json()),
            ("file_paths", self.file_paths.to_json()),
            ("app_names", self.app_names.to_json()),
        ])
    }
}

impl FromJson for ColumnarTrace {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ColumnarTrace {
            rank: j.decode_field("rank")?,
            node: j.decode_field("node")?,
            app: j.decode_field("app")?,
            layer: j.decode_field("layer")?,
            op: j.decode_field("op")?,
            start: j.decode_field("start")?,
            end: j.decode_field("end")?,
            file: j.decode_field("file")?,
            offset: j.decode_field("offset")?,
            bytes: j.decode_field("bytes")?,
            file_paths: j.decode_field("file_paths")?,
            app_names: j.decode_field("app_names")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Tracer {
        let mut t = Tracer::new();
        let f0 = t.file_id("/a");
        let f1 = t.file_id("/b");
        let app = t.app_id("app");
        // rank 0: open, write 100 B (1 s), close on /a
        t.record(
            0,
            0,
            app,
            Layer::Posix,
            OpKind::Open,
            SimTime(0),
            SimTime(10),
            Some(f0),
            0,
            0,
        );
        t.record(
            0,
            0,
            app,
            Layer::Posix,
            OpKind::Write,
            SimTime(10),
            SimTime(1_000_000_010),
            Some(f0),
            0,
            100,
        );
        t.record(
            0,
            0,
            app,
            Layer::Posix,
            OpKind::Close,
            SimTime(1_000_000_010),
            SimTime(1_000_000_020),
            Some(f0),
            0,
            0,
        );
        // rank 1: read 50 B on /b, compute
        t.record(
            1,
            0,
            app,
            Layer::Stdio,
            OpKind::Read,
            SimTime(0),
            SimTime(500),
            Some(f1),
            0,
            50,
        );
        t.record(
            1,
            0,
            app,
            Layer::App,
            OpKind::Compute,
            SimTime(500),
            SimTime(10_000),
            None,
            0,
            0,
        );
        t
    }

    #[test]
    fn conversion_round_trips() {
        let t = sample_trace();
        let c = ColumnarTrace::from_tracer(&t);
        assert_eq!(c.len(), 5);
        let back = c.to_records();
        assert_eq!(back.as_slice(), t.records());
    }

    #[test]
    fn selections_split_data_and_meta() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        assert_eq!(c.data_ops(None).len(), 2);
        assert_eq!(c.meta_ops(None).len(), 2);
        assert_eq!(c.io_ops().len(), 4);
        assert_eq!(c.data_ops(Some(Layer::Posix)).len(), 1);
        assert_eq!(c.data_ops(Some(Layer::Stdio)).len(), 1);
    }

    #[test]
    fn aggregates_are_correct() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        let data = c.data_ops(None);
        assert_eq!(c.sum_bytes(&data), 150);
        let by_file = c.group_by_file(&data);
        assert_eq!(by_file[&0].bytes, 100);
        assert_eq!(by_file[&1].bytes, 50);
        let by_rank = c.group_by_rank(&c.io_ops());
        assert_eq!(by_rank[&0].ops, 3);
        assert_eq!(by_rank[&1].ops, 1);
    }

    #[test]
    fn time_range_spans_all_records() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        assert_eq!(c.t_min(), SimTime(0));
        assert_eq!(c.t_max(), SimTime(1_000_000_020));
    }

    // Deterministic randomized sweeps (seeded `vani_rt::Rng`) — converted
    // from the original proptest suites.

    /// Row → column → row is the identity for arbitrary records.
    #[test]
    fn randomized_round_trip() {
        let mut r = vani_rt::Rng::new(0xc001_0001);
        for _ in 0..64 {
            let n = r.uniform_u64(0, 50) as usize;
            let records: Vec<TraceRecord> = (0..n)
                .map(|_| {
                    let rank = r.uniform_u64(0, 8) as u32;
                    let start = r.uniform_u64(0, 1_000);
                    let dur = r.uniform_u64(1, 1_000);
                    let bytes = r.uniform_u64(0, 65536);
                    TraceRecord {
                        rank,
                        node: r.uniform_u64(0, 4) as u32,
                        app: AppId(0),
                        layer: Layer::Posix,
                        op: if bytes % 2 == 0 {
                            OpKind::Read
                        } else {
                            OpKind::Open
                        },
                        start: SimTime(start),
                        end: SimTime(start + dur),
                        file: if bytes % 3 == 0 {
                            None
                        } else {
                            Some(FileId(rank))
                        },
                        offset: r.uniform_u64(0, 4096),
                        bytes,
                    }
                })
                .collect();
            let c = ColumnarTrace::from_records(&records, vec!["/f".into(); 8], vec!["a".into()]);
            assert_eq!(c.to_records(), records);
        }
    }

    /// The bitmap query surface agrees exactly with the index-list one.
    #[test]
    fn masks_agree_with_index_selections() {
        let c = ColumnarTrace::from_tracer(&sample_trace());
        assert_eq!(c.io_mask().to_indices(), c.io_ops());
        assert_eq!(c.data_mask(None).to_indices(), c.data_ops(None));
        assert_eq!(
            c.meta_mask(Some(Layer::Posix)).to_indices(),
            c.meta_ops(Some(Layer::Posix))
        );
        let data = c.data_ops(None);
        let dmask = c.data_mask(None);
        assert_eq!(c.sum_bytes_sel(&dmask), c.sum_bytes(&data));
        assert_eq!(c.sum_time_sel(&dmask), c.sum_time(&data));
        assert_eq!(
            c.group_by_sel(&dmask, |i| c.file[i]),
            c.group_by_file(&data)
        );
        assert_eq!(
            c.group_by_sel(&dmask, |i| c.rank[i]),
            c.group_by_rank(&data)
        );
    }

    /// Bitmap aggregation over a large randomized trace, across worker
    /// counts, matches the index-list kernels bit for bit.
    #[test]
    fn randomized_mask_aggregation_matches() {
        let mut r = vani_rt::Rng::new(0xc001_0003);
        let records: Vec<TraceRecord> = (0..30_000)
            .map(|i| {
                let bytes = r.uniform_u64(0, 1 << 20);
                TraceRecord {
                    rank: r.uniform_u64(0, 64) as u32,
                    node: 0,
                    app: AppId(0),
                    layer: Layer::Posix,
                    op: if bytes % 3 == 0 {
                        OpKind::Open
                    } else {
                        OpKind::Write
                    },
                    start: SimTime(i as u64),
                    end: SimTime(i as u64 + 1 + bytes / 7),
                    file: Some(FileId((bytes % 17) as u32)),
                    offset: 0,
                    bytes,
                }
            })
            .collect();
        let c = ColumnarTrace::from_records(&records, vec!["/f".into(); 17], vec!["a".into()]);
        for threads in [1usize, 2, 8] {
            vani_rt::par::set_threads(threads);
            let sel = c.data_ops(None);
            let mask = c.data_mask(None);
            assert_eq!(mask.to_indices(), sel, "threads={threads}");
            assert_eq!(
                c.sum_bytes_sel(&mask),
                c.sum_bytes(&sel),
                "threads={threads}"
            );
            assert_eq!(
                c.group_by_sel(&mask, |i| c.rank[i]),
                c.group_by_rank(&sel),
                "threads={threads}"
            );
        }
        vani_rt::par::set_threads(0);
    }

    /// group_by_rank partitions the selection: totals match.
    #[test]
    fn randomized_group_by_partitions() {
        let mut r = vani_rt::Rng::new(0xc001_0002);
        for _ in 0..64 {
            let n = r.uniform_u64(1, 100) as usize;
            let records: Vec<TraceRecord> = (0..n)
                .map(|i| TraceRecord {
                    rank: r.uniform_u64(0, 5) as u32,
                    node: 0,
                    app: AppId(0),
                    layer: Layer::Posix,
                    op: OpKind::Write,
                    start: SimTime(i as u64),
                    end: SimTime(i as u64 + 1),
                    file: None,
                    offset: 0,
                    bytes: r.uniform_u64(1, 100),
                })
                .collect();
            let c = ColumnarTrace::from_records(&records, vec![], vec!["a".into()]);
            let sel = c.data_ops(None);
            let groups = c.group_by_rank(&sel);
            let total_ops: u64 = groups.values().map(|g| g.ops).sum();
            let total_bytes: u64 = groups.values().map(|g| g.bytes).sum();
            assert_eq!(total_ops, n as u64);
            assert_eq!(total_bytes, c.sum_bytes(&sel));
        }
    }
}
