//! Chunked trace capture: fixed-size row groups sealed and compressed as
//! the simulation emits records.
//!
//! The batch pipeline materializes a whole [`ColumnarTrace`] before any
//! analysis runs, so peak memory scales with trace length. The chunked
//! pipeline bounds it instead: records accumulate in one live column buffer
//! of [`DEFAULT_CHUNK_ROWS`] rows; when it fills, the buffer is *sealed* —
//! every column runs through [`crate::codec`] (delta for timestamps and
//! offsets, RLE for low-cardinality columns, raw as the floor) and the
//! compressed bytes join the chunk list while the buffer is recycled for
//! the next chunk. A streaming analyzer then decodes one chunk at a time
//! into a second recycled buffer, folds it, and moves on. At any instant at
//! most [`RING_SLOTS`] uncompressed chunk buffers exist (the capture slot
//! and the decode slot) regardless of how many records the run emits.
//!
//! Every uncompressed chunk buffer (and its codec scratch) is charged
//! against the process-wide [`trace_gauge`], and [`resident_bound`] states
//! the contract: peak gauge bytes never exceed the per-slot budget times
//! the slot count. `bench_analyzer` and CI assert it.
//!
//! Each sealed chunk carries a [`ChunkMeta`] — the same layer-presence /
//! id-space-bounds / per-layer file sets the analyzer's interface prescan
//! computes — folded record by record at seal time, so the streaming
//! analyzer gets its global dims by merging metas instead of decoding every
//! chunk twice.

use crate::codec::{self, CodecError};
use crate::columnar::{ColumnarTrace, NO_FILE};
use crate::record::{Layer, OpKind};
use vani_rt::stats::PeakGauge;

/// Rows per sealed chunk unless a caller picks otherwise. 64 Ki rows is
/// ~3 MiB of uncompressed columns — large enough to amortize per-chunk
/// costs and feed every parallel worker, small enough that two live buffers
/// stay cache- and RAM-friendly.
pub const DEFAULT_CHUNK_ROWS: usize = 65536;

/// Uncompressed chunk buffers live at once: the capture slot and the
/// decode slot.
pub const RING_SLOTS: usize = 2;

/// Upper bound on peak [`trace_gauge`] bytes for a pipeline running with
/// `slots` live chunk buffers of `chunk_rows` rows. Each slot charges the
/// ten column vectors (48 bytes/row) plus one `u64` codec scratch vector
/// (8 bytes/row); the budget rounds the 56 up to 64 for headroom.
pub fn resident_bound(chunk_rows: usize, slots: usize) -> u64 {
    (slots as u64) * (chunk_rows as u64) * 64
}

/// The process-wide gauge tracking live uncompressed trace bytes. Capture
/// and decode buffers charge it on allocation and release it on drop;
/// benches `reset()` it around a measurement and assert the peak against
/// [`resident_bound`].
pub fn trace_gauge() -> &'static PeakGauge {
    static GAUGE: PeakGauge = PeakGauge::new();
    &GAUGE
}

/// Capacity-derived bytes of a trace's ten column vectors (intern tables
/// excluded — they are id → name metadata, not per-record storage).
pub fn columnar_capacity_bytes(c: &ColumnarTrace) -> u64 {
    (c.rank.capacity() * 4
        + c.node.capacity() * 4
        + c.app.capacity() * 2
        + c.layer.capacity()
        + c.op.capacity()
        + c.start.capacity() * 8
        + c.end.capacity() * 8
        + c.file.capacity() * 4
        + c.offset.capacity() * 8
        + c.bytes.capacity() * 8) as u64
}

/// RAII charge against [`trace_gauge`]: add on construction, release on
/// drop, [`resync`](Self::resync) after a tracked buffer grows.
#[derive(Debug, Default)]
pub struct GaugeCharge {
    bytes: u64,
}

impl GaugeCharge {
    /// Charge `bytes` now; released when the guard drops.
    pub fn new(bytes: u64) -> GaugeCharge {
        trace_gauge().add(bytes);
        GaugeCharge { bytes }
    }

    /// Re-state the charge to `bytes` (after capacity growth or shrink).
    pub fn resync(&mut self, bytes: u64) {
        if bytes > self.bytes {
            trace_gauge().add(bytes - self.bytes);
        } else {
            trace_gauge().sub(self.bytes - bytes);
        }
        self.bytes = bytes;
    }
}

impl Clone for GaugeCharge {
    /// Cloning a charged buffer duplicates the memory, so the clone takes
    /// out its own charge of the same size.
    fn clone(&self) -> GaugeCharge {
        GaugeCharge::new(self.bytes)
    }
}

impl Drop for GaugeCharge {
    fn drop(&mut self) {
        trace_gauge().sub(self.bytes);
    }
}

/// The ten per-record columns in on-disk order, each with its native width
/// in bytes. Shared with the version-2 row-group persistence format.
pub const COLUMN_WIDTHS: [(&str, u8); 10] = [
    ("rank", 4),
    ("node", 4),
    ("app", 2),
    ("layer", 1),
    ("op", 1),
    ("start", 8),
    ("end", 8),
    ("file", 4),
    ("offset", 8),
    ("bytes", 8),
];

/// A compact bitset over small dense ids (file ids within a chunk).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWords {
    words: Vec<u64>,
}

impl BitWords {
    /// Insert `id`.
    pub fn insert(&mut self, id: usize) {
        let w = id / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (id % 64);
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Union `other` into `self`.
    pub fn merge(&mut self, other: &BitWords) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1u64 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }

    /// The backing words (little-bit-endian), for byte serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from backing words (the serialization inverse).
    pub fn from_words(words: Vec<u64>) -> BitWords {
        BitWords { words }
    }
}

/// Per-chunk statistics folded at seal time: exactly the quantities the
/// analyzer's interface prescan derives from raw records, so merging the
/// metas of all chunks reproduces the prescan of the whole trace without a
/// decode pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkMeta {
    /// Records in the chunk.
    pub rows: usize,
    /// Layer-presence table indexed by `Layer::code()`.
    pub present: [bool; 6],
    /// Files touched by I/O ops at each layer (interface-selection input).
    pub layer_files: [BitWords; 6],
    /// `max(rank) + 1` over the chunk (0 when empty).
    pub n_ranks: usize,
    /// `max(app) + 1` over the chunk.
    pub n_apps: usize,
    /// `max(file) + 1` over records that carry a file.
    pub n_files: usize,
}

impl ChunkMeta {
    /// Fold one record (mirrors the analyzer prescan's per-record body).
    pub(crate) fn absorb(&mut self, rank: u32, app: u16, layer: Layer, op: OpKind, file: u32) {
        self.rows += 1;
        let l = layer.code() as usize;
        self.present[l] = true;
        self.n_ranks = self.n_ranks.max(rank as usize + 1);
        self.n_apps = self.n_apps.max(app as usize + 1);
        if file != NO_FILE {
            self.n_files = self.n_files.max(file as usize + 1);
            if op.is_io() {
                self.layer_files[l].insert(file as usize);
            }
        }
    }

    /// Merge another chunk's statistics (bitwise OR / max — associative and
    /// commutative, so merge order never matters).
    pub fn merge(&mut self, other: &ChunkMeta) {
        self.rows += other.rows;
        for l in 0..6 {
            self.present[l] |= other.present[l];
            self.layer_files[l].merge(&other.layer_files[l]);
        }
        self.n_ranks = self.n_ranks.max(other.n_ranks);
        self.n_apps = self.n_apps.max(other.n_apps);
        self.n_files = self.n_files.max(other.n_files);
    }
}

/// One sealed, compressed row group: ten independently encoded columns plus
/// the seal-time statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedChunk {
    /// Records in the chunk.
    pub rows: usize,
    /// Seal-time statistics (see [`ChunkMeta`]).
    pub meta: ChunkMeta,
    /// Encoded columns in [`COLUMN_WIDTHS`] order.
    cols: [Vec<u8>; 10],
}

impl CompressedChunk {
    /// Seal rows `range` of `c` into a compressed chunk. `scratch` is the
    /// caller's recycled `u64` staging vector (grown to the range length at
    /// most once, then reused across seals).
    pub fn seal(
        c: &ColumnarTrace,
        range: std::ops::Range<usize>,
        scratch: &mut Vec<u64>,
    ) -> CompressedChunk {
        let rows = range.len();
        let mut meta = ChunkMeta::default();
        for i in range.clone() {
            meta.absorb(c.rank[i], c.app[i], c.layer[i], c.op[i], c.file[i]);
        }
        let mut encode = |fill: &mut dyn FnMut(&mut Vec<u64>), width: u8| {
            scratch.clear();
            fill(scratch);
            codec::encode_column(scratch, width)
        };
        let r = range;
        let cols = [
            encode(
                &mut |s| s.extend(c.rank[r.clone()].iter().map(|&v| v as u64)),
                4,
            ),
            encode(
                &mut |s| s.extend(c.node[r.clone()].iter().map(|&v| v as u64)),
                4,
            ),
            encode(
                &mut |s| s.extend(c.app[r.clone()].iter().map(|&v| v as u64)),
                2,
            ),
            encode(
                &mut |s| s.extend(c.layer[r.clone()].iter().map(|&v| v.code() as u64)),
                1,
            ),
            encode(
                &mut |s| s.extend(c.op[r.clone()].iter().map(|&v| v.code() as u64)),
                1,
            ),
            encode(&mut |s| s.extend_from_slice(&c.start[r.clone()]), 8),
            encode(&mut |s| s.extend_from_slice(&c.end[r.clone()]), 8),
            encode(
                &mut |s| s.extend(c.file[r.clone()].iter().map(|&v| v as u64)),
                4,
            ),
            encode(&mut |s| s.extend_from_slice(&c.offset[r.clone()]), 8),
            encode(&mut |s| s.extend_from_slice(&c.bytes[r.clone()]), 8),
        ];
        CompressedChunk { rows, meta, cols }
    }

    /// Decode the chunk, appending its rows to `out` (usually a recycled
    /// buffer cleared by the caller). Each column decodes straight into its
    /// native-width vector — no `u64` staging pass. With `decode_node`
    /// false the `node` column is skipped — nothing in the analyzer reads
    /// it, so the streaming path saves a tenth of the decode work
    /// (`out.node` is left empty; don't `validate` such a buffer).
    pub fn decode_into(
        &self,
        out: &mut ColumnarTrace,
        decode_node: bool,
    ) -> Result<(), CodecError> {
        let n = self.rows;
        // Each call monomorphizes `decode_column_each` for its closure, so
        // the per-value emit inlines into the codec's decode loops.
        macro_rules! dec {
            ($idx:expr, $emit:expr) => {
                codec::decode_column_each(&self.cols[$idx], n, COLUMN_WIDTHS[$idx].1, $emit)
            };
        }
        out.rank.reserve(n);
        dec!(0, |v| out.rank.push(v as u32))?;
        if decode_node {
            out.node.reserve(n);
            dec!(1, |v| out.node.push(v as u32))?;
        }
        out.app.reserve(n);
        dec!(2, |v| out.app.push(v as u16))?;
        // Enum columns: remember an out-of-range code (impossible for
        // chunks we sealed, possible for loaded bytes) and fail after the
        // scan — `out` may then hold a partial prefix, like the codec.
        let mut bad_code: Option<u64> = None;
        out.layer.reserve(n);
        dec!(3, |v| match Layer::from_code(v as u8) {
            Some(l) => out.layer.push(l),
            None => bad_code = bad_code.or(Some(v)),
        })?;
        out.op.reserve(n);
        dec!(4, |v| match OpKind::from_code(v as u8) {
            Some(o) => out.op.push(o),
            None => bad_code = bad_code.or(Some(v)),
        })?;
        if let Some(value) = bad_code {
            return Err(CodecError::ValueTooWide { value, width: 1 });
        }
        out.start.reserve(n);
        dec!(5, |v| out.start.push(v))?;
        out.end.reserve(n);
        dec!(6, |v| out.end.push(v))?;
        out.file.reserve(n);
        dec!(7, |v| out.file.push(v as u32))?;
        out.offset.reserve(n);
        dec!(8, |v| out.offset.push(v))?;
        out.bytes.reserve(n);
        dec!(9, |v| out.bytes.push(v))?;
        Ok(())
    }

    /// Total encoded bytes across the ten columns.
    pub fn encoded_bytes(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// The encoded bytes of column `idx` (in [`COLUMN_WIDTHS`] order) —
    /// the persistence layer checksums and hex-encodes these verbatim.
    pub fn column(&self, idx: usize) -> &[u8] {
        &self.cols[idx]
    }

    /// Rebuild a chunk from its encoded columns and a trusted seal-time
    /// meta without a decode pass. The spill loader uses this after its
    /// deep-verify walk has already decoded the chunk once and checked the
    /// persisted meta against a recompute.
    pub(crate) fn from_parts(rows: usize, meta: ChunkMeta, cols: [Vec<u8>; 10]) -> CompressedChunk {
        CompressedChunk { rows, meta, cols }
    }

    /// Rebuild a chunk from its ten encoded columns (the persistence
    /// loader's inverse of [`column`](Self::column)). The meta is recovered
    /// by decoding once, so a chunk loaded from disk behaves exactly like
    /// one sealed live.
    pub fn from_encoded(cols: [Vec<u8>; 10], rows: usize) -> Result<CompressedChunk, CodecError> {
        let mut chunk = CompressedChunk {
            rows,
            meta: ChunkMeta::default(),
            cols,
        };
        let mut buf = ColumnarTrace::with_capacity(rows);
        chunk.decode_into(&mut buf, false)?;
        let mut meta = ChunkMeta::default();
        for i in 0..rows {
            meta.absorb(
                buf.rank[i],
                buf.app[i],
                buf.layer[i],
                buf.op[i],
                buf.file[i],
            );
        }
        chunk.meta = meta;
        Ok(chunk)
    }
}

/// A whole trace as a list of sealed chunks plus the intern tables — the
/// streaming analyzer's input. Holds only compressed bytes; decoding is the
/// consumer's business, one chunk at a time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkedTrace {
    /// Rows per full chunk (the last chunk may be short).
    pub chunk_rows: usize,
    /// The sealed chunks, in capture order.
    pub chunks: Vec<CompressedChunk>,
    /// File id → path.
    pub file_paths: Vec<String>,
    /// App id → name.
    pub app_names: Vec<String>,
}

impl ChunkedTrace {
    /// Seal an existing columnar trace into `chunk_rows`-row chunks. This
    /// is the post-hoc entry (fleet jobs, benches); live capture goes
    /// through `Tracer::enable_chunked`.
    pub fn from_columnar(c: &ColumnarTrace, chunk_rows: usize) -> ChunkedTrace {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let mut scratch = Vec::with_capacity(chunk_rows.min(c.len()));
        let _charge = GaugeCharge::new((scratch.capacity() * 8) as u64);
        let mut chunks = Vec::with_capacity(c.len().div_ceil(chunk_rows));
        let mut at = 0usize;
        while at < c.len() {
            let end = (at + chunk_rows).min(c.len());
            chunks.push(CompressedChunk::seal(c, at..end, &mut scratch));
            at = end;
        }
        ChunkedTrace {
            chunk_rows,
            chunks,
            file_paths: c.file_paths.clone(),
            app_names: c.app_names.clone(),
        }
    }

    /// Total records across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|ch| ch.rows).sum()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total compressed bytes across all chunks' columns.
    pub fn compressed_bytes(&self) -> usize {
        self.chunks.iter().map(CompressedChunk::encoded_bytes).sum()
    }

    /// Merge of every chunk's seal-time statistics: the whole-trace
    /// interface prescan, for free.
    pub fn merged_meta(&self) -> ChunkMeta {
        let mut meta = ChunkMeta::default();
        for ch in &self.chunks {
            meta.merge(&ch.meta);
        }
        meta
    }

    /// Decode everything back into one materialized trace (tests and the
    /// salvage path; defeats the memory bound by construction).
    pub fn to_columnar(&self) -> Result<ColumnarTrace, CodecError> {
        let mut out = ColumnarTrace::with_capacity(self.len());
        for ch in &self.chunks {
            ch.decode_into(&mut out, true)?;
        }
        out.file_paths = self.file_paths.clone();
        out.app_names = self.app_names.clone();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AppId, FileId};
    use sim_core::SimTime;

    fn synthetic(n: usize) -> ColumnarTrace {
        let mut c = ColumnarTrace::with_capacity(n);
        for i in 0..n as u64 {
            c.push_row(
                (i % 16) as u32,
                (i % 4) as u32,
                AppId((i % 3) as u16),
                if i % 5 == 0 {
                    Layer::Stdio
                } else {
                    Layer::Posix
                },
                if i % 7 == 0 {
                    OpKind::Open
                } else {
                    OpKind::Write
                },
                SimTime(i * 100),
                SimTime(i * 100 + 50),
                if i % 11 == 0 {
                    None
                } else {
                    Some(FileId((i % 9) as u32))
                },
                i * 4096,
                if i % 7 == 0 { 0 } else { 1 << 16 },
            );
        }
        c.file_paths = (0..9).map(|i| format!("/f{i}")).collect();
        c.app_names = vec!["a".into(), "b".into(), "c".into()];
        c
    }

    #[test]
    fn chunked_round_trip_is_identity() {
        for n in [0usize, 1, 63, 64, 65, 1000] {
            let c = synthetic(n);
            for chunk_rows in [1usize, 64, 4096] {
                let ct = ChunkedTrace::from_columnar(&c, chunk_rows);
                assert_eq!(ct.len(), n);
                assert_eq!(ct.chunks.len(), n.div_ceil(chunk_rows));
                let back = ct.to_columnar().expect("decodes");
                assert_eq!(back, c, "n={n} chunk_rows={chunk_rows}");
            }
        }
    }

    #[test]
    fn merged_meta_matches_whole_trace_scan() {
        let c = synthetic(777);
        let ct = ChunkedTrace::from_columnar(&c, 64);
        let merged = ct.merged_meta();
        let mut whole = ChunkMeta::default();
        for i in 0..c.len() {
            whole.absorb(c.rank[i], c.app[i], c.layer[i], c.op[i], c.file[i]);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.n_ranks, 16);
        assert_eq!(merged.n_apps, 3);
        assert_eq!(merged.n_files, 9);
        assert!(merged.present[Layer::Posix.code() as usize]);
        assert!(merged.present[Layer::Stdio.code() as usize]);
        assert!(!merged.present[Layer::MpiIo.code() as usize]);
    }

    #[test]
    fn compression_beats_raw_on_regular_traces() {
        let c = synthetic(50_000);
        let ct = ChunkedTrace::from_columnar(&c, DEFAULT_CHUNK_ROWS);
        let raw = c.len() * 48;
        let packed = ct.compressed_bytes();
        assert!(packed * 4 < raw, "expected >4x: {packed} vs {raw}");
    }

    #[test]
    fn from_encoded_rebuilds_meta() {
        let c = synthetic(500);
        let ct = ChunkedTrace::from_columnar(&c, 512);
        let ch = &ct.chunks[0];
        let cols: [Vec<u8>; 10] = std::array::from_fn(|i| ch.column(i).to_vec());
        let rebuilt = CompressedChunk::from_encoded(cols, ch.rows).expect("valid columns");
        assert_eq!(&rebuilt, ch);
    }

    #[test]
    fn corrupt_column_fails_decode() {
        let c = synthetic(100);
        let ct = ChunkedTrace::from_columnar(&c, 128);
        let ch = &ct.chunks[0];
        // Flip the op column's tag to an invalid scheme.
        let mut cols: [Vec<u8>; 10] = std::array::from_fn(|i| ch.column(i).to_vec());
        cols[4][0] = 99;
        assert!(CompressedChunk::from_encoded(cols, ch.rows).is_err());
    }

    #[test]
    fn bitwords_set_semantics() {
        let mut b = BitWords::default();
        for id in [0usize, 1, 63, 64, 129, 129] {
            b.insert(id);
        }
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(2) && !b.contains(130) && !b.contains(10_000));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 1, 63, 64, 129]);
        let mut other = BitWords::default();
        other.insert(5);
        other.insert(200);
        b.merge(&other);
        assert_eq!(
            b.iter().collect::<Vec<_>>(),
            vec![0, 1, 5, 63, 64, 129, 200]
        );
    }

    #[test]
    fn gauge_charge_tracks_capacity() {
        let g = trace_gauge();
        let before = g.current();
        {
            let mut charge = GaugeCharge::new(1000);
            assert_eq!(g.current(), before + 1000);
            charge.resync(400);
            assert_eq!(g.current(), before + 400);
            charge.resync(2000);
            assert_eq!(g.current(), before + 2000);
        }
        assert_eq!(g.current(), before);
    }

    #[test]
    fn resident_bound_scales_with_slots_and_rows() {
        assert_eq!(
            resident_bound(DEFAULT_CHUNK_ROWS, RING_SLOTS),
            2 * 65536 * 64
        );
        assert!(resident_bound(1024, 2) < resident_bound(65536, 2));
    }
}
