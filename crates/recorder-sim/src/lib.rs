//! # recorder-sim
//!
//! A Recorder-2.0-like multi-level tracer for the simulated stack.
//!
//! The paper chose Recorder over Darshan because it captures *multi-level*
//! traces — every I/O call at every interface layer, plus CPU, GPU, and MPI
//! events — rather than aggregate counters. This crate reproduces that
//! capture model:
//!
//! * [`record`] — the trace schema: one [`record::TraceRecord`] per call,
//!   tagged with rank, node, application, interface layer, operation kind,
//!   file, offset, byte count, and the simulated start/end instants,
//! * [`tracer`] — the row-major capture sink the layers write into during a
//!   run (with an optional per-record overhead model reproducing the 8 %
//!   runtime overhead the paper reports),
//! * [`columnar`] — the row-major → column-major conversion that mirrors the
//!   paper's Recorder-log → parquet step, with the filter/group-by kernels
//!   the Vani analyzer runs over the columns (parallel via `vani_rt::par`),
//! * [`codec`] — delta/RLE/raw column codecs for sealed row groups,
//! * [`chunk`] — chunked capture: fixed-size row groups sealed and
//!   compressed as the run emits records, so peak uncompressed trace bytes
//!   stay bounded regardless of trace length (tracked by a process-wide
//!   peak gauge),
//! * [`persist`] — JSON save/load of whole traces,
//! * [`spill`] — the crash-consistent on-disk segment log (persistence
//!   v3): sealed chunks stream to an append-only, checksummed, fsync-
//!   pointed file so traces larger than RAM survive capture, with a
//!   seeded fault-injection plan and an fsck recovery pass,
//! * [`darshan`] — a Darshan-style aggregate-counter profiler, implemented
//!   as a fold over the full trace to demonstrate (as the paper argues in
//!   §III-C) which analyses aggregation destroys.

pub mod chunk;
pub mod codec;
pub mod columnar;
pub mod darshan;
pub mod persist;
pub mod record;
pub mod spill;
pub mod tracer;

pub use chunk::{ChunkMeta, ChunkedTrace, CompressedChunk, DEFAULT_CHUNK_ROWS, RING_SLOTS};
pub use columnar::ColumnarTrace;
pub use record::{AppId, FileId, Layer, OpKind, TraceRecord};
pub use spill::{
    ChunkSource, FsckReport, SpillError, SpillFaultKind, SpillFaultPlan, SpillSource, SpillSummary,
    SpillWriter,
};
pub use tracer::{AdaptiveSampler, Tracer};
