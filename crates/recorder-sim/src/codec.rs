//! Column codecs for sealed trace chunks: delta, run-length, and raw.
//!
//! Every column of a sealed row group is encoded independently as a small
//! self-describing byte string: one tag byte, then the payload. The encoder
//! tries all three schemes and keeps the smallest (ties prefer delta, then
//! RLE, then raw), so callers never choose a scheme per column — monotone
//! timestamp columns collapse under delta, low-cardinality columns (rank,
//! op, layer, file id) collapse under RLE, and adversarial columns fall back
//! to raw at exactly `width` bytes per value plus the tag.
//!
//! Values travel as `u64` regardless of the column's native width; `width`
//! (1/2/4/8 bytes) bounds the raw representation and is validated on decode
//! so a corrupt byte can't smuggle an oversized value past the checksum
//! into a narrowing cast.
//!
//! The byte layout is part of the version-2 row-group persistence format
//! (see `persist.rs`) — changes must bump that version.
//!
//! Layout per tag:
//! - `0` RAW:   `n` little-endian values of `width` bytes each.
//! - `1` RLE:   LEB128 varint pairs `(value, run_length)`, runs ≥ 1,
//!   summing to `n`.
//! - `2` DELTA: first value as 8-byte LE, a delta width byte
//!   `w ∈ {0,1,2,4,8}`, then `n-1` zigzag-encoded wrapping deltas of `w`
//!   bytes each (`w = 0` means every delta is zero — a constant column).

/// Encoding scheme tags (the first byte of every encoded column).
const TAG_RAW: u8 = 0;
const TAG_RLE: u8 = 1;
const TAG_DELTA: u8 = 2;

/// A malformed encoded column. Decoding is fallible by design: the salvage
/// loader feeds possibly-corrupt bytes through it and needs typed reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended before `n` values were produced.
    Truncated,
    /// Unknown scheme tag.
    BadTag(u8),
    /// Delta width byte outside `{0, 1, 2, 4, 8}`.
    BadWidth(u8),
    /// Payload continued past the `n`-th value.
    TrailingBytes,
    /// A decoded value does not fit the column's declared native width.
    ValueTooWide { value: u64, width: u8 },
    /// A LEB128 varint ran past 10 bytes (can't fit in u64).
    VarintOverflow,
    /// An RLE run of length zero, or runs not summing to `n`.
    BadRun,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded column truncated"),
            CodecError::BadTag(t) => write!(f, "unknown codec tag {t}"),
            CodecError::BadWidth(w) => write!(f, "bad delta width {w}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after last value"),
            CodecError::ValueTooWide { value, width } => {
                write!(f, "value {value} exceeds {width}-byte column width")
            }
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::BadRun => write!(f, "rle runs malformed"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Zigzag-map a signed delta onto an unsigned value so small magnitudes of
/// either sign encode in few bytes.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` as a LEB128 varint, without materializing it.
fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Read one LEB128 varint starting at `*pos`, advancing it.
fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Minimal delta byte width in `{0, 1, 2, 4, 8}` that represents every
/// zigzagged delta of `values`.
fn delta_width(values: &[u64]) -> u8 {
    let mut max = 0u64;
    for w in values.windows(2) {
        max = max.max(zigzag((w[1].wrapping_sub(w[0])) as i64));
    }
    match max {
        0 => 0,
        v if v <= 0xff => 1,
        v if v <= 0xffff => 2,
        v if v <= 0xffff_ffff => 4,
        _ => 8,
    }
}

/// Byte length the RLE scheme would need (tag included).
fn rle_len(values: &[u64]) -> usize {
    let mut len = 1usize;
    let mut i = 0usize;
    while i < values.len() {
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == values[i] {
            run += 1;
        }
        len += varint_len(values[i]) + varint_len(run as u64);
        i += run;
    }
    len
}

/// Encode one column of `values` whose native width is `width` bytes
/// (1, 2, 4, or 8). Returns the smallest of the three schemes; ties prefer
/// delta, then RLE, then raw, so the choice is deterministic.
pub fn encode_column(values: &[u64], width: u8) -> Vec<u8> {
    assert!(
        matches!(width, 1 | 2 | 4 | 8),
        "unsupported column width {width}"
    );
    debug_assert!(
        width == 8 || values.iter().all(|&v| v >> (width * 8) == 0),
        "value exceeds declared column width"
    );
    if values.is_empty() {
        return vec![TAG_RAW];
    }
    let raw = 1 + width as usize * values.len();
    let rle = rle_len(values);
    let dw = delta_width(values);
    let delta = 1 + 8 + 1 + dw as usize * (values.len() - 1);

    if delta <= rle && delta <= raw {
        let mut out = Vec::with_capacity(delta);
        out.push(TAG_DELTA);
        out.extend_from_slice(&values[0].to_le_bytes());
        out.push(dw);
        for w in values.windows(2) {
            let z = zigzag((w[1].wrapping_sub(w[0])) as i64);
            out.extend_from_slice(&z.to_le_bytes()[..dw as usize]);
        }
        out
    } else if rle <= raw {
        let mut out = Vec::with_capacity(rle);
        out.push(TAG_RLE);
        let mut i = 0usize;
        while i < values.len() {
            let mut run = 1usize;
            while i + run < values.len() && values[i + run] == values[i] {
                run += 1;
            }
            put_varint(&mut out, values[i]);
            put_varint(&mut out, run as u64);
            i += run;
        }
        out
    } else {
        let mut out = Vec::with_capacity(raw);
        out.push(TAG_RAW);
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes()[..width as usize]);
        }
        out
    }
}

/// Decode an encoded column of `n` values, handing each decoded value to
/// `emit` in order. `width` is the column's declared native width; every
/// decoded value is checked to fit it. The closure form lets consumers
/// decode straight into their native-width column vectors without staging
/// through a `u64` buffer — the chunk decoder's hot path. On error, `emit`
/// may have been called for a prefix of the column.
#[inline]
pub fn decode_column_each(
    bytes: &[u8],
    n: usize,
    width: u8,
    mut emit: impl FnMut(u64),
) -> Result<(), CodecError> {
    assert!(
        matches!(width, 1 | 2 | 4 | 8),
        "unsupported column width {width}"
    );
    let (&tag, payload) = bytes.split_first().ok_or(CodecError::Truncated)?;
    let fits = |v: u64| width == 8 || v >> (width * 8) == 0;
    match tag {
        TAG_RAW => {
            let w = width as usize;
            if payload.len() < n * w {
                return Err(CodecError::Truncated);
            }
            if payload.len() > n * w {
                return Err(CodecError::TrailingBytes);
            }
            // Constant-width inner loops: the loads compile to single
            // moves instead of a variable-length copy per value.
            macro_rules! raw_loop {
                ($w:literal) => {
                    for chunk in payload.chunks_exact($w) {
                        let mut buf = [0u8; 8];
                        buf[..$w].copy_from_slice(chunk);
                        emit(u64::from_le_bytes(buf));
                    }
                };
            }
            match w {
                1 => raw_loop!(1),
                2 => raw_loop!(2),
                4 => raw_loop!(4),
                _ => raw_loop!(8),
            }
            Ok(())
        }
        TAG_RLE => {
            let mut pos = 0usize;
            let mut produced = 0usize;
            while produced < n {
                let value = get_varint(payload, &mut pos)?;
                let run = get_varint(payload, &mut pos)?;
                if run == 0 || produced + run as usize > n {
                    return Err(CodecError::BadRun);
                }
                if !fits(value) {
                    return Err(CodecError::ValueTooWide { value, width });
                }
                for _ in 0..run {
                    emit(value);
                }
                produced += run as usize;
            }
            if pos != payload.len() {
                return Err(CodecError::TrailingBytes);
            }
            Ok(())
        }
        TAG_DELTA => {
            if n == 0 {
                // Empty columns always encode as RAW; a delta header here
                // means the byte stream lies about its row count.
                return Err(CodecError::TrailingBytes);
            }
            if payload.len() < 9 {
                return Err(CodecError::Truncated);
            }
            let first = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let dw = payload[8];
            if !matches!(dw, 0 | 1 | 2 | 4 | 8) {
                return Err(CodecError::BadWidth(dw));
            }
            let deltas = &payload[9..];
            let w = dw as usize;
            if deltas.len() < (n - 1) * w {
                return Err(CodecError::Truncated);
            }
            if deltas.len() > (n - 1) * w {
                return Err(CodecError::TrailingBytes);
            }
            if !fits(first) {
                return Err(CodecError::ValueTooWide {
                    value: first,
                    width,
                });
            }
            emit(first);
            let mut prev = first;
            // Constant-width inner loops (see `raw_loop`); `chunks_exact`
            // also drops the per-iteration slice bounds checks.
            macro_rules! delta_loop {
                ($w:literal) => {
                    for chunk in deltas.chunks_exact($w) {
                        let mut buf = [0u8; 8];
                        buf[..$w].copy_from_slice(chunk);
                        let v = prev.wrapping_add(unzigzag(u64::from_le_bytes(buf)) as u64);
                        if !fits(v) {
                            return Err(CodecError::ValueTooWide { value: v, width });
                        }
                        emit(v);
                        prev = v;
                    }
                };
            }
            match w {
                // Zero delta width: every value equals the first.
                0 => {
                    for _ in 1..n {
                        emit(prev);
                    }
                }
                1 => delta_loop!(1),
                2 => delta_loop!(2),
                4 => delta_loop!(4),
                _ => delta_loop!(8),
            }
            Ok(())
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Decode an encoded column back into `n` values, appending to `out`.
/// On error `out` may hold a partial prefix.
pub fn decode_column_into(
    bytes: &[u8],
    n: usize,
    width: u8,
    out: &mut Vec<u64>,
) -> Result<(), CodecError> {
    out.reserve(n);
    decode_column_each(bytes, n, width, |v| out.push(v))
}

/// [`decode_column_into`] into a fresh vector.
pub fn decode_column(bytes: &[u8], n: usize, width: u8) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(n);
    decode_column_into(bytes, n, width, &mut out)?;
    Ok(out)
}

/// Lowercase hex rendering for embedding encoded columns in the JSON
/// row-group persistence format.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex digits.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.as_bytes();
    if s.len() % 2 != 0 {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64], width: u8) -> Vec<u8> {
        let enc = encode_column(values, width);
        let dec = decode_column(&enc, values.len(), width).expect("decodes");
        assert_eq!(dec, values, "width {width}");
        enc
    }

    #[test]
    fn empty_column_is_one_tag_byte() {
        let enc = round_trip(&[], 4);
        assert_eq!(enc, vec![TAG_RAW]);
    }

    #[test]
    fn constant_column_collapses() {
        let values = vec![42u64; 10_000];
        let enc = round_trip(&values, 4);
        // A single RLE run beats delta-with-zero-width: tag + one
        // (value, run) varint pair.
        assert_eq!(enc.len(), 4);
        assert_eq!(enc[0], TAG_RLE);
    }

    #[test]
    fn monotone_column_compresses_under_delta() {
        let values: Vec<u64> = (0..5_000u64).map(|i| 1_000_000 + i * 37).collect();
        let enc = round_trip(&values, 8);
        assert_eq!(enc[0], TAG_DELTA);
        assert!(
            enc.len() < values.len() * 2,
            "delta beats 8B/value: {}",
            enc.len()
        );
    }

    #[test]
    fn low_cardinality_column_compresses_under_rle() {
        let mut values = Vec::new();
        for rank in 0..8u64 {
            values.extend(std::iter::repeat(rank).take(500));
        }
        let enc = round_trip(&values, 4);
        // 8 runs of 500: delta also sees long zero runs but pays per-value.
        assert_eq!(enc[0], TAG_RLE);
        assert!(enc.len() < 40, "rle pair per run: {}", enc.len());
    }

    #[test]
    fn random_column_falls_back_to_raw_width() {
        // Splitmix-style scramble: incompressible under all three schemes.
        let values: Vec<u64> = (0..1000u64)
            .map(|i| {
                let mut z = i
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0xbf58_476d_1ce4_e5b9);
                z ^= z >> 30;
                z.wrapping_mul(0x94d0_49bb_1331_11eb)
            })
            .collect();
        let enc = round_trip(&values, 8);
        assert!(
            enc.len() <= 1 + 8 * values.len(),
            "never worse than raw: {}",
            enc.len()
        );
    }

    #[test]
    fn single_record_chunk_round_trips() {
        for width in [1u8, 2, 4, 8] {
            let enc = round_trip(&[7], width);
            assert!(enc.len() <= 11, "one value stays tiny: {}", enc.len());
        }
        round_trip(&[u64::MAX], 8);
        round_trip(&[0], 1);
    }

    #[test]
    fn negative_and_wrapping_deltas_round_trip() {
        round_trip(&[100, 3, 250, 0, u64::MAX, 1, u64::MAX / 2], 8);
        // Sawtooth: small alternating deltas of both signs.
        let saw: Vec<u64> = (0..2048u64).map(|i| 1000 + (i % 2) * 7).collect();
        let enc = round_trip(&saw, 4);
        assert!(enc.len() < saw.len() * 4);
    }

    #[test]
    fn width_is_enforced_on_decode() {
        // A forged RLE stream carrying a value too wide for a u8 column.
        let mut forged = vec![TAG_RLE];
        put_varint(&mut forged, 300);
        put_varint(&mut forged, 4);
        assert_eq!(
            decode_column(&forged, 4, 1),
            Err(CodecError::ValueTooWide {
                value: 300,
                width: 1
            })
        );
    }

    #[test]
    fn corrupt_streams_return_typed_errors() {
        assert_eq!(decode_column(&[], 1, 4), Err(CodecError::Truncated));
        assert_eq!(decode_column(&[9, 1, 2], 1, 4), Err(CodecError::BadTag(9)));
        let good = encode_column(&[1, 2, 3, 4, 5], 4);
        // Truncate mid-payload.
        assert!(decode_column(&good[..good.len() - 1], 5, 4).is_err());
        // Extend with junk.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_column(&long, 5, 4).is_err());
        // Lie about the row count.
        assert!(decode_column(&good, 4, 4).is_err());
        assert!(decode_column(&good, 6, 4).is_err());
    }

    #[test]
    fn varints_round_trip_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // An 11-byte varint can't fit in 64 bits.
        let over = [0xffu8; 10];
        let mut pos = 0;
        assert_eq!(get_varint(&over, &mut pos), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn zigzag_is_an_involution() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            1 << 40,
            -(1 << 40),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(from_hex("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn seeded_randomized_columns_round_trip() {
        // A deterministic xorshift sweep over mixed-shape columns: mostly-
        // constant, step functions, random, monotone with jitter — at every
        // supported width (values masked to fit).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for width in [1u8, 2, 4, 8] {
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (width * 8)) - 1
            };
            for len in [0usize, 1, 2, 3, 100, 4097] {
                for shape in 0..4 {
                    let mut acc = 0u64;
                    let values: Vec<u64> = (0..len)
                        .map(|i| match shape {
                            0 => next() % 3,             // low cardinality
                            1 => (i as u64 / 97) & mask, // step function
                            2 => next() & mask,          // random
                            _ => {
                                acc = acc.wrapping_add(next() % 16) & mask;
                                acc // monotone-ish
                            }
                        })
                        .collect();
                    round_trip(&values, width);
                }
            }
        }
    }
}
