//! The trace capture sink.
//!
//! During a run, every layer appends records here. Capture goes **directly
//! into struct-of-arrays storage** (an embedded [`ColumnarTrace`]): the
//! analyzer consumes columns, so materializing a row-major `TraceRecord`
//! per call only to transpose the whole trace afterwards was pure overhead
//! on the simulate → trace → analyze hot path. The row view survives as a
//! compat shim ([`Tracer::records`]) for tests and the Darshan-style
//! aggregator.
//!
//! The tracer also interns file paths and application names — lookups are
//! borrowed (`&str`), a `String` is allocated only on the first insert —
//! and can model Recorder's capture overhead (the paper measured 8 % of
//! workload runtime) by charging a fixed cost per captured record, which
//! the layers add to their completion times.

use crate::columnar::ColumnarTrace;
use crate::record::{AppId, FileId, Layer, OpKind, TraceRecord};
use sim_core::{Dur, SimTime};
use std::collections::HashMap;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// The trace capture sink for one workload run.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    /// Column-major storage, including the interned path/name tables
    /// (`cols.file_paths[id]` is the path of `FileId(id)`).
    cols: ColumnarTrace,
    file_ids: HashMap<String, FileId>,
    app_ids: HashMap<String, AppId>,
    /// Cost charged per captured record (0 disables overhead modelling).
    pub per_record_overhead: Dur,
    enabled: bool,
}

impl Tracer {
    /// New enabled tracer with no capture overhead.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// New tracer charging `overhead` per record (Recorder's runtime cost).
    pub fn with_overhead(overhead: Dur) -> Self {
        Tracer {
            enabled: true,
            per_record_overhead: overhead,
            ..Default::default()
        }
    }

    /// Rebuild a tracer around already-captured columns — the loaders and
    /// the trace-salvage path turn a (possibly partial) [`ColumnarTrace`]
    /// back into a live capture sink this way.
    pub fn from_columnar(cols: ColumnarTrace) -> Self {
        let mut t = Tracer {
            cols,
            enabled: true,
            ..Default::default()
        };
        t.rebuild_index();
        t
    }

    /// New enabled tracer with room for `n` records pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        Tracer {
            cols: ColumnarTrace::with_capacity(n),
            enabled: true,
            ..Default::default()
        }
    }

    /// Reserve room for at least `additional` more records. Workloads call
    /// this with a params-derived estimate before the run so the capture
    /// columns grow once instead of doubling through the simulation.
    pub fn reserve(&mut self, additional: usize) {
        self.cols.reserve(additional);
    }

    /// Enable/disable capture (a disabled tracer records nothing and costs
    /// nothing, like running without the profiler attached).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether capture is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a file path. Known paths are found via a borrowed lookup;
    /// only the first occurrence of a path allocates.
    pub fn file_id(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.file_ids.get(path) {
            return id;
        }
        let id = FileId(self.cols.file_paths.len() as u32);
        self.cols.file_paths.push(path.to_string());
        self.file_ids.insert(path.to_string(), id);
        id
    }

    /// Intern an application name (borrowed lookup, see [`Self::file_id`]).
    pub fn app_id(&mut self, name: &str) -> AppId {
        if let Some(&id) = self.app_ids.get(name) {
            return id;
        }
        let id = AppId(self.cols.app_names.len() as u16);
        self.cols.app_names.push(name.to_string());
        self.app_ids.insert(name.to_string(), id);
        id
    }

    /// The path of an interned file.
    pub fn path_of(&self, id: FileId) -> &str {
        &self.cols.file_paths[id.0 as usize]
    }

    /// The name of an interned application.
    pub fn app_name(&self, id: AppId) -> &str {
        &self.cols.app_names[id.0 as usize]
    }

    /// All interned paths (index = `FileId`).
    pub fn file_paths(&self) -> &[String] {
        &self.cols.file_paths
    }

    /// All interned app names (index = `AppId`).
    pub fn app_names(&self) -> &[String] {
        &self.cols.app_names
    }

    /// Capture a record; returns the capture overhead to add to the caller's
    /// completion time (zero when disabled or no overhead configured).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        rank: u32,
        node: u32,
        app: AppId,
        layer: Layer,
        op: OpKind,
        start: SimTime,
        end: SimTime,
        file: Option<FileId>,
        offset: u64,
        bytes: u64,
    ) -> Dur {
        if !self.enabled {
            return Dur::ZERO;
        }
        self.cols
            .push_row(rank, node, app, layer, op, start, end, file, offset, bytes);
        self.per_record_overhead
    }

    /// Borrowed columnar view of the capture sink — the zero-copy input to
    /// the analyzer kernels.
    pub fn columnar(&self) -> &ColumnarTrace {
        &self.cols
    }

    /// Owned copy of the columns (one memcpy per column; no transpose).
    pub fn to_columnar(&self) -> ColumnarTrace {
        self.cols.clone()
    }

    /// Consume the tracer, yielding its columns without copying.
    pub fn into_columnar(self) -> ColumnarTrace {
        self.cols
    }

    /// Row-major view of the captured records, in capture order. Compat
    /// shim: rows are materialized on demand from the columns.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.cols.to_records()
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Rebuild the intern maps after deserialization.
    pub fn rebuild_index(&mut self) {
        self.file_ids = self
            .cols
            .file_paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), FileId(i as u32)))
            .collect();
        self.app_ids = self
            .cols
            .app_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AppId(i as u16)))
            .collect();
    }
}

// Serialized in the columnar layout (the capture format *is* the analysis
// format). The intern maps (`file_ids`, `app_ids`) are derived state and are
// not persisted; [`Tracer::rebuild_index`] reconstructs them after a load.
impl ToJson for Tracer {
    fn to_json(&self) -> Json {
        Json::obj([
            ("columns", self.cols.to_json()),
            ("per_record_overhead", self.per_record_overhead.to_json()),
            ("enabled", self.enabled.to_json()),
        ])
    }
}

impl FromJson for Tracer {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Tracer {
            cols: j.decode_field("columns")?,
            file_ids: HashMap::new(),
            app_ids: HashMap::new(),
            per_record_overhead: j.decode_field("per_record_overhead")?,
            enabled: j.decode_field("enabled")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = Tracer::new();
        let a = t.file_id("/p/gpfs1/a");
        let b = t.file_id("/p/gpfs1/b");
        assert_ne!(a, b);
        assert_eq!(t.file_id("/p/gpfs1/a"), a);
        assert_eq!(t.path_of(a), "/p/gpfs1/a");
        let m = t.app_id("mProject");
        assert_eq!(t.app_id("mProject"), m);
        assert_eq!(t.app_name(m), "mProject");
    }

    /// Re-interning a known path or app name performs no new insertions:
    /// the intern tables' lengths (and the path table's capacity) must not
    /// move, proving the hot path is a borrowed lookup.
    #[test]
    fn repeated_interning_inserts_nothing() {
        let mut t = Tracer::new();
        for i in 0..16 {
            t.file_id(&format!("/p/gpfs1/part.{i}"));
        }
        t.app_id("hacc");
        let paths_len = t.file_paths().len();
        let paths_cap = t.cols.file_paths.capacity();
        let map_len = t.file_ids.len();
        let apps_len = t.app_names().len();
        for _ in 0..1000 {
            t.file_id("/p/gpfs1/part.7");
            t.app_id("hacc");
        }
        assert_eq!(t.file_paths().len(), paths_len);
        assert_eq!(t.cols.file_paths.capacity(), paths_cap);
        assert_eq!(t.file_ids.len(), map_len);
        assert_eq!(t.app_names().len(), apps_len);
        assert_eq!(t.app_ids.len(), 1);
    }

    #[test]
    fn capture_is_columnar_with_row_shim() {
        let mut t = Tracer::new();
        let f = t.file_id("/f");
        let a = t.app_id("app");
        t.record(2, 1, a, Layer::Posix, OpKind::Write, SimTime(5), SimTime(9), Some(f), 64, 128);
        t.record(2, 1, a, Layer::Posix, OpKind::Close, SimTime(9), SimTime(10), Some(f), 0, 0);
        // Columns are filled directly ...
        assert_eq!(t.columnar().bytes, vec![128, 0]);
        assert_eq!(t.columnar().op, vec![OpKind::Write, OpKind::Close]);
        // ... and the row shim reconstructs the exact records.
        let rows = t.records();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rank, 2);
        assert_eq!(rows[0].file, Some(f));
        assert_eq!(rows[0].bytes, 128);
        assert_eq!(rows[1].op, OpKind::Close);
    }

    #[test]
    fn reserve_presizes_all_columns() {
        let mut t = Tracer::with_capacity(100);
        assert!(t.cols.rank.capacity() >= 100);
        assert!(t.cols.bytes.capacity() >= 100);
        t.reserve(500);
        assert!(t.cols.op.capacity() >= 500);
        assert!(t.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::with_overhead(Dur::from_micros(1));
        t.set_enabled(false);
        let f = t.file_id("/f");
        let ov = t.record(
            0,
            0,
            AppId(0),
            Layer::Posix,
            OpKind::Read,
            SimTime::ZERO,
            SimTime::from_secs(1),
            Some(f),
            0,
            100,
        );
        assert_eq!(ov, Dur::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn overhead_is_charged_per_record() {
        let mut t = Tracer::with_overhead(Dur::from_micros(2));
        let ov = t.record(
            1,
            0,
            AppId(0),
            Layer::Stdio,
            OpKind::Write,
            SimTime::ZERO,
            SimTime::from_secs(1),
            None,
            0,
            10,
        );
        assert_eq!(ov, Dur::from_micros(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].rank, 1);
    }

    #[test]
    fn rebuild_index_restores_interning() {
        let mut t = Tracer::new();
        t.file_id("/x");
        t.file_id("/y");
        t.app_id("app");
        let json = vani_rt::json::to_string(&t);
        let mut back: Tracer = vani_rt::json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.file_id("/x"), FileId(0));
        assert_eq!(back.file_id("/y"), FileId(1));
        assert_eq!(back.file_id("/z"), FileId(2));
        assert_eq!(back.app_id("app"), AppId(0));
    }
}
