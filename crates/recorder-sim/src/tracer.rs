//! The row-major capture sink.
//!
//! During a run, every layer appends [`TraceRecord`]s here. The tracer also
//! interns file paths and application names, and can model Recorder's
//! capture overhead (the paper measured 8 % of workload runtime) by charging
//! a fixed cost per captured record, which the layers add to their completion
//! times.

use crate::record::{AppId, FileId, Layer, OpKind, TraceRecord};
use sim_core::{Dur, SimTime};
use std::collections::HashMap;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// The trace capture sink for one workload run.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    file_paths: Vec<String>,
    file_ids: HashMap<String, FileId>,
    app_names: Vec<String>,
    app_ids: HashMap<String, AppId>,
    /// Cost charged per captured record (0 disables overhead modelling).
    pub per_record_overhead: Dur,
    enabled: bool,
}

impl Tracer {
    /// New enabled tracer with no capture overhead.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// New tracer charging `overhead` per record (Recorder's runtime cost).
    pub fn with_overhead(overhead: Dur) -> Self {
        Tracer {
            enabled: true,
            per_record_overhead: overhead,
            ..Default::default()
        }
    }

    /// Enable/disable capture (a disabled tracer records nothing and costs
    /// nothing, like running without the profiler attached).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether capture is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a file path.
    pub fn file_id(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.file_ids.get(path) {
            return id;
        }
        let id = FileId(self.file_paths.len() as u32);
        self.file_paths.push(path.to_string());
        self.file_ids.insert(path.to_string(), id);
        id
    }

    /// Intern an application name.
    pub fn app_id(&mut self, name: &str) -> AppId {
        if let Some(&id) = self.app_ids.get(name) {
            return id;
        }
        let id = AppId(self.app_names.len() as u16);
        self.app_names.push(name.to_string());
        self.app_ids.insert(name.to_string(), id);
        id
    }

    /// The path of an interned file.
    pub fn path_of(&self, id: FileId) -> &str {
        &self.file_paths[id.0 as usize]
    }

    /// The name of an interned application.
    pub fn app_name(&self, id: AppId) -> &str {
        &self.app_names[id.0 as usize]
    }

    /// All interned paths (index = `FileId`).
    pub fn file_paths(&self) -> &[String] {
        &self.file_paths
    }

    /// All interned app names (index = `AppId`).
    pub fn app_names(&self) -> &[String] {
        &self.app_names
    }

    /// Capture a record; returns the capture overhead to add to the caller's
    /// completion time (zero when disabled or no overhead configured).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        rank: u32,
        node: u32,
        app: AppId,
        layer: Layer,
        op: OpKind,
        start: SimTime,
        end: SimTime,
        file: Option<FileId>,
        offset: u64,
        bytes: u64,
    ) -> Dur {
        if !self.enabled {
            return Dur::ZERO;
        }
        self.records.push(TraceRecord {
            rank,
            node,
            app,
            layer,
            op,
            start,
            end,
            file,
            offset,
            bytes,
        });
        self.per_record_overhead
    }

    /// The captured records, in capture order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rebuild the intern maps after deserialization.
    pub fn rebuild_index(&mut self) {
        self.file_ids = self
            .file_paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), FileId(i as u32)))
            .collect();
        self.app_ids = self
            .app_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AppId(i as u16)))
            .collect();
    }
}

// The intern maps (`file_ids`, `app_ids`) are derived state and are not
// persisted; [`Tracer::rebuild_index`] reconstructs them after a load.
impl ToJson for Tracer {
    fn to_json(&self) -> Json {
        Json::obj([
            ("records", self.records.to_json()),
            ("file_paths", self.file_paths.to_json()),
            ("app_names", self.app_names.to_json()),
            ("per_record_overhead", self.per_record_overhead.to_json()),
            ("enabled", self.enabled.to_json()),
        ])
    }
}

impl FromJson for Tracer {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Tracer {
            records: j.decode_field("records")?,
            file_paths: j.decode_field("file_paths")?,
            file_ids: HashMap::new(),
            app_names: j.decode_field("app_names")?,
            app_ids: HashMap::new(),
            per_record_overhead: j.decode_field("per_record_overhead")?,
            enabled: j.decode_field("enabled")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = Tracer::new();
        let a = t.file_id("/p/gpfs1/a");
        let b = t.file_id("/p/gpfs1/b");
        assert_ne!(a, b);
        assert_eq!(t.file_id("/p/gpfs1/a"), a);
        assert_eq!(t.path_of(a), "/p/gpfs1/a");
        let m = t.app_id("mProject");
        assert_eq!(t.app_id("mProject"), m);
        assert_eq!(t.app_name(m), "mProject");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::with_overhead(Dur::from_micros(1));
        t.set_enabled(false);
        let f = t.file_id("/f");
        let ov = t.record(
            0,
            0,
            AppId(0),
            Layer::Posix,
            OpKind::Read,
            SimTime::ZERO,
            SimTime::from_secs(1),
            Some(f),
            0,
            100,
        );
        assert_eq!(ov, Dur::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn overhead_is_charged_per_record() {
        let mut t = Tracer::with_overhead(Dur::from_micros(2));
        let ov = t.record(
            1,
            0,
            AppId(0),
            Layer::Stdio,
            OpKind::Write,
            SimTime::ZERO,
            SimTime::from_secs(1),
            None,
            0,
            10,
        );
        assert_eq!(ov, Dur::from_micros(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].rank, 1);
    }

    #[test]
    fn rebuild_index_restores_interning() {
        let mut t = Tracer::new();
        t.file_id("/x");
        t.file_id("/y");
        t.app_id("app");
        let json = vani_rt::json::to_string(&t);
        let mut back: Tracer = vani_rt::json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.file_id("/x"), FileId(0));
        assert_eq!(back.file_id("/y"), FileId(1));
        assert_eq!(back.file_id("/z"), FileId(2));
        assert_eq!(back.app_id("app"), AppId(0));
    }
}
