//! The trace capture sink.
//!
//! During a run, every layer appends records here. Capture goes **directly
//! into struct-of-arrays storage** (an embedded [`ColumnarTrace`]): the
//! analyzer consumes columns, so materializing a row-major `TraceRecord`
//! per call only to transpose the whole trace afterwards was pure overhead
//! on the simulate → trace → analyze hot path. The row view survives as a
//! compat shim ([`Tracer::records`]) for tests and the Darshan-style
//! aggregator.
//!
//! The tracer also interns file paths and application names — lookups are
//! borrowed (`&str`), a `String` is allocated only on the first insert —
//! and can model Recorder's capture overhead (the paper measured 8 % of
//! workload runtime) by charging a fixed cost per captured record, which
//! the layers add to their completion times.

use crate::chunk::{columnar_capacity_bytes, ChunkedTrace, CompressedChunk, GaugeCharge};
use crate::columnar::ColumnarTrace;
use crate::record::{AppId, FileId, Layer, OpKind, TraceRecord};
use crate::spill::{SpillError, SpillFaultPlan, SpillSummary, SpillWriter};
use sim_core::{Dur, SimTime};
use std::collections::HashMap;
use std::path::Path;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// Records per adaptive-sampler feedback window.
const SAMPLER_WINDOW: u64 = 1024;

/// Largest admission stride the sampler will back off to.
const SAMPLER_MAX_STRIDE: u64 = 65536;

/// Overhead-budget admission control for capture (Recorder's "keep tracing
/// under X% of runtime" knob, here deterministic by construction).
///
/// Records are admitted every `stride`-th call. After each window of
/// [`SAMPLER_WINDOW`] offered records the sampler compares the capture
/// overhead it charged (`admitted × per_record_overhead`) against the
/// simulated time the window spanned: above budget the stride doubles
/// (up to [`SAMPLER_MAX_STRIDE`]), below half budget it halves (down to 1,
/// i.e. capture everything). All state advances on offered-record counts
/// and simulated timestamps only — never wall clock — so a given record
/// stream always samples identically.
#[derive(Debug, Clone)]
pub struct AdaptiveSampler {
    /// Target capture overhead as a fraction of simulated time.
    budget: f64,
    stride: u64,
    seen: u64,
    admitted_in_window: u64,
    window_start: SimTime,
}

impl AdaptiveSampler {
    /// Sampler targeting `budget` (fraction of simulated time, e.g. 0.08
    /// for the paper's 8%). Starts at stride 1 (admit everything) and
    /// backs off only if the stream proves too hot.
    pub fn new(budget: f64) -> AdaptiveSampler {
        assert!(budget > 0.0, "sampler budget must be positive");
        AdaptiveSampler {
            budget,
            stride: 1,
            seen: 0,
            admitted_in_window: 0,
            window_start: SimTime::ZERO,
        }
    }

    /// Admission decision for the next offered record starting at `start`.
    fn admit(&mut self, start: SimTime, per_record_overhead: Dur) -> bool {
        if self.seen == 0 {
            self.window_start = start;
        }
        let admit = self.seen % self.stride == 0;
        self.seen += 1;
        if admit {
            self.admitted_in_window += 1;
        }
        if self.seen % SAMPLER_WINDOW == 0 {
            let span = start.since(self.window_start).as_secs_f64();
            let spent = self.admitted_in_window as f64 * per_record_overhead.as_secs_f64();
            let frac = if span > 0.0 {
                spent / span
            } else if spent > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if frac > self.budget {
                self.stride = (self.stride * 2).min(SAMPLER_MAX_STRIDE);
            } else if frac < self.budget / 2.0 {
                self.stride = (self.stride / 2).max(1);
            }
            self.admitted_in_window = 0;
            self.window_start = start;
        }
        admit
    }

    /// Current admission stride (1 = capturing everything).
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

/// Chunked-capture state: sealed chunks so far, the recycled codec scratch,
/// and the gauge charge covering the live buffer + scratch. With a spill
/// writer attached, sealed chunks stream to disk instead of accumulating
/// in `chunks` — the larger-than-RAM capture path.
#[derive(Debug)]
struct ChunkState {
    chunk_rows: usize,
    chunks: Vec<CompressedChunk>,
    scratch: Vec<u64>,
    charge: GaugeCharge,
    writer: Option<SpillWriter>,
    /// First spill failure, surfaced at [`Tracer::into_spill`] — `record`
    /// returns a `Dur` and cannot propagate it. After a failure sealed
    /// chunks fall back to accumulating in memory so the capture itself
    /// is never lost.
    spill_error: Option<SpillError>,
}

impl Clone for ChunkState {
    /// A cloned tracer is a fresh in-memory capture: the spill writer
    /// holds an open file handle and an exclusive temp path, so it (and
    /// any stored spill error) stays with the original.
    fn clone(&self) -> ChunkState {
        ChunkState {
            chunk_rows: self.chunk_rows,
            chunks: self.chunks.clone(),
            scratch: self.scratch.clone(),
            charge: self.charge.clone(),
            writer: None,
            spill_error: None,
        }
    }
}

/// The trace capture sink for one workload run.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    /// Column-major storage, including the interned path/name tables
    /// (`cols.file_paths[id]` is the path of `FileId(id)`).
    cols: ColumnarTrace,
    file_ids: HashMap<String, FileId>,
    app_ids: HashMap<String, AppId>,
    /// Cost charged per captured record (0 disables overhead modelling).
    pub per_record_overhead: Dur,
    enabled: bool,
    /// `Some` once chunked capture is on: `cols` then holds only the
    /// unsealed tail, bounded by the chunk size.
    chunked: Option<ChunkState>,
    /// Overhead-budget admission control; `None` (the default) captures
    /// every record — required for the streaming == fused identity.
    sampler: Option<AdaptiveSampler>,
}

impl Tracer {
    /// New enabled tracer with no capture overhead.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// New tracer charging `overhead` per record (Recorder's runtime cost).
    pub fn with_overhead(overhead: Dur) -> Self {
        Tracer {
            enabled: true,
            per_record_overhead: overhead,
            ..Default::default()
        }
    }

    /// Rebuild a tracer around already-captured columns — the loaders and
    /// the trace-salvage path turn a (possibly partial) [`ColumnarTrace`]
    /// back into a live capture sink this way.
    pub fn from_columnar(cols: ColumnarTrace) -> Self {
        let mut t = Tracer {
            cols,
            enabled: true,
            ..Default::default()
        };
        t.rebuild_index();
        t
    }

    /// New enabled tracer with room for `n` records pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        Tracer {
            cols: ColumnarTrace::with_capacity(n),
            enabled: true,
            ..Default::default()
        }
    }

    /// Switch this tracer to chunked capture: from now on, whenever the
    /// live columns reach `chunk_rows` records they are sealed into a
    /// compressed chunk (see [`crate::chunk`]) and recycled. Must be called
    /// before any record is captured — the live buffer is the first chunk.
    ///
    /// In chunked mode [`columnar`](Self::columnar), [`records`] and
    /// friends expose only the unsealed tail; consume the full trace with
    /// [`into_chunked`](Self::into_chunked).
    ///
    /// [`records`]: Self::records
    pub fn enable_chunked(&mut self, chunk_rows: usize) {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        assert!(
            self.cols.is_empty(),
            "enable_chunked before capturing records"
        );
        if self.chunked.is_some() {
            return;
        }
        self.cols.reserve(chunk_rows);
        let scratch = Vec::with_capacity(chunk_rows);
        let bytes = columnar_capacity_bytes(&self.cols) + (scratch.capacity() * 8) as u64;
        self.chunked = Some(ChunkState {
            chunk_rows,
            chunks: Vec::new(),
            scratch,
            charge: GaugeCharge::new(bytes),
            writer: None,
            spill_error: None,
        });
    }

    /// Attach a spill writer: from now on sealed chunks stream to the
    /// append-only log at `path` instead of accumulating in memory, so
    /// capture handles traces larger than RAM. Requires chunked mode and
    /// must be called before any chunk seals.
    pub fn enable_spill(&mut self, path: &Path, fault: SpillFaultPlan) -> Result<(), SpillError> {
        let cs = self
            .chunked
            .as_mut()
            .expect("enable_spill requires enable_chunked");
        assert!(
            cs.chunks.is_empty() && cs.writer.is_none(),
            "enable_spill before any chunk seals"
        );
        cs.writer = Some(SpillWriter::create(path, cs.chunk_rows, fault)?);
        Ok(())
    }

    /// Whether a spill writer is attached and healthy.
    pub fn is_spilling(&self) -> bool {
        self.chunked
            .as_ref()
            .is_some_and(|cs| cs.writer.is_some() && cs.spill_error.is_none())
    }

    /// Finish spill capture: seal the tail, append it, persist the intern
    /// tables, and seal the log. Returns the first spill failure if any
    /// append failed mid-run (the capture up to that point survives
    /// in-memory via [`into_chunked`](Self::into_chunked) semantics).
    pub fn into_spill(mut self) -> Result<SpillSummary, SpillError> {
        let mut cs = self
            .chunked
            .take()
            .expect("into_spill requires enable_chunked");
        if let Some(e) = cs.spill_error.take() {
            return Err(e);
        }
        let mut writer = cs.writer.take().expect("into_spill requires enable_spill");
        writer.intern(&self.cols.file_paths, &self.cols.app_names)?;
        if !self.cols.is_empty() {
            let chunk = CompressedChunk::seal(&self.cols, 0..self.cols.len(), &mut cs.scratch);
            writer.append(&chunk, &self.cols.file_paths, &self.cols.app_names)?;
        }
        writer.finish()
    }

    /// New chunked tracer (see [`enable_chunked`](Self::enable_chunked)).
    pub fn with_chunked(chunk_rows: usize) -> Self {
        let mut t = Tracer::new();
        t.enable_chunked(chunk_rows);
        t
    }

    /// Attach an [`AdaptiveSampler`] with the given overhead budget
    /// (fraction of simulated time). Sampling drops records, so profiles of
    /// a sampled trace are estimates — leave it off (the default) wherever
    /// the streaming == fused bit-identity contract applies.
    pub fn set_sampler_budget(&mut self, budget: Option<f64>) {
        self.sampler = budget.map(AdaptiveSampler::new);
    }

    /// The active sampler, if any (tests inspect the adapted stride).
    pub fn sampler(&self) -> Option<&AdaptiveSampler> {
        self.sampler.as_ref()
    }

    /// Whether chunked capture is on.
    pub fn is_chunked(&self) -> bool {
        self.chunked.is_some()
    }

    /// Chunks sealed so far (excludes the live tail in the capture buffer).
    pub fn sealed_chunks(&self) -> usize {
        self.chunked.as_ref().map_or(0, |cs| cs.chunks.len())
    }

    /// Finish chunked capture: seal the tail and yield the compressed
    /// trace. Panics if [`enable_chunked`](Self::enable_chunked) was never
    /// called — a batch tracer's columns convert via
    /// [`crate::chunk::ChunkedTrace::from_columnar`] instead.
    pub fn into_chunked(mut self) -> ChunkedTrace {
        let mut cs = self
            .chunked
            .take()
            .expect("into_chunked requires enable_chunked");
        if !self.cols.is_empty() {
            cs.chunks.push(CompressedChunk::seal(
                &self.cols,
                0..self.cols.len(),
                &mut cs.scratch,
            ));
        }
        ChunkedTrace {
            chunk_rows: cs.chunk_rows,
            chunks: std::mem::take(&mut cs.chunks),
            file_paths: std::mem::take(&mut self.cols.file_paths),
            app_names: std::mem::take(&mut self.cols.app_names),
        }
    }

    /// Reserve room for at least `additional` more records. Workloads call
    /// this with a params-derived estimate before the run so the capture
    /// columns grow once instead of doubling through the simulation.
    ///
    /// In chunked mode the hint is clamped to one chunk: the live buffer
    /// never holds more than `chunk_rows` records, so a million-record
    /// workload hint must not balloon the first-chunk allocation.
    pub fn reserve(&mut self, additional: usize) {
        let additional = match &self.chunked {
            Some(cs) => additional.min(cs.chunk_rows),
            None => additional,
        };
        self.cols.reserve(additional);
        if let Some(cs) = &mut self.chunked {
            let bytes = columnar_capacity_bytes(&self.cols) + (cs.scratch.capacity() * 8) as u64;
            cs.charge.resync(bytes);
        }
    }

    /// Enable/disable capture (a disabled tracer records nothing and costs
    /// nothing, like running without the profiler attached).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether capture is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a file path. Known paths are found via a borrowed lookup;
    /// only the first occurrence of a path allocates.
    pub fn file_id(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.file_ids.get(path) {
            return id;
        }
        let id = FileId(self.cols.file_paths.len() as u32);
        self.cols.file_paths.push(path.to_string());
        self.file_ids.insert(path.to_string(), id);
        id
    }

    /// Intern an application name (borrowed lookup, see [`Self::file_id`]).
    pub fn app_id(&mut self, name: &str) -> AppId {
        if let Some(&id) = self.app_ids.get(name) {
            return id;
        }
        let id = AppId(self.cols.app_names.len() as u16);
        self.cols.app_names.push(name.to_string());
        self.app_ids.insert(name.to_string(), id);
        id
    }

    /// The path of an interned file.
    pub fn path_of(&self, id: FileId) -> &str {
        &self.cols.file_paths[id.0 as usize]
    }

    /// The name of an interned application.
    pub fn app_name(&self, id: AppId) -> &str {
        &self.cols.app_names[id.0 as usize]
    }

    /// All interned paths (index = `FileId`).
    pub fn file_paths(&self) -> &[String] {
        &self.cols.file_paths
    }

    /// All interned app names (index = `AppId`).
    pub fn app_names(&self) -> &[String] {
        &self.cols.app_names
    }

    /// Capture a record; returns the capture overhead to add to the caller's
    /// completion time (zero when disabled or no overhead configured).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        rank: u32,
        node: u32,
        app: AppId,
        layer: Layer,
        op: OpKind,
        start: SimTime,
        end: SimTime,
        file: Option<FileId>,
        offset: u64,
        bytes: u64,
    ) -> Dur {
        if !self.enabled {
            return Dur::ZERO;
        }
        if let Some(s) = &mut self.sampler {
            if !s.admit(start, self.per_record_overhead) {
                return Dur::ZERO;
            }
        }
        self.cols
            .push_row(rank, node, app, layer, op, start, end, file, offset, bytes);
        if let Some(cs) = &mut self.chunked {
            if self.cols.len() >= cs.chunk_rows {
                let chunk = CompressedChunk::seal(&self.cols, 0..self.cols.len(), &mut cs.scratch);
                match &mut cs.writer {
                    Some(w) => {
                        if let Err(e) =
                            w.append(&chunk, &self.cols.file_paths, &self.cols.app_names)
                        {
                            // `record` returns a `Dur`, so stash the typed
                            // failure for `into_spill` and fall back to
                            // in-memory accumulation: the capture outlives
                            // the broken device.
                            cs.spill_error = Some(e);
                            cs.writer = None;
                            cs.chunks.push(chunk);
                        }
                    }
                    None => cs.chunks.push(chunk),
                }
                self.cols.clear_rows();
            }
        }
        self.per_record_overhead
    }

    /// Borrowed columnar view of the capture sink — the zero-copy input to
    /// the analyzer kernels.
    pub fn columnar(&self) -> &ColumnarTrace {
        &self.cols
    }

    /// Owned copy of the columns (one memcpy per column; no transpose).
    pub fn to_columnar(&self) -> ColumnarTrace {
        self.cols.clone()
    }

    /// Consume the tracer, yielding its columns without copying.
    pub fn into_columnar(self) -> ColumnarTrace {
        self.cols
    }

    /// Row-major view of the captured records, in capture order. Compat
    /// shim: rows are materialized on demand from the columns.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.cols.to_records()
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Rebuild the intern maps after deserialization.
    pub fn rebuild_index(&mut self) {
        self.file_ids = self
            .cols
            .file_paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), FileId(i as u32)))
            .collect();
        self.app_ids = self
            .cols
            .app_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AppId(i as u16)))
            .collect();
    }
}

// Serialized in the columnar layout (the capture format *is* the analysis
// format). The intern maps (`file_ids`, `app_ids`) are derived state and are
// not persisted; [`Tracer::rebuild_index`] reconstructs them after a load.
impl ToJson for Tracer {
    fn to_json(&self) -> Json {
        Json::obj([
            ("columns", self.cols.to_json()),
            ("per_record_overhead", self.per_record_overhead.to_json()),
            ("enabled", self.enabled.to_json()),
        ])
    }
}

impl FromJson for Tracer {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Tracer {
            cols: j.decode_field("columns")?,
            file_ids: HashMap::new(),
            app_ids: HashMap::new(),
            per_record_overhead: j.decode_field("per_record_overhead")?,
            enabled: j.decode_field("enabled")?,
            chunked: None,
            sampler: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = Tracer::new();
        let a = t.file_id("/p/gpfs1/a");
        let b = t.file_id("/p/gpfs1/b");
        assert_ne!(a, b);
        assert_eq!(t.file_id("/p/gpfs1/a"), a);
        assert_eq!(t.path_of(a), "/p/gpfs1/a");
        let m = t.app_id("mProject");
        assert_eq!(t.app_id("mProject"), m);
        assert_eq!(t.app_name(m), "mProject");
    }

    /// Re-interning a known path or app name performs no new insertions:
    /// the intern tables' lengths (and the path table's capacity) must not
    /// move, proving the hot path is a borrowed lookup.
    #[test]
    fn repeated_interning_inserts_nothing() {
        let mut t = Tracer::new();
        for i in 0..16 {
            t.file_id(&format!("/p/gpfs1/part.{i}"));
        }
        t.app_id("hacc");
        let paths_len = t.file_paths().len();
        let paths_cap = t.cols.file_paths.capacity();
        let map_len = t.file_ids.len();
        let apps_len = t.app_names().len();
        for _ in 0..1000 {
            t.file_id("/p/gpfs1/part.7");
            t.app_id("hacc");
        }
        assert_eq!(t.file_paths().len(), paths_len);
        assert_eq!(t.cols.file_paths.capacity(), paths_cap);
        assert_eq!(t.file_ids.len(), map_len);
        assert_eq!(t.app_names().len(), apps_len);
        assert_eq!(t.app_ids.len(), 1);
    }

    #[test]
    fn capture_is_columnar_with_row_shim() {
        let mut t = Tracer::new();
        let f = t.file_id("/f");
        let a = t.app_id("app");
        t.record(
            2,
            1,
            a,
            Layer::Posix,
            OpKind::Write,
            SimTime(5),
            SimTime(9),
            Some(f),
            64,
            128,
        );
        t.record(
            2,
            1,
            a,
            Layer::Posix,
            OpKind::Close,
            SimTime(9),
            SimTime(10),
            Some(f),
            0,
            0,
        );
        // Columns are filled directly ...
        assert_eq!(t.columnar().bytes, vec![128, 0]);
        assert_eq!(t.columnar().op, vec![OpKind::Write, OpKind::Close]);
        // ... and the row shim reconstructs the exact records.
        let rows = t.records();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rank, 2);
        assert_eq!(rows[0].file, Some(f));
        assert_eq!(rows[0].bytes, 128);
        assert_eq!(rows[1].op, OpKind::Close);
    }

    #[test]
    fn reserve_presizes_all_columns() {
        let mut t = Tracer::with_capacity(100);
        assert!(t.cols.rank.capacity() >= 100);
        assert!(t.cols.bytes.capacity() >= 100);
        t.reserve(500);
        assert!(t.cols.op.capacity() >= 500);
        assert!(t.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::with_overhead(Dur::from_micros(1));
        t.set_enabled(false);
        let f = t.file_id("/f");
        let ov = t.record(
            0,
            0,
            AppId(0),
            Layer::Posix,
            OpKind::Read,
            SimTime::ZERO,
            SimTime::from_secs(1),
            Some(f),
            0,
            100,
        );
        assert_eq!(ov, Dur::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn overhead_is_charged_per_record() {
        let mut t = Tracer::with_overhead(Dur::from_micros(2));
        let ov = t.record(
            1,
            0,
            AppId(0),
            Layer::Stdio,
            OpKind::Write,
            SimTime::ZERO,
            SimTime::from_secs(1),
            None,
            0,
            10,
        );
        assert_eq!(ov, Dur::from_micros(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].rank, 1);
    }

    /// Drive `n` records through a tracer via the shared synthetic stream.
    fn feed(t: &mut Tracer, n: u64) {
        let f = t.file_id("/f");
        let g = t.file_id("/g");
        let a = t.app_id("app");
        for i in 0..n {
            t.record(
                (i % 4) as u32,
                0,
                a,
                if i % 3 == 0 {
                    Layer::Stdio
                } else {
                    Layer::Posix
                },
                if i % 5 == 0 {
                    OpKind::Open
                } else {
                    OpKind::Write
                },
                SimTime(i * 1000),
                SimTime(i * 1000 + 400),
                Some(if i % 2 == 0 { f } else { g }),
                i * 512,
                if i % 5 == 0 { 0 } else { 512 },
            );
        }
    }

    #[test]
    fn chunked_capture_equals_batch_capture() {
        let mut batch = Tracer::new();
        feed(&mut batch, 10_000);
        for chunk_rows in [64usize, 1024, 65536] {
            let mut chunked = Tracer::with_chunked(chunk_rows);
            feed(&mut chunked, 10_000);
            assert!(chunked.sealed_chunks() >= 10_000 / chunk_rows);
            let ct = chunked.into_chunked();
            assert_eq!(ct.len(), 10_000);
            assert_eq!(
                ct.to_columnar().expect("decodes"),
                batch.to_columnar(),
                "chunk_rows={chunk_rows}"
            );
        }
    }

    /// The satellite fix: in chunked mode, workload record-count hints are
    /// clamped to one chunk, so a huge hint cannot balloon the first-chunk
    /// allocation (capacity micro-assertion, as in the interning test).
    #[test]
    fn chunked_reserve_clamps_to_one_chunk() {
        let mut t = Tracer::with_chunked(1024);
        t.reserve(1_000_000);
        assert!(
            t.cols.rank.capacity() <= 2 * 1024,
            "capacity {}",
            t.cols.rank.capacity()
        );
        assert!(
            t.cols.bytes.capacity() <= 2 * 1024,
            "capacity {}",
            t.cols.bytes.capacity()
        );
        // Batch mode keeps honoring the full hint.
        let mut b = Tracer::new();
        b.reserve(100_000);
        assert!(b.cols.rank.capacity() >= 100_000);
    }

    #[test]
    fn chunked_capture_keeps_live_buffer_bounded() {
        let mut t = Tracer::with_chunked(256);
        feed(&mut t, 5_000);
        assert!(t.cols.len() < 256, "live tail only: {}", t.cols.len());
        assert!(
            t.cols.rank.capacity() <= 512,
            "buffer recycled, not regrown"
        );
        assert_eq!(t.sealed_chunks(), 5_000 / 256);
    }

    #[test]
    fn spill_capture_round_trips_through_the_log() {
        let dir = std::env::temp_dir().join(format!("vani-tracer-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.vsp3");
        let mut mem = Tracer::with_chunked(256);
        feed(&mut mem, 5_000);
        let mut sp = Tracer::with_chunked(256);
        sp.enable_spill(&path, SpillFaultPlan::none())
            .expect("spill on");
        feed(&mut sp, 5_000);
        assert!(sp.is_spilling());
        assert_eq!(sp.sealed_chunks(), 0, "sealed chunks stream to disk");
        let sum = sp.into_spill().expect("seals");
        assert_eq!(sum.records, 5_000);
        let loaded = crate::spill::load_spill(&path).expect("loads");
        assert_eq!(loaded, mem.into_chunked());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampler_off_is_exhaustive_and_deterministic() {
        let mut a = Tracer::new();
        let mut b = Tracer::new();
        feed(&mut a, 3_000);
        feed(&mut b, 3_000);
        assert_eq!(a.to_columnar(), b.to_columnar());
        assert_eq!(a.len(), 3_000);
    }

    #[test]
    fn sampler_throttles_hot_streams_and_stays_deterministic() {
        // 1 µs overhead per record, records 1 ns apart: overhead vastly
        // exceeds any budget, so the stride must back off hard.
        let run = || {
            let mut t = Tracer::with_overhead(Dur::from_micros(1));
            t.set_sampler_budget(Some(0.08));
            let a = t.app_id("app");
            for i in 0..100_000u64 {
                t.record(
                    0,
                    0,
                    a,
                    Layer::Posix,
                    OpKind::Write,
                    SimTime(i),
                    SimTime(i + 1),
                    None,
                    0,
                    64,
                );
            }
            (t.len(), t.sampler().unwrap().stride())
        };
        let (len1, stride1) = run();
        let (len2, stride2) = run();
        assert_eq!(
            (len1, stride1),
            (len2, stride2),
            "sampling is deterministic"
        );
        assert!(stride1 > 1, "hot stream must raise the stride");
        assert!(len1 < 100_000 / 4, "most records dropped: {len1}");
    }

    #[test]
    fn sampler_relaxes_on_cool_streams() {
        // Records 1 s apart with 1 µs overhead: far under budget, so the
        // stride stays at 1 and everything is captured.
        let mut t = Tracer::with_overhead(Dur::from_micros(1));
        t.set_sampler_budget(Some(0.08));
        let a = t.app_id("app");
        for i in 0..5_000u64 {
            t.record(
                0,
                0,
                a,
                Layer::Posix,
                OpKind::Write,
                SimTime::from_secs(i),
                SimTime::from_secs(i) + Dur::from_millis(1),
                None,
                0,
                64,
            );
        }
        assert_eq!(t.sampler().unwrap().stride(), 1);
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn rebuild_index_restores_interning() {
        let mut t = Tracer::new();
        t.file_id("/x");
        t.file_id("/y");
        t.app_id("app");
        let json = vani_rt::json::to_string(&t);
        let mut back: Tracer = vani_rt::json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.file_id("/x"), FileId(0));
        assert_eq!(back.file_id("/y"), FileId(1));
        assert_eq!(back.file_id("/z"), FileId(2));
        assert_eq!(back.app_id("app"), AppId(0));
    }
}
