//! The trace schema: one record per intercepted call.

use sim_core::{Dur, SimTime};
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// Interned file identifier; the tracer owns the id → path table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Interned application identifier (workflow step), id → name in the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u16);

/// The interface layer a call was captured at — Recorder's "multi-level"
/// dimension. One logical application call may produce records at several
/// layers (HDF5 → MPI-IO → POSIX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Application-level events (compute, GPU, MPI).
    App,
    /// High-level I/O libraries: HDF5, npy, FITS.
    HighLevel,
    /// MPI-IO.
    MpiIo,
    /// Buffered C stdio.
    Stdio,
    /// POSIX syscalls.
    Posix,
    /// Middleware interceptors (buffering/prefetch/compression), when active.
    Middleware,
}

impl Layer {
    /// Dense integer code used by the columnar codec and the analyzer's
    /// per-layer presence tables. The numbering is part of the on-disk
    /// row-group format (version 2+): never reorder it.
    pub fn code(&self) -> u8 {
        match self {
            Layer::App => 0,
            Layer::HighLevel => 1,
            Layer::MpiIo => 2,
            Layer::Stdio => 3,
            Layer::Posix => 4,
            Layer::Middleware => 5,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for out-of-range codes (a
    /// corrupt compressed column).
    pub fn from_code(code: u8) -> Option<Layer> {
        Some(match code {
            0 => Layer::App,
            1 => Layer::HighLevel,
            2 => Layer::MpiIo,
            3 => Layer::Stdio,
            4 => Layer::Posix,
            5 => Layer::Middleware,
            _ => return None,
        })
    }

    /// Short label for table output.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::App => "APP",
            Layer::HighLevel => "H5/NPY/FITS",
            Layer::MpiIo => "MPI-IO",
            Layer::Stdio => "STDIO",
            Layer::Posix => "POSIX",
            Layer::Middleware => "MIDW",
        }
    }
}

/// The operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Open an existing file.
    Open,
    /// Create (open with creation).
    Create,
    /// Close.
    Close,
    /// Stat / size query.
    Stat,
    /// Seek (metadata: no data moves).
    Seek,
    /// fsync / flush to stable storage.
    Sync,
    /// Unlink.
    Unlink,
    /// Directory creation.
    Mkdir,
    /// CPU compute span.
    Compute,
    /// GPU compute span.
    GpuCompute,
    /// MPI collective (barrier/bcast/…).
    MpiColl,
    /// MPI point-to-point.
    MpiP2p,
    /// A failed I/O attempt absorbed by the resilience middleware; `bytes`
    /// is the payload the attempt carried. Classified as neither data nor
    /// metadata so fault records never perturb the I/O statistics.
    Fault,
    /// The backoff wait before re-submitting a faulted attempt; `bytes` is
    /// the payload re-submitted (feeds retry amplification).
    Retry,
    /// A durable checkpoint: the span covers the whole checkpoint write
    /// sequence (open → writes → close) on the emitting rank. The bytes
    /// moved are already accounted by the underlying write records, so the
    /// marker is neither data nor metadata.
    Checkpoint,
    /// A fatal job crash; the span covers the work lost (last durable
    /// checkpoint → instant of death).
    Crash,
    /// A job restart after a crash; the span covers the recovery latency
    /// (scheduler requeue + relaunch). One per restart epoch.
    RestartEpoch,
}

impl OpKind {
    /// Dense integer code (declaration order) used by the columnar codec.
    /// Part of the on-disk row-group format (version 2+): append-only.
    pub fn code(&self) -> u8 {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::Open => 2,
            OpKind::Create => 3,
            OpKind::Close => 4,
            OpKind::Stat => 5,
            OpKind::Seek => 6,
            OpKind::Sync => 7,
            OpKind::Unlink => 8,
            OpKind::Mkdir => 9,
            OpKind::Compute => 10,
            OpKind::GpuCompute => 11,
            OpKind::MpiColl => 12,
            OpKind::MpiP2p => 13,
            OpKind::Fault => 14,
            OpKind::Retry => 15,
            OpKind::Checkpoint => 16,
            OpKind::Crash => 17,
            OpKind::RestartEpoch => 18,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for out-of-range codes.
    pub fn from_code(code: u8) -> Option<OpKind> {
        Some(match code {
            0 => OpKind::Read,
            1 => OpKind::Write,
            2 => OpKind::Open,
            3 => OpKind::Create,
            4 => OpKind::Close,
            5 => OpKind::Stat,
            6 => OpKind::Seek,
            7 => OpKind::Sync,
            8 => OpKind::Unlink,
            9 => OpKind::Mkdir,
            10 => OpKind::Compute,
            11 => OpKind::GpuCompute,
            12 => OpKind::MpiColl,
            13 => OpKind::MpiP2p,
            14 => OpKind::Fault,
            15 => OpKind::Retry,
            16 => OpKind::Checkpoint,
            17 => OpKind::Crash,
            18 => OpKind::RestartEpoch,
            _ => return None,
        })
    }

    /// Whether this is a data operation (moves file bytes).
    pub fn is_data(&self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write)
    }

    /// Whether this is a file-metadata operation. The paper's "I/O ops dist
    /// (data, meta)" attribute is computed from this split.
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            OpKind::Open
                | OpKind::Create
                | OpKind::Close
                | OpKind::Stat
                | OpKind::Seek
                | OpKind::Sync
                | OpKind::Unlink
                | OpKind::Mkdir
        )
    }

    /// Whether this is any I/O operation (data or metadata).
    pub fn is_io(&self) -> bool {
        self.is_data() || self.is_meta()
    }

    /// Short label for table output.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Open => "open",
            OpKind::Create => "create",
            OpKind::Close => "close",
            OpKind::Stat => "stat",
            OpKind::Seek => "seek",
            OpKind::Sync => "sync",
            OpKind::Unlink => "unlink",
            OpKind::Mkdir => "mkdir",
            OpKind::Compute => "compute",
            OpKind::GpuCompute => "gpu",
            OpKind::MpiColl => "mpi_coll",
            OpKind::MpiP2p => "mpi_p2p",
            OpKind::Fault => "fault",
            OpKind::Retry => "retry",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Crash => "crash",
            OpKind::RestartEpoch => "restart",
        }
    }
}

/// One captured call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Global rank of the caller.
    pub rank: u32,
    /// Node the caller ran on.
    pub node: u32,
    /// Application (workflow step) the caller belonged to.
    pub app: AppId,
    /// Interface layer of capture.
    pub layer: Layer,
    /// Operation.
    pub op: OpKind,
    /// Call start (simulated).
    pub start: SimTime,
    /// Call end (simulated).
    pub end: SimTime,
    /// File touched, for I/O ops.
    pub file: Option<FileId>,
    /// File offset, for data ops.
    pub offset: u64,
    /// Bytes moved, for data ops (0 for metadata).
    pub bytes: u64,
}

impl ToJson for FileId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for FileId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u32::from_json(j).map(FileId)
    }
}

impl ToJson for AppId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for AppId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u16::from_json(j).map(AppId)
    }
}

impl ToJson for Layer {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Layer::App => "App",
                Layer::HighLevel => "HighLevel",
                Layer::MpiIo => "MpiIo",
                Layer::Stdio => "Stdio",
                Layer::Posix => "Posix",
                Layer::Middleware => "Middleware",
            }
            .to_string(),
        )
    }
}

impl FromJson for Layer {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "App" => Ok(Layer::App),
            "HighLevel" => Ok(Layer::HighLevel),
            "MpiIo" => Ok(Layer::MpiIo),
            "Stdio" => Ok(Layer::Stdio),
            "Posix" => Ok(Layer::Posix),
            "Middleware" => Ok(Layer::Middleware),
            other => Err(JsonError::shape(format!("unknown Layer variant `{other}`"))),
        }
    }
}

impl ToJson for OpKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                OpKind::Read => "Read",
                OpKind::Write => "Write",
                OpKind::Open => "Open",
                OpKind::Create => "Create",
                OpKind::Close => "Close",
                OpKind::Stat => "Stat",
                OpKind::Seek => "Seek",
                OpKind::Sync => "Sync",
                OpKind::Unlink => "Unlink",
                OpKind::Mkdir => "Mkdir",
                OpKind::Compute => "Compute",
                OpKind::GpuCompute => "GpuCompute",
                OpKind::MpiColl => "MpiColl",
                OpKind::MpiP2p => "MpiP2p",
                OpKind::Fault => "Fault",
                OpKind::Retry => "Retry",
                OpKind::Checkpoint => "Checkpoint",
                OpKind::Crash => "Crash",
                OpKind::RestartEpoch => "RestartEpoch",
            }
            .to_string(),
        )
    }
}

impl FromJson for OpKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "Read" => Ok(OpKind::Read),
            "Write" => Ok(OpKind::Write),
            "Open" => Ok(OpKind::Open),
            "Create" => Ok(OpKind::Create),
            "Close" => Ok(OpKind::Close),
            "Stat" => Ok(OpKind::Stat),
            "Seek" => Ok(OpKind::Seek),
            "Sync" => Ok(OpKind::Sync),
            "Unlink" => Ok(OpKind::Unlink),
            "Mkdir" => Ok(OpKind::Mkdir),
            "Compute" => Ok(OpKind::Compute),
            "GpuCompute" => Ok(OpKind::GpuCompute),
            "MpiColl" => Ok(OpKind::MpiColl),
            "MpiP2p" => Ok(OpKind::MpiP2p),
            "Fault" => Ok(OpKind::Fault),
            "Retry" => Ok(OpKind::Retry),
            "Checkpoint" => Ok(OpKind::Checkpoint),
            "Crash" => Ok(OpKind::Crash),
            "RestartEpoch" => Ok(OpKind::RestartEpoch),
            other => Err(JsonError::shape(format!(
                "unknown OpKind variant `{other}`"
            ))),
        }
    }
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", self.rank.to_json()),
            ("node", self.node.to_json()),
            ("app", self.app.to_json()),
            ("layer", self.layer.to_json()),
            ("op", self.op.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
            ("file", self.file.to_json()),
            ("offset", self.offset.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for TraceRecord {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TraceRecord {
            rank: j.decode_field("rank")?,
            node: j.decode_field("node")?,
            app: j.decode_field("app")?,
            layer: j.decode_field("layer")?,
            op: j.decode_field("op")?,
            start: j.decode_field("start")?,
            end: j.decode_field("end")?,
            file: j.decode_field("file")?,
            offset: j.decode_field("offset")?,
            bytes: j.decode_field("bytes")?,
        })
    }
}

impl TraceRecord {
    /// Call duration.
    pub fn dur(&self) -> Dur {
        self.end.since(self.start)
    }

    /// Achieved bandwidth for data ops, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.dur().bandwidth(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_meta_classification() {
        assert!(OpKind::Read.is_data());
        assert!(OpKind::Write.is_data());
        assert!(!OpKind::Open.is_data());
        assert!(OpKind::Open.is_meta());
        assert!(OpKind::Seek.is_meta());
        assert!(OpKind::Sync.is_meta());
        assert!(!OpKind::Compute.is_io());
        assert!(!OpKind::MpiColl.is_io());
        assert!(OpKind::Unlink.is_io());
        // Fault/retry records must never perturb the data/meta statistics.
        assert!(!OpKind::Fault.is_io());
        assert!(!OpKind::Retry.is_io());
        // Same for the crash-recovery markers: durable-checkpoint spans,
        // crash (work lost) spans, and restart-epoch (recovery) spans.
        assert!(!OpKind::Checkpoint.is_io());
        assert!(!OpKind::Crash.is_io());
        assert!(!OpKind::RestartEpoch.is_io());
    }

    #[test]
    fn layer_and_op_codes_round_trip_and_stay_dense() {
        let layers = [
            Layer::App,
            Layer::HighLevel,
            Layer::MpiIo,
            Layer::Stdio,
            Layer::Posix,
            Layer::Middleware,
        ];
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.code() as usize, i, "layer codes are declaration-dense");
            assert_eq!(Layer::from_code(l.code()), Some(*l));
        }
        assert_eq!(Layer::from_code(6), None);
        let ops = [
            OpKind::Read,
            OpKind::Write,
            OpKind::Open,
            OpKind::Create,
            OpKind::Close,
            OpKind::Stat,
            OpKind::Seek,
            OpKind::Sync,
            OpKind::Unlink,
            OpKind::Mkdir,
            OpKind::Compute,
            OpKind::GpuCompute,
            OpKind::MpiColl,
            OpKind::MpiP2p,
            OpKind::Fault,
            OpKind::Retry,
            OpKind::Checkpoint,
            OpKind::Crash,
            OpKind::RestartEpoch,
        ];
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.code() as usize, i, "op codes are declaration-dense");
            assert_eq!(OpKind::from_code(op.code()), Some(*op));
        }
        assert_eq!(OpKind::from_code(19), None);
    }

    #[test]
    fn record_bandwidth() {
        let r = TraceRecord {
            rank: 0,
            node: 0,
            app: AppId(0),
            layer: Layer::Posix,
            op: OpKind::Read,
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
            file: Some(FileId(0)),
            offset: 0,
            bytes: 4 << 20,
        };
        assert_eq!(r.dur(), Dur::from_secs(2));
        assert!((r.bandwidth() - (2 << 20) as f64).abs() < 1.0);
    }
}
