//! Trace persistence.
//!
//! Whole traces serialize to JSON (the stand-in for Recorder's binary logs
//! and the parquet conversion). Round-tripping through disk lets experiments
//! separate capture from analysis, exactly like the paper's two-phase
//! JobUtility/Analyzer pipeline.

use crate::columnar::ColumnarTrace;
use crate::tracer::Tracer;
use std::fs;
use std::io;
use std::path::Path;

/// Save a row-major trace as JSON.
pub fn save_tracer(t: &Tracer, path: &Path) -> io::Result<()> {
    fs::write(path, vani_rt::json::to_string(t))
}

/// Load a row-major trace from JSON (intern maps rebuilt).
pub fn load_tracer(path: &Path) -> io::Result<Tracer> {
    let json = fs::read_to_string(path)?;
    let mut t: Tracer = vani_rt::json::from_str(&json).map_err(io::Error::other)?;
    t.rebuild_index();
    Ok(t)
}

/// Save a columnar trace as JSON.
pub fn save_columnar(c: &ColumnarTrace, path: &Path) -> io::Result<()> {
    fs::write(path, vani_rt::json::to_string(c))
}

/// Load a columnar trace from JSON.
pub fn load_columnar(path: &Path) -> io::Result<ColumnarTrace> {
    let json = fs::read_to_string(path)?;
    vani_rt::json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Layer, OpKind};
    use sim_core::SimTime;

    #[test]
    fn tracer_round_trips_through_disk() {
        let mut t = Tracer::new();
        let f = t.file_id("/p/gpfs1/x");
        let a = t.app_id("hacc");
        t.record(3, 1, a, Layer::Posix, OpKind::Write, SimTime(5), SimTime(10), Some(f), 0, 42);
        let dir = std::env::temp_dir().join("vani_persist_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("trace.json");
        save_tracer(&t, &p).unwrap();
        let back = load_tracer(&p).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.path_of(f), "/p/gpfs1/x");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn columnar_round_trips_through_disk() {
        let mut t = Tracer::new();
        let f = t.file_id("/y");
        let a = t.app_id("a");
        t.record(0, 0, a, Layer::Stdio, OpKind::Read, SimTime(0), SimTime(9), Some(f), 4, 8);
        let c = ColumnarTrace::from_tracer(&t);
        let dir = std::env::temp_dir().join("vani_persist_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("columnar.json");
        save_columnar(&c, &p).unwrap();
        let back = load_columnar(&p).unwrap();
        assert_eq!(back.to_records(), c.to_records());
        fs::remove_file(&p).unwrap();
    }
}
