//! Trace persistence.
//!
//! Whole traces serialize to JSON (the stand-in for Recorder's binary logs
//! and the parquet conversion). Round-tripping through disk lets experiments
//! separate capture from analysis, exactly like the paper's two-phase
//! JobUtility/Analyzer pipeline.
//!
//! Columnar traces persist in a *row-group* layout built for integrity
//! salvage: line 1 is a header (format tag, record/group counts, intern
//! tables), every following line is one self-verifying row group carrying
//! its row count and a per-column checksum. A truncated or corrupted file
//! therefore loses only its damaged tail: [`load_columnar`] rejects it with
//! a typed [`TraceLoadError`], while [`load_columnar_salvaged`] recovers
//! the longest consistent prefix and reports a [`TraceCompleteness`]
//! diagnostic — the same engineering stance Recorder takes toward
//! incomplete multi-level traces.
//!
//! Two row-group versions coexist:
//!
//! * **v1** — each group stores its columns as JSON arrays, checksummed
//!   over their canonical rendering. Still loaded; no longer written.
//! * **v2** (current) — each group is a sealed [`CompressedChunk`]: the ten
//!   delta/RLE/raw-encoded column buffers hex-encoded, checksummed over the
//!   *encoded bytes*. Groups map 1:1 onto capture chunks, so a trace
//!   streams to disk and back without ever materializing whole columns.
//!
//! Both loaders dispatch on the header's `version`; salvage semantics are
//! identical (longest consistent group prefix).
//!
//! A third generation lives in [`crate::spill`]: **v3** is the binary
//! append-only segment log spill capture writes (magic `vanispill3\n`).
//! The path-taking loaders here sniff those magic bytes *before* reading
//! the file as UTF-8 and route v3 files to the spill loaders, so every
//! generation loads through the same entry points with the same
//! strict/salvage semantics.

use crate::chunk::{ChunkedTrace, CompressedChunk};
use crate::codec;
use crate::columnar::ColumnarTrace;
use crate::spill::{self, SpillError, SPILL_MAGIC};
use crate::tracer::Tracer;
use std::fs;
use std::io::{self, Read};
use std::path::Path;
use vani_rt::{Json, JsonError, ToJson};

/// Format tag in the row-group header line.
pub const ROWGROUP_FORMAT: &str = "vani-trace-rowgroups";
/// Current row-group format version (compressed chunk groups).
pub const ROWGROUP_VERSION: u64 = 2;
/// The legacy JSON-array row-group version (still loadable).
pub const ROWGROUP_VERSION_V1: u64 = 1;
/// Default rows per group: granular enough that a torn tail loses little,
/// coarse enough that per-group overhead stays negligible.
pub const GROUP_ROWS: usize = 4096;

/// The ten data columns, in their fixed on-disk order.
const COLUMNS: [&str; 10] = [
    "rank", "node", "app", "layer", "op", "start", "end", "file", "offset", "bytes",
];

/// Why a persisted trace failed to load.
#[derive(Debug)]
pub enum TraceLoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// A line was not valid JSON or decoded to the wrong shape; the cause
    /// carries the byte offset within that line.
    Malformed {
        /// Which part of the file was being parsed.
        context: String,
        /// The underlying JSON error (with byte-offset context).
        cause: JsonError,
    },
    /// The header line is valid JSON but not a trace we understand.
    Header(String),
    /// A row group's column disagrees with its promised row count.
    ColumnMismatch {
        /// Zero-based row-group index (0 for row-major tracer files).
        group: u64,
        /// Offending column name.
        column: String,
        /// Entries actually present.
        len: usize,
        /// Rows the group promised.
        rows: usize,
    },
    /// A row group's column fails its stored checksum.
    BadChecksum {
        /// Zero-based row-group index.
        group: u64,
        /// Offending column name.
        column: String,
    },
    /// A v2 row group's encoded column bytes fail to decode (bad hex or a
    /// codec-layer rejection).
    Codec {
        /// Zero-based row-group index.
        group: u64,
        /// What the codec layer objected to.
        detail: String,
    },
    /// The file ends before all promised row groups arrive.
    Truncated {
        /// Byte offset at which the data ran out.
        at_byte: usize,
        /// Records the header promised.
        expected_records: u64,
        /// Records actually present.
        loaded_records: u64,
    },
    /// A v3 spill log failed to load (see [`crate::spill::SpillError`]).
    Spill(SpillError),
}

impl std::fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLoadError::Io(e) => write!(f, "{e}"),
            TraceLoadError::Malformed { context, cause } => {
                write!(f, "malformed trace ({context}): {cause}")
            }
            TraceLoadError::Header(msg) => write!(f, "unrecognized trace header: {msg}"),
            TraceLoadError::ColumnMismatch { group, column, len, rows } => write!(
                f,
                "row group {group}: column `{column}` carries {len} values for {rows} rows"
            ),
            TraceLoadError::BadChecksum { group, column } => {
                write!(f, "row group {group}: column `{column}` fails its checksum")
            }
            TraceLoadError::Codec { group, detail } => {
                write!(f, "row group {group}: {detail}")
            }
            TraceLoadError::Truncated { at_byte, expected_records, loaded_records } => write!(
                f,
                "trace truncated at byte {at_byte}: {loaded_records} of {expected_records} records present"
            ),
            TraceLoadError::Spill(e) => write!(f, "spill log: {e}"),
        }
    }
}

impl std::error::Error for TraceLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceLoadError::Io(e) => Some(e),
            TraceLoadError::Spill(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceLoadError {
    fn from(e: io::Error) -> Self {
        TraceLoadError::Io(e)
    }
}

impl From<SpillError> for TraceLoadError {
    fn from(e: SpillError) -> Self {
        TraceLoadError::Spill(e)
    }
}

/// How much of a persisted trace survived loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCompleteness {
    /// Records the header promised.
    pub expected_records: u64,
    /// Records actually loaded.
    pub loaded_records: u64,
    /// Row groups the header promised.
    pub expected_groups: u64,
    /// Row groups that verified and loaded.
    pub loaded_groups: u64,
}

impl TraceCompleteness {
    /// Loaded fraction in [0, 1]; an empty-but-complete trace is 1.
    pub fn fraction(&self) -> f64 {
        if self.expected_records == 0 {
            1.0
        } else {
            self.loaded_records as f64 / self.expected_records as f64
        }
    }

    /// Whether every promised record loaded.
    pub fn is_complete(&self) -> bool {
        self.loaded_records == self.expected_records && self.loaded_groups == self.expected_groups
    }
}

/// FNV-1a 64-bit over a byte slice — the per-column integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn col_json<T: ToJson>(v: &[T]) -> Json {
    Json::Arr(v.iter().map(|x| x.to_json()).collect())
}

/// Save a row-major trace as JSON.
pub fn save_tracer(t: &Tracer, path: &Path) -> io::Result<()> {
    fs::write(path, vani_rt::json::to_string(t))
}

/// Load a row-major trace from JSON (intern maps rebuilt). Files whose
/// per-column lengths disagree are rejected: silent column zipping would
/// mis-attribute every field after the divergence point.
pub fn load_tracer(path: &Path) -> Result<Tracer, TraceLoadError> {
    let json = fs::read_to_string(path)?;
    let mut t: Tracer =
        vani_rt::json::from_str(&json).map_err(|cause| TraceLoadError::Malformed {
            context: "row-major trace".to_string(),
            cause,
        })?;
    if let Err((column, len, rows)) = t.columnar().validate() {
        return Err(TraceLoadError::ColumnMismatch {
            group: 0,
            column,
            len,
            rows,
        });
    }
    t.rebuild_index();
    Ok(t)
}

/// Render a columnar trace in the *legacy* v1 row-group layout (JSON-array
/// columns). Kept so the loader's backward-compatibility path stays
/// exercised by tests; new files are written by [`render_chunked`].
pub fn render_rowgroups(c: &ColumnarTrace, group_rows: usize) -> String {
    let group_rows = group_rows.max(1);
    let n = c.rank.len();
    let n_groups = n.div_ceil(group_rows);
    let mut out = Json::obj([
        ("format", Json::Str(ROWGROUP_FORMAT.to_string())),
        ("version", ROWGROUP_VERSION_V1.to_json()),
        ("records", (n as u64).to_json()),
        ("group_rows", (group_rows as u64).to_json()),
        ("groups", (n_groups as u64).to_json()),
        ("file_paths", c.file_paths.to_json()),
        ("app_names", c.app_names.to_json()),
    ])
    .render();
    out.push('\n');
    for g in 0..n_groups {
        let lo = g * group_rows;
        let hi = n.min(lo + group_rows);
        let cols: Vec<(&str, Json)> = vec![
            ("rank", col_json(&c.rank[lo..hi])),
            ("node", col_json(&c.node[lo..hi])),
            ("app", col_json(&c.app[lo..hi])),
            ("layer", col_json(&c.layer[lo..hi])),
            ("op", col_json(&c.op[lo..hi])),
            ("start", col_json(&c.start[lo..hi])),
            ("end", col_json(&c.end[lo..hi])),
            ("file", col_json(&c.file[lo..hi])),
            ("offset", col_json(&c.offset[lo..hi])),
            ("bytes", col_json(&c.bytes[lo..hi])),
        ];
        let checksums: Vec<u64> = cols
            .iter()
            .map(|(_, j)| fnv1a(j.render().as_bytes()))
            .collect();
        let line = Json::obj([
            ("rows", ((hi - lo) as u64).to_json()),
            ("checksums", checksums.to_json()),
            ("columns", Json::obj(cols.into_iter())),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Render a chunked trace in the current (v2) compressed row-group layout:
/// one line per sealed chunk, the ten encoded column buffers hex-encoded
/// and checksummed over the encoded bytes.
pub fn render_chunked(t: &ChunkedTrace) -> String {
    let mut out = Json::obj([
        ("format", Json::Str(ROWGROUP_FORMAT.to_string())),
        ("version", ROWGROUP_VERSION.to_json()),
        ("records", (t.len() as u64).to_json()),
        ("group_rows", (t.chunk_rows.max(1) as u64).to_json()),
        ("groups", (t.chunks.len() as u64).to_json()),
        ("file_paths", t.file_paths.to_json()),
        ("app_names", t.app_names.to_json()),
    ])
    .render();
    out.push('\n');
    for chunk in &t.chunks {
        let checksums: Vec<u64> = (0..COLUMNS.len()).map(|i| fnv1a(chunk.column(i))).collect();
        let cols: Vec<Json> = (0..COLUMNS.len())
            .map(|i| Json::Str(codec::to_hex(chunk.column(i))))
            .collect();
        let line = Json::obj([
            ("rows", (chunk.rows as u64).to_json()),
            ("checksums", checksums.to_json()),
            ("columns", Json::Arr(cols)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Save a columnar trace in the self-verifying row-group layout (v2:
/// sealed into [`GROUP_ROWS`]-row compressed chunks first).
pub fn save_columnar(c: &ColumnarTrace, path: &Path) -> io::Result<()> {
    fs::write(
        path,
        render_chunked(&ChunkedTrace::from_columnar(c, GROUP_ROWS)),
    )
}

/// Save an already-chunked trace verbatim (capture chunks map 1:1 onto
/// on-disk row groups — nothing is re-sealed).
pub fn save_chunked(t: &ChunkedTrace, path: &Path) -> io::Result<()> {
    fs::write(path, render_chunked(t))
}

/// One verified row group appended into the output trace, or the error
/// that stopped it.
fn load_group(j: &Json, g: u64, out: &mut ColumnarTrace) -> Result<u64, TraceLoadError> {
    let malformed = |cause: JsonError| TraceLoadError::Malformed {
        context: format!("row group {g}"),
        cause,
    };
    let rows: u64 = j.decode_field("rows").map_err(malformed)?;
    let checksums: Vec<u64> = j.decode_field("checksums").map_err(malformed)?;
    let columns = j.field("columns").map_err(malformed)?;
    if checksums.len() != COLUMNS.len() {
        return Err(TraceLoadError::Malformed {
            context: format!("row group {g}"),
            cause: JsonError::shape(format!(
                "expected {} checksums, found {}",
                COLUMNS.len(),
                checksums.len()
            )),
        });
    }
    // Verify integrity over the canonical rendering before decoding.
    for (ci, name) in COLUMNS.iter().enumerate() {
        let col = columns.field(name).map_err(malformed)?;
        if fnv1a(col.render().as_bytes()) != checksums[ci] {
            return Err(TraceLoadError::BadChecksum {
                group: g,
                column: name.to_string(),
            });
        }
    }
    let mut part = ColumnarTrace {
        rank: columns.decode_field("rank").map_err(malformed)?,
        node: columns.decode_field("node").map_err(malformed)?,
        app: columns.decode_field("app").map_err(malformed)?,
        layer: columns.decode_field("layer").map_err(malformed)?,
        op: columns.decode_field("op").map_err(malformed)?,
        start: columns.decode_field("start").map_err(malformed)?,
        end: columns.decode_field("end").map_err(malformed)?,
        file: columns.decode_field("file").map_err(malformed)?,
        offset: columns.decode_field("offset").map_err(malformed)?,
        bytes: columns.decode_field("bytes").map_err(malformed)?,
        file_paths: Vec::new(),
        app_names: Vec::new(),
    };
    for (name, len) in [
        ("rank", part.rank.len()),
        ("node", part.node.len()),
        ("app", part.app.len()),
        ("layer", part.layer.len()),
        ("op", part.op.len()),
        ("start", part.start.len()),
        ("end", part.end.len()),
        ("file", part.file.len()),
        ("offset", part.offset.len()),
        ("bytes", part.bytes.len()),
    ] {
        if len != rows as usize {
            return Err(TraceLoadError::ColumnMismatch {
                group: g,
                column: name.to_string(),
                len,
                rows: rows as usize,
            });
        }
    }
    out.rank.append(&mut part.rank);
    out.node.append(&mut part.node);
    out.app.append(&mut part.app);
    out.layer.append(&mut part.layer);
    out.op.append(&mut part.op);
    out.start.append(&mut part.start);
    out.end.append(&mut part.end);
    out.file.append(&mut part.file);
    out.offset.append(&mut part.offset);
    out.bytes.append(&mut part.bytes);
    Ok(rows)
}

/// Parsed row-group header line.
struct RgHeader {
    version: u64,
    expected_records: u64,
    expected_groups: u64,
    group_rows: u64,
    file_paths: Vec<String>,
    app_names: Vec<String>,
}

fn parse_header(header_line: &str) -> Result<RgHeader, TraceLoadError> {
    let malformed = |cause: JsonError| TraceLoadError::Malformed {
        context: "header".to_string(),
        cause,
    };
    let header = Json::parse(header_line.trim_end()).map_err(malformed)?;
    let format: String = header.decode_field("format").map_err(malformed)?;
    if format != ROWGROUP_FORMAT {
        return Err(TraceLoadError::Header(format!("format `{format}`")));
    }
    let version: u64 = header.decode_field("version").map_err(malformed)?;
    if version != ROWGROUP_VERSION_V1 && version != ROWGROUP_VERSION {
        return Err(TraceLoadError::Header(format!("version {version}")));
    }
    Ok(RgHeader {
        version,
        expected_records: header.decode_field("records").map_err(malformed)?,
        expected_groups: header.decode_field("groups").map_err(malformed)?,
        group_rows: header.decode_field("group_rows").map_err(malformed)?,
        file_paths: header.decode_field("file_paths").map_err(malformed)?,
        app_names: header.decode_field("app_names").map_err(malformed)?,
    })
}

/// One verified v2 row group: hex-decode the ten encoded column buffers,
/// check their checksums, and rebuild the [`CompressedChunk`] (which
/// re-validates by decoding).
fn load_group_v2(j: &Json, g: u64) -> Result<CompressedChunk, TraceLoadError> {
    let malformed = |cause: JsonError| TraceLoadError::Malformed {
        context: format!("row group {g}"),
        cause,
    };
    let rows: u64 = j.decode_field("rows").map_err(malformed)?;
    let checksums: Vec<u64> = j.decode_field("checksums").map_err(malformed)?;
    let cols_hex: Vec<String> = j.decode_field("columns").map_err(malformed)?;
    if checksums.len() != COLUMNS.len() || cols_hex.len() != COLUMNS.len() {
        return Err(malformed(JsonError::shape(format!(
            "expected {} checksums and columns, found {} and {}",
            COLUMNS.len(),
            checksums.len(),
            cols_hex.len()
        ))));
    }
    let mut cols: [Vec<u8>; 10] = Default::default();
    for (ci, hex) in cols_hex.iter().enumerate() {
        let bytes = codec::from_hex(hex).ok_or_else(|| TraceLoadError::Codec {
            group: g,
            detail: format!("column `{}` is not valid hex", COLUMNS[ci]),
        })?;
        if fnv1a(&bytes) != checksums[ci] {
            return Err(TraceLoadError::BadChecksum {
                group: g,
                column: COLUMNS[ci].to_string(),
            });
        }
        cols[ci] = bytes;
    }
    CompressedChunk::from_encoded(cols, rows as usize).map_err(|e| TraceLoadError::Codec {
        group: g,
        detail: e.to_string(),
    })
}

/// Drive the per-group loop shared by every loader: fetch each promised
/// line, hand it to `consume`, and keep the completeness tally. With
/// `salvage`, the first bad group stops consumption; otherwise it is
/// an error.
fn parse_groups<'a>(
    mut lines: std::str::SplitInclusive<'a, char>,
    mut offset: usize,
    h: &RgHeader,
    salvage: bool,
    mut consume: impl FnMut(&Json, u64) -> Result<u64, TraceLoadError>,
) -> Result<TraceCompleteness, TraceLoadError> {
    let mut loaded_groups = 0u64;
    let mut loaded_records = 0u64;
    for g in 0..h.expected_groups {
        let line = match lines.next() {
            Some(l) if !l.trim_end().is_empty() => l,
            _ => {
                let err = TraceLoadError::Truncated {
                    at_byte: offset,
                    expected_records: h.expected_records,
                    loaded_records,
                };
                if salvage {
                    break;
                }
                return Err(err);
            }
        };
        let parsed = Json::parse(line.trim_end())
            .map_err(|cause| TraceLoadError::Malformed {
                context: format!("row group {g}"),
                cause,
            })
            .and_then(|j| consume(&j, g));
        match parsed {
            Ok(rows) => {
                loaded_groups += 1;
                loaded_records += rows;
                offset += line.len();
            }
            Err(e) => {
                if salvage {
                    break;
                }
                return Err(e);
            }
        }
    }
    if !salvage && loaded_records != h.expected_records {
        return Err(TraceLoadError::Truncated {
            at_byte: offset,
            expected_records: h.expected_records,
            loaded_records,
        });
    }
    Ok(TraceCompleteness {
        expected_records: h.expected_records,
        loaded_records,
        expected_groups: h.expected_groups,
        loaded_groups,
    })
}

/// Parse a row-group file into a materialized columnar trace, dispatching
/// on the header's version. Header problems are always fatal; with
/// `salvage`, the first bad row group stops consumption and the verified
/// prefix is returned, otherwise any bad group is an error.
fn parse_rowgroups(
    text: &str,
    salvage: bool,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    let mut lines = text.split_inclusive('\n');
    let header_line = lines.next().unwrap_or("");
    let h = parse_header(header_line)?;
    let mut out = ColumnarTrace::with_capacity(h.expected_records as usize);
    out.file_paths = h.file_paths.clone();
    out.app_names = h.app_names.clone();

    let completeness = {
        let out = &mut out;
        parse_groups(lines, header_line.len(), &h, salvage, move |j, g| {
            if h.version == ROWGROUP_VERSION_V1 {
                load_group(j, g, out)
            } else {
                let chunk = load_group_v2(j, g)?;
                // Decode into a staging trace first: a failure must not
                // leave `out` with ragged columns.
                let mut part = ColumnarTrace::default();
                chunk
                    .decode_into(&mut part, true)
                    .map_err(|e| TraceLoadError::Codec {
                        group: g,
                        detail: e.to_string(),
                    })?;
                out.rank.append(&mut part.rank);
                out.node.append(&mut part.node);
                out.app.append(&mut part.app);
                out.layer.append(&mut part.layer);
                out.op.append(&mut part.op);
                out.start.append(&mut part.start);
                out.end.append(&mut part.end);
                out.file.append(&mut part.file);
                out.offset.append(&mut part.offset);
                out.bytes.append(&mut part.bytes);
                Ok(chunk.rows as u64)
            }
        })?
    };
    Ok((out, completeness))
}

/// Parse a row-group file into a [`ChunkedTrace`] *without* materializing
/// whole columns — the streaming analyzer's loader. v2 groups become
/// chunks verbatim; v1 files load through the legacy path and are
/// re-sealed at their on-disk group size.
fn parse_chunked(
    text: &str,
    salvage: bool,
) -> Result<(ChunkedTrace, TraceCompleteness), TraceLoadError> {
    let mut lines = text.split_inclusive('\n');
    let header_line = lines.next().unwrap_or("");
    let h = parse_header(header_line)?;
    if h.version == ROWGROUP_VERSION_V1 {
        let (c, completeness) = parse_rowgroups(text, salvage)?;
        let t = ChunkedTrace::from_columnar(&c, (h.group_rows as usize).max(1));
        return Ok((t, completeness));
    }
    let mut chunks = Vec::with_capacity(h.expected_groups as usize);
    let completeness = {
        let chunks = &mut chunks;
        parse_groups(lines, header_line.len(), &h, salvage, move |j, g| {
            let chunk = load_group_v2(j, g)?;
            let rows = chunk.rows as u64;
            chunks.push(chunk);
            Ok(rows)
        })?
    };
    Ok((
        ChunkedTrace {
            chunk_rows: (h.group_rows as usize).max(1),
            chunks,
            file_paths: h.file_paths,
            app_names: h.app_names,
        },
        completeness,
    ))
}

/// Whether `path` starts with the v3 spill magic. Binary spill logs are
/// not valid UTF-8, so this must run *before* any `read_to_string`.
fn sniff_spill(path: &Path) -> io::Result<bool> {
    let mut head = [0u8; 11];
    let mut file = fs::File::open(path)?;
    let mut got = 0usize;
    while got < head.len() {
        match file.read(&mut head[got..])? {
            0 => return Ok(false),
            n => got += n,
        }
    }
    Ok(&head == SPILL_MAGIC)
}

/// Decode a chunked trace's committed chunks into whole columns (the v3
/// materializing path; chunks were deep-verified at load).
fn materialize(t: ChunkedTrace) -> Result<ColumnarTrace, TraceLoadError> {
    t.to_columnar().map_err(|e| TraceLoadError::Codec {
        group: 0,
        detail: e.to_string(),
    })
}

/// Load a chunked trace, requiring every row group to verify.
pub fn load_chunked(path: &Path) -> Result<ChunkedTrace, TraceLoadError> {
    if sniff_spill(path)? {
        return Ok(spill::load_spill(path)?);
    }
    let text = fs::read_to_string(path)?;
    parse_chunked(&text, false).map(|(t, _)| t)
}

/// Load as much of a chunked trace as verifies — the streaming analyzer's
/// salvage entry: the longest consistent prefix of compressed row groups,
/// without ever materializing whole columns.
pub fn load_chunked_salvaged(
    path: &Path,
) -> Result<(ChunkedTrace, TraceCompleteness), TraceLoadError> {
    if sniff_spill(path)? {
        return Ok(spill::load_spill_salvaged(path)?);
    }
    let text = fs::read_to_string(path)?;
    parse_chunked(&text, true)
}

/// Load a columnar trace, requiring every row group to verify. Truncated,
/// corrupt, length-mismatched, or checksum-failing files are rejected with
/// the precise reason; use [`load_columnar_salvaged`] to recover a prefix
/// instead.
pub fn load_columnar(path: &Path) -> Result<ColumnarTrace, TraceLoadError> {
    if sniff_spill(path)? {
        return materialize(spill::load_spill(path)?);
    }
    let text = fs::read_to_string(path)?;
    parse_rowgroups(&text, false).map(|(c, _)| c)
}

/// Load as much of a columnar trace as verifies: the longest consistent
/// row-group prefix, plus a completeness diagnostic the analyzer threads
/// through to the entity YAML. Only an unreadable or headerless file is an
/// error — a damaged tail is data loss, not failure.
pub fn load_columnar_salvaged(
    path: &Path,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    if sniff_spill(path)? {
        let (t, comp) = spill::load_spill_salvaged(path)?;
        return Ok((materialize(t)?, comp));
    }
    let text = fs::read_to_string(path)?;
    parse_rowgroups(&text, true)
}

/// [`load_columnar_salvaged`] over already-read text — for captures that
/// arrive through something other than a file (a stream, a test vector).
pub fn parse_rowgroups_salvaged(
    text: &str,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    parse_rowgroups(text, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Layer, OpKind};
    use sim_core::SimTime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vani_persist_test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(n: u32) -> ColumnarTrace {
        let mut t = Tracer::new();
        let f = t.file_id("/y");
        let a = t.app_id("a");
        for i in 0..n {
            t.record(
                i % 4,
                i % 2,
                a,
                Layer::Stdio,
                OpKind::Read,
                SimTime(i as u64),
                SimTime(i as u64 + 9),
                Some(f),
                4,
                8 + i as u64,
            );
        }
        ColumnarTrace::from_tracer(&t)
    }

    #[test]
    fn tracer_round_trips_through_disk() {
        let mut t = Tracer::new();
        let f = t.file_id("/p/gpfs1/x");
        let a = t.app_id("hacc");
        t.record(
            3,
            1,
            a,
            Layer::Posix,
            OpKind::Write,
            SimTime(5),
            SimTime(10),
            Some(f),
            0,
            42,
        );
        let p = tmp("trace.json");
        save_tracer(&t, &p).unwrap();
        let back = load_tracer(&p).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.path_of(f), "/p/gpfs1/x");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn columnar_round_trips_through_disk() {
        let c = sample(1);
        let p = tmp("columnar.json");
        save_columnar(&c, &p).unwrap();
        let back = load_columnar(&p).unwrap();
        assert_eq!(back.to_records(), c.to_records());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn multi_group_files_round_trip() {
        let c = sample(25);
        let p = tmp("multigroup.json");
        fs::write(&p, render_rowgroups(&c, 4)).unwrap();
        let back = load_columnar(&p).unwrap();
        assert_eq!(back, c);
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(salvaged, c);
        assert!(comp.is_complete());
        assert_eq!(comp.fraction(), 1.0);
        assert_eq!(comp.expected_groups, 7);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncation_mid_record_is_rejected_and_salvaged() {
        let c = sample(25);
        let text = render_rowgroups(&c, 4);
        // Cut inside the penultimate group line.
        let cut = text.len() - text.lines().last().unwrap().len() - 10;
        let p = tmp("truncated.json");
        fs::write(&p, &text[..cut]).unwrap();
        let err = load_columnar(&p).expect_err("truncated file must be rejected");
        assert!(
            matches!(
                err,
                TraceLoadError::Malformed { .. } | TraceLoadError::Truncated { .. }
            ),
            "unexpected error: {err}"
        );
        assert!(
            err.to_string().contains("byte"),
            "error carries byte context: {err}"
        );
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert!(!comp.is_complete());
        assert_eq!(comp.expected_records, 25);
        assert_eq!(comp.loaded_records, salvaged.rank.len() as u64);
        assert!(comp.loaded_records >= 16, "all intact groups salvage");
        assert!(comp.fraction() < 1.0);
        // The salvaged prefix is exactly the original's first records.
        let want = c.to_records();
        assert_eq!(salvaged.to_records(), want[..salvaged.rank.len()].to_vec());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn mismatched_column_lengths_are_rejected() {
        let c = sample(6);
        let text = render_rowgroups(&c, 8);
        // Rebuild the single group with a shortened `node` column whose
        // checksum is *valid* for the short data: only the length check can
        // catch the disagreement (this is the silent-zip regression).
        let mut lines: Vec<&str> = text.lines().collect();
        let group = Json::parse(lines[1]).unwrap();
        let rows: u64 = group.decode_field("rows").unwrap();
        let mut checksums: Vec<u64> = group.decode_field("checksums").unwrap();
        let mut node: Vec<u32> = group
            .field("columns")
            .unwrap()
            .decode_field("node")
            .unwrap();
        node.pop();
        checksums[1] = fnv1a(col_json(&node).render().as_bytes());
        let columns = group.field("columns").unwrap();
        let rebuilt = Json::obj([
            ("rows", rows.to_json()),
            ("checksums", checksums.to_json()),
            (
                "columns",
                Json::obj(COLUMNS.iter().map(|&name| {
                    if name == "node" {
                        (name, col_json(&node))
                    } else {
                        (name, columns.field(name).unwrap().clone())
                    }
                })),
            ),
        ])
        .render();
        lines[1] = &rebuilt;
        let p = tmp("mismatched.json");
        fs::write(&p, lines.join("\n")).unwrap();
        let err = load_columnar(&p).expect_err("mismatched columns must be rejected");
        match err {
            TraceLoadError::ColumnMismatch {
                column, len, rows, ..
            } => {
                assert_eq!(column, "node");
                assert_eq!(len, 5);
                assert_eq!(rows, 6);
            }
            other => panic!("expected ColumnMismatch, got: {other}"),
        }
        // Salvage drops the bad group but keeps the file loadable.
        let (_, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(comp.loaded_groups, 0);
        assert!(!comp.is_complete());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn bad_checksum_is_rejected_and_salvage_stops_there() {
        let c = sample(25);
        let text = render_rowgroups(&c, 4);
        // Corrupt one byte inside the *last* group's column data without
        // breaking JSON: flip a digit in the bytes column payload.
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len() - 1;
        let corrupted = lines[last].replacen("\"bytes\":[", "\"bytes\":[9", 1);
        let mut doctored: Vec<&str> = lines[..last].to_vec();
        doctored.push(&corrupted);
        let p = tmp("badsum.json");
        fs::write(&p, doctored.join("\n")).unwrap();
        let err = load_columnar(&p).expect_err("corrupt payload must be rejected");
        assert!(
            matches!(
                err,
                TraceLoadError::BadChecksum { .. } | TraceLoadError::ColumnMismatch { .. }
            ),
            "unexpected error: {err}"
        );
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(
            comp.loaded_groups, 6,
            "all groups before the corrupt one salvage"
        );
        assert_eq!(comp.loaded_records, 24);
        assert_eq!(salvaged.rank.len(), 24);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn v2_round_trips_and_preserves_chunk_boundaries() {
        let c = sample(25);
        let t = ChunkedTrace::from_columnar(&c, 4);
        let p = tmp("v2roundtrip.json");
        save_chunked(&t, &p).unwrap();
        let back = load_chunked(&p).unwrap();
        assert_eq!(back.chunk_rows, 4);
        assert_eq!(
            back.chunks.len(),
            7,
            "chunk boundaries survive the disk trip"
        );
        assert_eq!(back, t);
        // The materializing loader agrees with the original columns.
        assert_eq!(load_columnar(&p).unwrap(), c);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn v2_corruption_is_rejected_and_salvages_the_prefix() {
        let c = sample(25);
        let text = render_chunked(&ChunkedTrace::from_columnar(&c, 4));
        // Flip one hex digit inside the last group's encoded payload
        // without breaking JSON: the checksum must catch it.
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len() - 1;
        let pos = lines[last].rfind('"').unwrap() - 2;
        let mut doctored_last = lines[last].to_string();
        let old = doctored_last.as_bytes()[pos];
        let new = if old == b'0' { b'1' } else { b'0' };
        doctored_last.replace_range(pos..pos + 1, std::str::from_utf8(&[new]).unwrap());
        let mut doctored: Vec<&str> = lines[..last].to_vec();
        doctored.push(&doctored_last);
        let p = tmp("v2badsum.json");
        fs::write(&p, doctored.join("\n")).unwrap();
        let err = load_columnar(&p).expect_err("corrupt v2 payload must be rejected");
        assert!(
            matches!(
                err,
                TraceLoadError::BadChecksum { .. } | TraceLoadError::Codec { .. }
            ),
            "unexpected error: {err}"
        );
        // Both salvage entries recover exactly the intact prefix groups.
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(comp.loaded_groups, 6);
        assert_eq!(comp.loaded_records, 24);
        assert_eq!(salvaged.to_records(), c.to_records()[..24].to_vec());
        let (chunked, comp2) = load_chunked_salvaged(&p).unwrap();
        assert_eq!(comp2, comp);
        assert_eq!(chunked.chunks.len(), 6);
        assert_eq!(
            chunked.to_columnar().unwrap().to_records(),
            c.to_records()[..24].to_vec()
        );
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn v1_files_still_load_and_stream() {
        // A legacy v1 file (JSON-array groups) loads through both the
        // materializing and the chunked loader.
        let c = sample(25);
        let p = tmp("v1legacy.json");
        fs::write(&p, render_rowgroups(&c, 4)).unwrap();
        assert_eq!(load_columnar(&p).unwrap(), c);
        let (t, comp) = load_chunked_salvaged(&p).unwrap();
        assert!(comp.is_complete());
        assert_eq!(t.chunk_rows, 4);
        assert_eq!(t.to_columnar().unwrap().to_records(), c.to_records());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn v3_spill_logs_load_through_every_entry_point() {
        use crate::spill::{spill_columnar, SpillFaultPlan};
        let c = sample(25);
        let p = tmp("v3.vsp3");
        spill_columnar(&c, 4, &p, SpillFaultPlan::none()).unwrap();
        // The chunked loader routes on the magic bytes; a binary log would
        // otherwise fail `read_to_string` with an Io error.
        let t = load_chunked(&p).unwrap();
        assert_eq!(t.chunk_rows, 4);
        assert_eq!(t.chunks.len(), 7);
        assert_eq!(load_columnar(&p).unwrap(), c);
        let (ts, comp) = load_chunked_salvaged(&p).unwrap();
        assert!(comp.is_complete());
        assert_eq!(ts, t);
        let (cs, comp2) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(comp2, comp);
        assert_eq!(cs, c);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn tracer_loads_reject_mismatched_columns() {
        let mut t = Tracer::new();
        let f = t.file_id("/z");
        let a = t.app_id("w");
        for i in 0..4 {
            t.record(
                i,
                0,
                a,
                Layer::Posix,
                OpKind::Write,
                SimTime(0),
                SimTime(1),
                Some(f),
                0,
                1,
            );
        }
        let p = tmp("zip.trace.json");
        save_tracer(&t, &p).unwrap();
        // Drop one entry from the node column only: still perfectly valid
        // JSON, but the columns no longer agree.
        let text = fs::read_to_string(&p).unwrap();
        let doctored = text.replacen("\"node\":[0,0,0,0]", "\"node\":[0,0,0]", 1);
        assert_ne!(
            text, doctored,
            "fixture must actually change the node column"
        );
        fs::write(&p, doctored).unwrap();
        let err = load_tracer(&p).expect_err("zipped columns must be rejected");
        match err {
            TraceLoadError::ColumnMismatch {
                column, len, rows, ..
            } => {
                assert_eq!(column, "node");
                assert_eq!(len, 3);
                assert_eq!(rows, 4);
            }
            other => panic!("expected ColumnMismatch, got: {other}"),
        }
        fs::remove_file(&p).unwrap();
    }
}
