//! Trace persistence.
//!
//! Whole traces serialize to JSON (the stand-in for Recorder's binary logs
//! and the parquet conversion). Round-tripping through disk lets experiments
//! separate capture from analysis, exactly like the paper's two-phase
//! JobUtility/Analyzer pipeline.
//!
//! Columnar traces persist in a *row-group* layout built for integrity
//! salvage: line 1 is a header (format tag, record/group counts, intern
//! tables), every following line is one self-verifying row group carrying
//! its row count and a per-column checksum. A truncated or corrupted file
//! therefore loses only its damaged tail: [`load_columnar`] rejects it with
//! a typed [`TraceLoadError`], while [`load_columnar_salvaged`] recovers
//! the longest consistent prefix and reports a [`TraceCompleteness`]
//! diagnostic — the same engineering stance Recorder takes toward
//! incomplete multi-level traces.

use crate::columnar::ColumnarTrace;
use crate::tracer::Tracer;
use std::fs;
use std::io;
use std::path::Path;
use vani_rt::{Json, JsonError, ToJson};

/// Format tag in the row-group header line.
pub const ROWGROUP_FORMAT: &str = "vani-trace-rowgroups";
/// Current row-group format version.
pub const ROWGROUP_VERSION: u64 = 1;
/// Default rows per group: granular enough that a torn tail loses little,
/// coarse enough that per-group overhead stays negligible.
pub const GROUP_ROWS: usize = 4096;

/// The ten data columns, in their fixed on-disk order.
const COLUMNS: [&str; 10] = [
    "rank", "node", "app", "layer", "op", "start", "end", "file", "offset", "bytes",
];

/// Why a persisted trace failed to load.
#[derive(Debug)]
pub enum TraceLoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// A line was not valid JSON or decoded to the wrong shape; the cause
    /// carries the byte offset within that line.
    Malformed {
        /// Which part of the file was being parsed.
        context: String,
        /// The underlying JSON error (with byte-offset context).
        cause: JsonError,
    },
    /// The header line is valid JSON but not a trace we understand.
    Header(String),
    /// A row group's column disagrees with its promised row count.
    ColumnMismatch {
        /// Zero-based row-group index (0 for row-major tracer files).
        group: u64,
        /// Offending column name.
        column: String,
        /// Entries actually present.
        len: usize,
        /// Rows the group promised.
        rows: usize,
    },
    /// A row group's column fails its stored checksum.
    BadChecksum {
        /// Zero-based row-group index.
        group: u64,
        /// Offending column name.
        column: String,
    },
    /// The file ends before all promised row groups arrive.
    Truncated {
        /// Byte offset at which the data ran out.
        at_byte: usize,
        /// Records the header promised.
        expected_records: u64,
        /// Records actually present.
        loaded_records: u64,
    },
}

impl std::fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLoadError::Io(e) => write!(f, "{e}"),
            TraceLoadError::Malformed { context, cause } => {
                write!(f, "malformed trace ({context}): {cause}")
            }
            TraceLoadError::Header(msg) => write!(f, "unrecognized trace header: {msg}"),
            TraceLoadError::ColumnMismatch { group, column, len, rows } => write!(
                f,
                "row group {group}: column `{column}` carries {len} values for {rows} rows"
            ),
            TraceLoadError::BadChecksum { group, column } => {
                write!(f, "row group {group}: column `{column}` fails its checksum")
            }
            TraceLoadError::Truncated { at_byte, expected_records, loaded_records } => write!(
                f,
                "trace truncated at byte {at_byte}: {loaded_records} of {expected_records} records present"
            ),
        }
    }
}

impl std::error::Error for TraceLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceLoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceLoadError {
    fn from(e: io::Error) -> Self {
        TraceLoadError::Io(e)
    }
}

/// How much of a persisted trace survived loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCompleteness {
    /// Records the header promised.
    pub expected_records: u64,
    /// Records actually loaded.
    pub loaded_records: u64,
    /// Row groups the header promised.
    pub expected_groups: u64,
    /// Row groups that verified and loaded.
    pub loaded_groups: u64,
}

impl TraceCompleteness {
    /// Loaded fraction in [0, 1]; an empty-but-complete trace is 1.
    pub fn fraction(&self) -> f64 {
        if self.expected_records == 0 {
            1.0
        } else {
            self.loaded_records as f64 / self.expected_records as f64
        }
    }

    /// Whether every promised record loaded.
    pub fn is_complete(&self) -> bool {
        self.loaded_records == self.expected_records && self.loaded_groups == self.expected_groups
    }
}

/// FNV-1a 64-bit over a byte slice — the per-column integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn col_json<T: ToJson>(v: &[T]) -> Json {
    Json::Arr(v.iter().map(|x| x.to_json()).collect())
}

/// Save a row-major trace as JSON.
pub fn save_tracer(t: &Tracer, path: &Path) -> io::Result<()> {
    fs::write(path, vani_rt::json::to_string(t))
}

/// Load a row-major trace from JSON (intern maps rebuilt). Files whose
/// per-column lengths disagree are rejected: silent column zipping would
/// mis-attribute every field after the divergence point.
pub fn load_tracer(path: &Path) -> Result<Tracer, TraceLoadError> {
    let json = fs::read_to_string(path)?;
    let mut t: Tracer = vani_rt::json::from_str(&json).map_err(|cause| TraceLoadError::Malformed {
        context: "row-major trace".to_string(),
        cause,
    })?;
    if let Err((column, len, rows)) = t.columnar().validate() {
        return Err(TraceLoadError::ColumnMismatch { group: 0, column, len, rows });
    }
    t.rebuild_index();
    Ok(t)
}

/// Render a columnar trace in the row-group layout with an explicit group
/// size (exposed so tests can exercise multi-group files cheaply).
pub fn render_rowgroups(c: &ColumnarTrace, group_rows: usize) -> String {
    let group_rows = group_rows.max(1);
    let n = c.rank.len();
    let n_groups = n.div_ceil(group_rows);
    let mut out = Json::obj([
        ("format", Json::Str(ROWGROUP_FORMAT.to_string())),
        ("version", ROWGROUP_VERSION.to_json()),
        ("records", (n as u64).to_json()),
        ("group_rows", (group_rows as u64).to_json()),
        ("groups", (n_groups as u64).to_json()),
        ("file_paths", c.file_paths.to_json()),
        ("app_names", c.app_names.to_json()),
    ])
    .render();
    out.push('\n');
    for g in 0..n_groups {
        let lo = g * group_rows;
        let hi = n.min(lo + group_rows);
        let cols: Vec<(&str, Json)> = vec![
            ("rank", col_json(&c.rank[lo..hi])),
            ("node", col_json(&c.node[lo..hi])),
            ("app", col_json(&c.app[lo..hi])),
            ("layer", col_json(&c.layer[lo..hi])),
            ("op", col_json(&c.op[lo..hi])),
            ("start", col_json(&c.start[lo..hi])),
            ("end", col_json(&c.end[lo..hi])),
            ("file", col_json(&c.file[lo..hi])),
            ("offset", col_json(&c.offset[lo..hi])),
            ("bytes", col_json(&c.bytes[lo..hi])),
        ];
        let checksums: Vec<u64> = cols.iter().map(|(_, j)| fnv1a(j.render().as_bytes())).collect();
        let line = Json::obj([
            ("rows", ((hi - lo) as u64).to_json()),
            ("checksums", checksums.to_json()),
            ("columns", Json::obj(cols.into_iter())),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

/// Save a columnar trace in the self-verifying row-group layout.
pub fn save_columnar(c: &ColumnarTrace, path: &Path) -> io::Result<()> {
    fs::write(path, render_rowgroups(c, GROUP_ROWS))
}

/// One verified row group appended into the output trace, or the error
/// that stopped it.
fn load_group(j: &Json, g: u64, out: &mut ColumnarTrace) -> Result<u64, TraceLoadError> {
    let malformed = |cause: JsonError| TraceLoadError::Malformed {
        context: format!("row group {g}"),
        cause,
    };
    let rows: u64 = j.decode_field("rows").map_err(malformed)?;
    let checksums: Vec<u64> = j.decode_field("checksums").map_err(malformed)?;
    let columns = j.field("columns").map_err(malformed)?;
    if checksums.len() != COLUMNS.len() {
        return Err(TraceLoadError::Malformed {
            context: format!("row group {g}"),
            cause: JsonError::shape(format!(
                "expected {} checksums, found {}",
                COLUMNS.len(),
                checksums.len()
            )),
        });
    }
    // Verify integrity over the canonical rendering before decoding.
    for (ci, name) in COLUMNS.iter().enumerate() {
        let col = columns.field(name).map_err(malformed)?;
        if fnv1a(col.render().as_bytes()) != checksums[ci] {
            return Err(TraceLoadError::BadChecksum { group: g, column: name.to_string() });
        }
    }
    let mut part = ColumnarTrace {
        rank: columns.decode_field("rank").map_err(malformed)?,
        node: columns.decode_field("node").map_err(malformed)?,
        app: columns.decode_field("app").map_err(malformed)?,
        layer: columns.decode_field("layer").map_err(malformed)?,
        op: columns.decode_field("op").map_err(malformed)?,
        start: columns.decode_field("start").map_err(malformed)?,
        end: columns.decode_field("end").map_err(malformed)?,
        file: columns.decode_field("file").map_err(malformed)?,
        offset: columns.decode_field("offset").map_err(malformed)?,
        bytes: columns.decode_field("bytes").map_err(malformed)?,
        file_paths: Vec::new(),
        app_names: Vec::new(),
    };
    for (name, len) in [
        ("rank", part.rank.len()),
        ("node", part.node.len()),
        ("app", part.app.len()),
        ("layer", part.layer.len()),
        ("op", part.op.len()),
        ("start", part.start.len()),
        ("end", part.end.len()),
        ("file", part.file.len()),
        ("offset", part.offset.len()),
        ("bytes", part.bytes.len()),
    ] {
        if len != rows as usize {
            return Err(TraceLoadError::ColumnMismatch {
                group: g,
                column: name.to_string(),
                len,
                rows: rows as usize,
            });
        }
    }
    out.rank.append(&mut part.rank);
    out.node.append(&mut part.node);
    out.app.append(&mut part.app);
    out.layer.append(&mut part.layer);
    out.op.append(&mut part.op);
    out.start.append(&mut part.start);
    out.end.append(&mut part.end);
    out.file.append(&mut part.file);
    out.offset.append(&mut part.offset);
    out.bytes.append(&mut part.bytes);
    Ok(rows)
}

/// Parse a row-group file. Header problems are always fatal; with
/// `salvage`, the first bad row group stops consumption and the verified
/// prefix is returned, otherwise any bad group is an error.
fn parse_rowgroups(
    text: &str,
    salvage: bool,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n');
    let header_line = lines.next().unwrap_or("");
    let header = Json::parse(header_line.trim_end()).map_err(|cause| TraceLoadError::Malformed {
        context: "header".to_string(),
        cause,
    })?;
    let format: String = header.decode_field("format").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    if format != ROWGROUP_FORMAT {
        return Err(TraceLoadError::Header(format!("format `{format}`")));
    }
    let version: u64 = header.decode_field("version").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    if version != ROWGROUP_VERSION {
        return Err(TraceLoadError::Header(format!("version {version}")));
    }
    let expected_records: u64 = header.decode_field("records").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    let expected_groups: u64 = header.decode_field("groups").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    let mut out = ColumnarTrace::with_capacity(expected_records as usize);
    out.file_paths = header.decode_field("file_paths").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    out.app_names = header.decode_field("app_names").map_err(|cause| {
        TraceLoadError::Malformed { context: "header".to_string(), cause }
    })?;
    offset += header_line.len();

    let mut loaded_groups = 0u64;
    let mut loaded_records = 0u64;
    for g in 0..expected_groups {
        let line = match lines.next() {
            Some(l) if !l.trim_end().is_empty() => l,
            _ => {
                let err = TraceLoadError::Truncated {
                    at_byte: offset,
                    expected_records,
                    loaded_records,
                };
                if salvage {
                    break;
                }
                return Err(err);
            }
        };
        let parsed = Json::parse(line.trim_end())
            .map_err(|cause| TraceLoadError::Malformed {
                context: format!("row group {g}"),
                cause,
            })
            .and_then(|j| load_group(&j, g, &mut out));
        match parsed {
            Ok(rows) => {
                loaded_groups += 1;
                loaded_records += rows;
                offset += line.len();
            }
            Err(e) => {
                if salvage {
                    break;
                }
                return Err(e);
            }
        }
    }
    if !salvage && loaded_records != expected_records {
        return Err(TraceLoadError::Truncated {
            at_byte: offset,
            expected_records,
            loaded_records,
        });
    }
    Ok((
        out,
        TraceCompleteness {
            expected_records,
            loaded_records,
            expected_groups,
            loaded_groups,
        },
    ))
}

/// Load a columnar trace, requiring every row group to verify. Truncated,
/// corrupt, length-mismatched, or checksum-failing files are rejected with
/// the precise reason; use [`load_columnar_salvaged`] to recover a prefix
/// instead.
pub fn load_columnar(path: &Path) -> Result<ColumnarTrace, TraceLoadError> {
    let text = fs::read_to_string(path)?;
    parse_rowgroups(&text, false).map(|(c, _)| c)
}

/// Load as much of a columnar trace as verifies: the longest consistent
/// row-group prefix, plus a completeness diagnostic the analyzer threads
/// through to the entity YAML. Only an unreadable or headerless file is an
/// error — a damaged tail is data loss, not failure.
pub fn load_columnar_salvaged(
    path: &Path,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    let text = fs::read_to_string(path)?;
    parse_rowgroups(&text, true)
}

/// [`load_columnar_salvaged`] over already-read text — for captures that
/// arrive through something other than a file (a stream, a test vector).
pub fn parse_rowgroups_salvaged(
    text: &str,
) -> Result<(ColumnarTrace, TraceCompleteness), TraceLoadError> {
    parse_rowgroups(text, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Layer, OpKind};
    use sim_core::SimTime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vani_persist_test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(n: u32) -> ColumnarTrace {
        let mut t = Tracer::new();
        let f = t.file_id("/y");
        let a = t.app_id("a");
        for i in 0..n {
            t.record(
                i % 4,
                i % 2,
                a,
                Layer::Stdio,
                OpKind::Read,
                SimTime(i as u64),
                SimTime(i as u64 + 9),
                Some(f),
                4,
                8 + i as u64,
            );
        }
        ColumnarTrace::from_tracer(&t)
    }

    #[test]
    fn tracer_round_trips_through_disk() {
        let mut t = Tracer::new();
        let f = t.file_id("/p/gpfs1/x");
        let a = t.app_id("hacc");
        t.record(3, 1, a, Layer::Posix, OpKind::Write, SimTime(5), SimTime(10), Some(f), 0, 42);
        let p = tmp("trace.json");
        save_tracer(&t, &p).unwrap();
        let back = load_tracer(&p).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.path_of(f), "/p/gpfs1/x");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn columnar_round_trips_through_disk() {
        let c = sample(1);
        let p = tmp("columnar.json");
        save_columnar(&c, &p).unwrap();
        let back = load_columnar(&p).unwrap();
        assert_eq!(back.to_records(), c.to_records());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn multi_group_files_round_trip() {
        let c = sample(25);
        let p = tmp("multigroup.json");
        fs::write(&p, render_rowgroups(&c, 4)).unwrap();
        let back = load_columnar(&p).unwrap();
        assert_eq!(back, c);
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(salvaged, c);
        assert!(comp.is_complete());
        assert_eq!(comp.fraction(), 1.0);
        assert_eq!(comp.expected_groups, 7);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncation_mid_record_is_rejected_and_salvaged() {
        let c = sample(25);
        let text = render_rowgroups(&c, 4);
        // Cut inside the penultimate group line.
        let cut = text.len() - text.lines().last().unwrap().len() - 10;
        let p = tmp("truncated.json");
        fs::write(&p, &text[..cut]).unwrap();
        let err = load_columnar(&p).expect_err("truncated file must be rejected");
        assert!(
            matches!(err, TraceLoadError::Malformed { .. } | TraceLoadError::Truncated { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("byte"), "error carries byte context: {err}");
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert!(!comp.is_complete());
        assert_eq!(comp.expected_records, 25);
        assert_eq!(comp.loaded_records, salvaged.rank.len() as u64);
        assert!(comp.loaded_records >= 16, "all intact groups salvage");
        assert!(comp.fraction() < 1.0);
        // The salvaged prefix is exactly the original's first records.
        let want = c.to_records();
        assert_eq!(salvaged.to_records(), want[..salvaged.rank.len()].to_vec());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn mismatched_column_lengths_are_rejected() {
        let c = sample(6);
        let text = render_rowgroups(&c, 8);
        // Rebuild the single group with a shortened `node` column whose
        // checksum is *valid* for the short data: only the length check can
        // catch the disagreement (this is the silent-zip regression).
        let mut lines: Vec<&str> = text.lines().collect();
        let group = Json::parse(lines[1]).unwrap();
        let rows: u64 = group.decode_field("rows").unwrap();
        let mut checksums: Vec<u64> = group.decode_field("checksums").unwrap();
        let mut node: Vec<u32> = group.field("columns").unwrap().decode_field("node").unwrap();
        node.pop();
        checksums[1] = fnv1a(col_json(&node).render().as_bytes());
        let columns = group.field("columns").unwrap();
        let rebuilt = Json::obj([
            ("rows", rows.to_json()),
            ("checksums", checksums.to_json()),
            (
                "columns",
                Json::obj(COLUMNS.iter().map(|&name| {
                    if name == "node" {
                        (name, col_json(&node))
                    } else {
                        (name, columns.field(name).unwrap().clone())
                    }
                })),
            ),
        ])
        .render();
        lines[1] = &rebuilt;
        let p = tmp("mismatched.json");
        fs::write(&p, lines.join("\n")).unwrap();
        let err = load_columnar(&p).expect_err("mismatched columns must be rejected");
        match err {
            TraceLoadError::ColumnMismatch { column, len, rows, .. } => {
                assert_eq!(column, "node");
                assert_eq!(len, 5);
                assert_eq!(rows, 6);
            }
            other => panic!("expected ColumnMismatch, got: {other}"),
        }
        // Salvage drops the bad group but keeps the file loadable.
        let (_, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(comp.loaded_groups, 0);
        assert!(!comp.is_complete());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn bad_checksum_is_rejected_and_salvage_stops_there() {
        let c = sample(25);
        let text = render_rowgroups(&c, 4);
        // Corrupt one byte inside the *last* group's column data without
        // breaking JSON: flip a digit in the bytes column payload.
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len() - 1;
        let corrupted = lines[last].replacen("\"bytes\":[", "\"bytes\":[9", 1);
        let mut doctored: Vec<&str> = lines[..last].to_vec();
        doctored.push(&corrupted);
        let p = tmp("badsum.json");
        fs::write(&p, doctored.join("\n")).unwrap();
        let err = load_columnar(&p).expect_err("corrupt payload must be rejected");
        assert!(
            matches!(err, TraceLoadError::BadChecksum { .. } | TraceLoadError::ColumnMismatch { .. }),
            "unexpected error: {err}"
        );
        let (salvaged, comp) = load_columnar_salvaged(&p).unwrap();
        assert_eq!(comp.loaded_groups, 6, "all groups before the corrupt one salvage");
        assert_eq!(comp.loaded_records, 24);
        assert_eq!(salvaged.rank.len(), 24);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn tracer_loads_reject_mismatched_columns() {
        let mut t = Tracer::new();
        let f = t.file_id("/z");
        let a = t.app_id("w");
        for i in 0..4 {
            t.record(i, 0, a, Layer::Posix, OpKind::Write, SimTime(0), SimTime(1), Some(f), 0, 1);
        }
        let p = tmp("zip.trace.json");
        save_tracer(&t, &p).unwrap();
        // Drop one entry from the node column only: still perfectly valid
        // JSON, but the columns no longer agree.
        let text = fs::read_to_string(&p).unwrap();
        let doctored = text.replacen("\"node\":[0,0,0,0]", "\"node\":[0,0,0]", 1);
        assert_ne!(text, doctored, "fixture must actually change the node column");
        fs::write(&p, doctored).unwrap();
        let err = load_tracer(&p).expect_err("zipped columns must be rejected");
        match err {
            TraceLoadError::ColumnMismatch { column, len, rows, .. } => {
                assert_eq!(column, "node");
                assert_eq!(len, 3);
                assert_eq!(rows, 4);
            }
            other => panic!("expected ColumnMismatch, got: {other}"),
        }
        fs::remove_file(&p).unwrap();
    }
}
