//! A Darshan-style aggregate-counter profiler, for contrast with Recorder's
//! full tracing.
//!
//! The paper (§III-C) chooses Recorder over Darshan precisely because
//! Darshan keeps only per-file aggregate counters — enough for Table-I-style
//! summaries but not for phase detection, timelines, or dependency graphs.
//! This module implements that counter model so the suite can demonstrate
//! the difference: [`DarshanProfile::from_records`] folds a full trace into
//! counters, and the tests show which analyses survive the folding.

use crate::record::{OpKind, TraceRecord};
use sim_core::SimTime;
use std::collections::HashMap;

/// Darshan-style per-file counters (a subset of the POSIX module's).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileCounters {
    /// POSIX_OPENS.
    pub opens: u64,
    /// POSIX_READS.
    pub reads: u64,
    /// POSIX_WRITES.
    pub writes: u64,
    /// POSIX_SEEKS.
    pub seeks: u64,
    /// POSIX_STATS.
    pub stats: u64,
    /// POSIX_BYTES_READ.
    pub bytes_read: u64,
    /// POSIX_BYTES_WRITTEN.
    pub bytes_written: u64,
    /// POSIX_F_READ_TIME (seconds).
    pub read_time: f64,
    /// POSIX_F_WRITE_TIME (seconds).
    pub write_time: f64,
    /// POSIX_F_META_TIME (seconds).
    pub meta_time: f64,
    /// POSIX_MAX_BYTE_READ.
    pub max_byte_read: u64,
    /// POSIX_MAX_BYTE_WRITTEN.
    pub max_byte_written: u64,
    /// Timestamp of first open (F_OPEN_START_TIMESTAMP).
    pub first_open: Option<SimTime>,
    /// Timestamp of last close (F_CLOSE_END_TIMESTAMP).
    pub last_close: Option<SimTime>,
    /// Distinct ranks that touched the file.
    pub rank_count: u64,
    ranks_seen: Vec<u32>,
}

/// An aggregate profile: per-file counters plus job-level totals.
#[derive(Debug, Clone, Default)]
pub struct DarshanProfile {
    /// Per-file counters keyed by file id.
    pub files: HashMap<u32, FileCounters>,
    /// Job start/end observed.
    pub job_start: SimTime,
    /// Job end observed.
    pub job_end: SimTime,
    /// Number of ranks observed.
    pub nprocs: u64,
}

impl DarshanProfile {
    /// Fold a full trace into aggregate counters — the information Darshan
    /// would have kept. Everything not representable here (ordering, phase
    /// structure, per-op sizes) is irreversibly lost, which is the paper's
    /// point.
    pub fn from_records(records: &[TraceRecord]) -> DarshanProfile {
        let mut p = DarshanProfile {
            job_start: SimTime(u64::MAX),
            ..Default::default()
        };
        let mut ranks = std::collections::HashSet::new();
        for r in records {
            if !r.op.is_io() {
                continue;
            }
            ranks.insert(r.rank);
            p.job_start = p.job_start.min(r.start);
            p.job_end = p.job_end.max(r.end);
            let Some(fid) = r.file else { continue };
            let f = p.files.entry(fid.0).or_default();
            if !f.ranks_seen.contains(&r.rank) {
                f.ranks_seen.push(r.rank);
                f.rank_count = f.ranks_seen.len() as u64;
            }
            let dur = r.dur().as_secs_f64();
            match r.op {
                OpKind::Open | OpKind::Create => {
                    f.opens += 1;
                    f.meta_time += dur;
                    if f.first_open.is_none() {
                        f.first_open = Some(r.start);
                    }
                }
                OpKind::Close => {
                    f.meta_time += dur;
                    f.last_close = Some(r.end);
                }
                OpKind::Read => {
                    f.reads += 1;
                    f.bytes_read += r.bytes;
                    f.read_time += dur;
                    f.max_byte_read = f.max_byte_read.max(r.offset + r.bytes);
                }
                OpKind::Write => {
                    f.writes += 1;
                    f.bytes_written += r.bytes;
                    f.write_time += dur;
                    f.max_byte_written = f.max_byte_written.max(r.offset + r.bytes);
                }
                OpKind::Seek => {
                    f.seeks += 1;
                    f.meta_time += dur;
                }
                OpKind::Stat => {
                    f.stats += 1;
                    f.meta_time += dur;
                }
                _ => f.meta_time += dur,
            }
        }
        p.nprocs = ranks.len() as u64;
        if p.files.is_empty() && p.job_start == SimTime(u64::MAX) {
            p.job_start = SimTime::ZERO;
        }
        p
    }

    /// Job-level totals (what `darshan-parser --total` prints).
    pub fn totals(&self) -> FileCounters {
        let mut t = FileCounters::default();
        for f in self.files.values() {
            t.opens += f.opens;
            t.reads += f.reads;
            t.writes += f.writes;
            t.seeks += f.seeks;
            t.stats += f.stats;
            t.bytes_read += f.bytes_read;
            t.bytes_written += f.bytes_written;
            t.read_time += f.read_time;
            t.write_time += f.write_time;
            t.meta_time += f.meta_time;
        }
        t
    }

    /// Fraction of I/O time spent in metadata — one of the few paper
    /// attributes that *does* survive aggregation.
    pub fn meta_time_frac(&self) -> f64 {
        let t = self.totals();
        let total = t.read_time + t.write_time + t.meta_time;
        if total <= 0.0 {
            0.0
        } else {
            t.meta_time / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Layer;
    use crate::tracer::Tracer;

    fn sample() -> Vec<TraceRecord> {
        let mut t = Tracer::new();
        let f = t.file_id("/p/gpfs1/a");
        let a = t.app_id("app");
        t.record(
            0,
            0,
            a,
            Layer::Posix,
            OpKind::Open,
            SimTime(0),
            SimTime(100),
            Some(f),
            0,
            0,
        );
        t.record(
            0,
            0,
            a,
            Layer::Posix,
            OpKind::Write,
            SimTime(100),
            SimTime(300),
            Some(f),
            0,
            4096,
        );
        t.record(
            1,
            0,
            a,
            Layer::Posix,
            OpKind::Read,
            SimTime(150),
            SimTime(250),
            Some(f),
            0,
            1024,
        );
        t.record(
            0,
            0,
            a,
            Layer::Posix,
            OpKind::Seek,
            SimTime(300),
            SimTime(301),
            Some(f),
            512,
            0,
        );
        t.record(
            0,
            0,
            a,
            Layer::Posix,
            OpKind::Close,
            SimTime(301),
            SimTime(400),
            Some(f),
            0,
            0,
        );
        t.records().to_vec()
    }

    #[test]
    fn counters_fold_correctly() {
        let p = DarshanProfile::from_records(&sample());
        assert_eq!(p.nprocs, 2);
        let f = &p.files[&0];
        assert_eq!(f.opens, 1);
        assert_eq!(f.reads, 1);
        assert_eq!(f.writes, 1);
        assert_eq!(f.seeks, 1);
        assert_eq!(f.bytes_written, 4096);
        assert_eq!(f.bytes_read, 1024);
        assert_eq!(f.rank_count, 2);
        assert_eq!(f.first_open, Some(SimTime(0)));
        assert_eq!(f.last_close, Some(SimTime(400)));
        assert_eq!(f.max_byte_written, 4096);
    }

    #[test]
    fn totals_and_meta_fraction() {
        let p = DarshanProfile::from_records(&sample());
        let t = p.totals();
        assert_eq!(t.bytes_read + t.bytes_written, 5120);
        // meta = open(100ns) + seek(1ns) + close(99ns) = 200ns;
        // data = write 200ns + read 100ns.
        assert!((p.meta_time_frac() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn aggregation_loses_what_the_paper_needs() {
        // Two traces with *different phase structure* but identical
        // aggregate counters: Darshan cannot distinguish them — Recorder
        // (the full trace) can. This is the paper's §III-C argument.
        let mk = |gap: u64| {
            let mut t = Tracer::new();
            let f = t.file_id("/f");
            let a = t.app_id("app");
            t.record(
                0,
                0,
                a,
                Layer::Posix,
                OpKind::Write,
                SimTime(0),
                SimTime(10),
                Some(f),
                0,
                100,
            );
            t.record(
                0,
                0,
                a,
                Layer::Posix,
                OpKind::Write,
                SimTime(gap),
                SimTime(gap + 10),
                Some(f),
                100,
                100,
            );
            t.records().to_vec()
        };
        let burst = mk(10); // one phase
        let phased = mk(1_000_000_000); // two phases, 1 s apart
        let pa = DarshanProfile::from_records(&burst);
        let pb = DarshanProfile::from_records(&phased);
        // Aggregates identical (except the job span):
        assert_eq!(pa.totals().writes, pb.totals().writes);
        assert_eq!(pa.totals().bytes_written, pb.totals().bytes_written);
        // But the full traces differ in structure:
        assert_ne!(burst[1].start, phased[1].start);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let p = DarshanProfile::from_records(&[]);
        assert_eq!(p.nprocs, 0);
        assert_eq!(p.meta_time_frac(), 0.0);
        assert!(p.files.is_empty());
    }
}
