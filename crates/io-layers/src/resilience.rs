//! Retry/backoff middleware: the resilience interceptor every interface
//! layer's storage calls route through.
//!
//! Real HPC middleware (MPI-IO hints, GPFS client recovery, HDF5 retry
//! plumbing) absorbs transient storage failures by retrying with backoff;
//! permanent errors surface to the application as typed errors. This module
//! reproduces that contract inside simulated time: a transient fault costs
//! a detection latency, then an exponential backoff (with deterministic
//! jitter drawn from a dedicated splittable [`vani_rt::Rng`] stream), then
//! a re-attempt — up to the policy's attempt budget. Every failed attempt
//! and every backoff wait is captured in the trace as `Middleware`-layer
//! [`OpKind::Fault`] / [`OpKind::Retry`] records, so the analyzer can
//! compute error rate, retry amplification, and time lost to faults.
//!
//! When no fault plan is active the interceptor never observes an error,
//! never draws from its RNG, and adds zero simulated time — faultless runs
//! stay bit-identical to a build without the middleware.

use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{FileId, Layer, OpKind};
use sim_core::{Dur, SimTime};
use storage_sim::IoErr;

/// Tunable retry/backoff policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). 1 disables
    /// retrying: transient faults surface immediately.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Dur,
    /// Multiplier applied to the backoff after each failed retry.
    pub multiplier: f64,
    /// Ceiling on a single backoff wait.
    pub max_backoff: Dur,
    /// Jitter amplitude as a fraction of the backoff (0 = none): each wait
    /// is scaled by a factor drawn uniformly from `[1-jitter, 1+jitter]`.
    pub jitter: f64,
    /// Simulated latency of *detecting* one failed attempt (the timeout or
    /// error round-trip before the middleware reacts).
    pub fault_latency: Dur,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Dur::from_millis(2),
            multiplier: 2.0,
            max_backoff: Dur::from_millis(250),
            jitter: 0.25,
            fault_latency: Dur::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (transient faults surface to the app).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }
}

/// Counters the interceptor accumulates across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Failed attempts observed (each produced a `Fault` trace record).
    pub faults: u64,
    /// Re-attempts issued after backoff.
    pub retries: u64,
    /// Payload bytes re-submitted by retries.
    pub retried_bytes: u64,
    /// Operations whose attempt budget was exhausted (the transient error
    /// surfaced to the caller as a typed `IoErr`).
    pub exhausted: u64,
}

/// The per-world resilience interceptor state.
#[derive(Debug)]
pub struct Resilience {
    /// Active policy.
    pub policy: RetryPolicy,
    /// Accumulated counters.
    pub stats: ResilienceStats,
    /// Jitter stream — only advanced when a fault is actually absorbed.
    rng: vani_rt::Rng,
}

impl Resilience {
    /// Build the interceptor with its own seeded jitter stream.
    pub fn new(seed: u64) -> Self {
        Resilience {
            policy: RetryPolicy::default(),
            stats: ResilienceStats::default(),
            // Domain-separate from every other consumer of the run seed.
            rng: vani_rt::Rng::new(seed ^ 0x7265_7472_795f_6a69), // "retry_ji"
        }
    }

    /// The backoff before retry number `retry` (1-based), jittered.
    fn backoff(&mut self, retry: u32) -> Dur {
        let base = self.policy.base_backoff.as_secs_f64()
            * self.policy.multiplier.powi(retry.saturating_sub(1) as i32);
        let capped = base.min(self.policy.max_backoff.as_secs_f64());
        let j = self.policy.jitter.clamp(0.0, 1.0);
        let scale = if j > 0.0 {
            self.rng.uniform_f64(1.0 - j, 1.0 + j)
        } else {
            1.0
        };
        Dur::from_secs_f64(capped * scale)
    }
}

/// Run `attempt` under the world's retry policy. The closure performs one
/// storage attempt starting at the given instant and returns the value and
/// completion time, or a typed error. Transient errors are absorbed: the
/// middleware charges the detection latency, records a `Fault` span, waits
/// out a jittered exponential backoff recorded as a `Retry` span, and
/// re-attempts — until the policy's attempt budget runs out. Returns the
/// final result plus the instant the whole protected operation settled
/// (success end, or the moment the middleware gave up). Permanent errors
/// pass through untouched on the attempt that raised them.
pub fn with_retries<T>(
    w: &mut IoWorld,
    rank: RankId,
    file: Option<FileId>,
    offset: u64,
    bytes: u64,
    now: SimTime,
    mut attempt: impl FnMut(&mut IoWorld, SimTime) -> Result<(T, SimTime), IoErr>,
) -> (Result<T, IoErr>, SimTime) {
    let mut t = now;
    let mut attempts = 0u32;
    loop {
        match attempt(w, t) {
            Ok((value, end)) => return (Ok(value), end),
            Err(e) if e.is_transient() => {
                attempts += 1;
                w.resilience.stats.faults += 1;
                let detect = t + w.resilience.policy.fault_latency;
                let detect = w.trace_io(
                    rank,
                    Layer::Middleware,
                    OpKind::Fault,
                    t,
                    detect,
                    file,
                    offset,
                    bytes,
                );
                if attempts >= w.resilience.policy.max_attempts {
                    w.resilience.stats.exhausted += 1;
                    return (Err(e), detect);
                }
                let wait = w.resilience.backoff(attempts);
                let resume = detect + wait;
                let resume = w.trace_io(
                    rank,
                    Layer::Middleware,
                    OpKind::Retry,
                    detect,
                    resume,
                    file,
                    offset,
                    bytes,
                );
                w.resilience.stats.retries += 1;
                w.resilience.stats.retried_bytes += bytes;
                t = resume;
            }
            Err(e) => return (Err(e), t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn world() -> IoWorld {
        IoWorld::lassen(1, 1, Dur::from_secs(60), 9)
    }

    #[test]
    fn success_path_adds_no_time_and_no_records() {
        let mut w = world();
        let before = w.tracer.len();
        let (res, end) = with_retries(&mut w, RankId(0), None, 0, 0, SimTime::ZERO, |_w, t| {
            Ok(((), t + Dur::from_micros(5)))
        });
        res.unwrap();
        assert_eq!(end, SimTime::ZERO + Dur::from_micros(5));
        assert_eq!(w.tracer.len(), before);
    }

    #[test]
    fn transient_fault_is_absorbed_with_fault_and_retry_records() {
        let mut w = world();
        let failures = Cell::new(2u32);
        let (res, end) = with_retries(&mut w, RankId(0), None, 0, 4096, SimTime::ZERO, |_w, t| {
            if failures.get() > 0 {
                failures.set(failures.get() - 1);
                Err(IoErr::TransientIo)
            } else {
                Ok((7u64, t + Dur::from_micros(5)))
            }
        });
        assert_eq!(res.unwrap(), 7);
        assert!(
            end > SimTime::ZERO + Dur::from_millis(2),
            "backoff must cost time"
        );
        assert_eq!(w.resilience.stats.faults, 2);
        assert_eq!(w.resilience.stats.retries, 2);
        assert_eq!(w.resilience.stats.retried_bytes, 2 * 4096);
        let ops: Vec<OpKind> = w.tracer.records().iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![OpKind::Fault, OpKind::Retry, OpKind::Fault, OpKind::Retry]
        );
        assert!(w
            .tracer
            .records()
            .iter()
            .all(|r| r.layer == Layer::Middleware));
    }

    #[test]
    fn budget_exhaustion_surfaces_typed_error() {
        let mut w = world();
        w.resilience.policy.max_attempts = 3;
        let (res, _) = with_retries(&mut w, RankId(0), None, 0, 64, SimTime::ZERO, |_w, _t| {
            Err::<((), SimTime), _>(IoErr::ServerUnavailable)
        });
        assert_eq!(res.unwrap_err(), IoErr::ServerUnavailable);
        assert_eq!(w.resilience.stats.faults, 3);
        assert_eq!(w.resilience.stats.retries, 2);
        assert_eq!(w.resilience.stats.exhausted, 1);
    }

    #[test]
    fn permanent_errors_pass_through_without_retry() {
        let mut w = world();
        let before = w.tracer.len();
        let (res, end) = with_retries(&mut w, RankId(0), None, 0, 64, SimTime::ZERO, |_w, _t| {
            Err::<((), SimTime), _>(IoErr::NoSpace)
        });
        assert_eq!(res.unwrap_err(), IoErr::NoSpace);
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(w.tracer.len(), before);
        assert_eq!(w.resilience.stats.faults, 0);
    }

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let mut w = world();
        w.resilience.policy.jitter = 0.0;
        let b1 = w.resilience.backoff(1);
        let b2 = w.resilience.backoff(2);
        let b3 = w.resilience.backoff(3);
        assert_eq!(b1, Dur::from_millis(2));
        assert_eq!(b2, Dur::from_millis(4));
        assert_eq!(b3, Dur::from_millis(8));
        let b_cap = w.resilience.backoff(30);
        assert_eq!(b_cap, Dur::from_millis(250));
    }

    #[test]
    fn retry_timing_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), seed);
            let failures = Cell::new(3u32);
            let (_, end) = with_retries(&mut w, RankId(0), None, 0, 512, SimTime::ZERO, |_w, t| {
                if failures.get() > 0 {
                    failures.set(failures.get() - 1);
                    Err(IoErr::TransientIo)
                } else {
                    Ok(((), t))
                }
            });
            end
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "jitter must depend on the seed");
    }
}
