//! An HDF5-like self-describing container format ("H5SIM").
//!
//! Real structure, simplified encoding: a 512-byte superblock pointing at a
//! JSON object header that indexes datasets (name, shape, element size, and
//! a contiguous or chunked layout). The behavioral properties the paper
//! depends on are faithfully reproduced:
//!
//! * opening a file costs *real small reads* of the superblock and header —
//!   on a shared file over MPI-IO those metadata reads are what storm the
//!   metadata service and thrash lock tokens (CosmoFlow, Fig. 3),
//! * an **unchunked** dataset accessed through MPI-IO performs a header
//!   validation read per access ("no file chunking … slows down the multiple
//!   metadata accesses on the dataset, due to collective I/O", §IV-A3),
//! * a **chunked** dataset reads whole chunks through a per-handle chunk
//!   cache (the `chunking` optimization of §IV-D5).

use crate::posix::{self, Fd, OpenFlags};
use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::SimTime;
use std::collections::HashMap;
use storage_sim::IoErr;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// Superblock size and magic.
const SUPERBLOCK: u64 = 512;
const MAGIC: &[u8; 8] = b"H5SIM001";

/// Per-open options.
#[derive(Debug, Clone, PartialEq)]
pub struct H5Options {
    /// Access the file through MPI-IO semantics (collective metadata:
    /// per-access header validation on unchunked datasets).
    pub use_mpiio: bool,
    /// Chunk cache capacity per handle (HDF5 default is tiny — the paper
    /// quotes 4 KiB as the default chunk cache, §I).
    pub chunk_cache_bytes: u64,
}

impl Default for H5Options {
    fn default() -> Self {
        H5Options {
            use_mpiio: false,
            chunk_cache_bytes: 4096,
        }
    }
}

/// Storage layout of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum DsLayout {
    /// One contiguous extent at `offset`.
    Contiguous {
        /// Byte offset of element 0.
        offset: u64,
    },
    /// Fixed-size chunks stored back to back starting at `offset`.
    Chunked {
        /// First chunk's byte offset.
        offset: u64,
        /// Bytes per chunk.
        chunk_bytes: u64,
    },
}

/// A dataset's header entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Logical shape (the paper's "#dims" format attribute).
    pub shape: Vec<u64>,
    /// Bytes per element.
    pub dtype_size: u32,
    /// Physical layout.
    pub layout: DsLayout,
}

impl DatasetInfo {
    /// Total bytes of the dataset.
    pub fn nbytes(&self) -> u64 {
        self.shape.iter().product::<u64>() * self.dtype_size as u64
    }
}

#[derive(Debug)]
struct Header {
    datasets: Vec<DatasetInfo>,
}

// The on-disk header format uses externally-tagged enums
// (`{"Chunked": {"offset": N, "chunk_bytes": M}}`) so existing H5SIM files
// keep parsing.
impl ToJson for DsLayout {
    fn to_json(&self) -> Json {
        match self {
            DsLayout::Contiguous { offset } => {
                Json::obj([("Contiguous", Json::obj([("offset", offset.to_json())]))])
            }
            DsLayout::Chunked {
                offset,
                chunk_bytes,
            } => Json::obj([(
                "Chunked",
                Json::obj([
                    ("offset", offset.to_json()),
                    ("chunk_bytes", chunk_bytes.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for DsLayout {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(body) = j.get("Contiguous") {
            Ok(DsLayout::Contiguous {
                offset: body.decode_field("offset")?,
            })
        } else if let Some(body) = j.get("Chunked") {
            Ok(DsLayout::Chunked {
                offset: body.decode_field("offset")?,
                chunk_bytes: body.decode_field("chunk_bytes")?,
            })
        } else {
            Err(JsonError::shape("unknown DsLayout variant"))
        }
    }
}

impl ToJson for DatasetInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("shape", self.shape.to_json()),
            ("dtype_size", self.dtype_size.to_json()),
            ("layout", self.layout.to_json()),
        ])
    }
}

impl FromJson for DatasetInfo {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(DatasetInfo {
            name: j.decode_field("name")?,
            shape: j.decode_field("shape")?,
            dtype_size: j.decode_field("dtype_size")?,
            layout: j.decode_field("layout")?,
        })
    }
}

impl ToJson for Header {
    fn to_json(&self) -> Json {
        Json::obj([("datasets", self.datasets.to_json())])
    }
}

impl FromJson for Header {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Header {
            datasets: j.decode_field("datasets")?,
        })
    }
}

/// Writer handle for producing an H5SIM file.
pub struct H5Writer {
    fd: Fd,
    datasets: Vec<DatasetInfo>,
    eof: u64,
}

/// Create a new file: POSIX create plus superblock placeholder.
pub fn create(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    now: SimTime,
) -> (Result<H5Writer, IoErr>, SimTime) {
    let t0 = now;
    let (fd, t) = posix::open(w, rank, path, OpenFlags::write_create(), now);
    let fd = match fd {
        Ok(f) => f,
        Err(e) => return (Err(e), t),
    };
    let mut sb = vec![0u8; SUPERBLOCK as usize];
    sb[..8].copy_from_slice(MAGIC);
    let (res, t2) = posix::write_at(w, rank, fd, 0, &sb, t);
    if let Err(e) = res {
        return (Err(e), t2);
    }
    let path_id = w.tracer.file_id(path);
    let end = w.trace_io(
        rank,
        Layer::HighLevel,
        OpKind::Create,
        t0,
        t2,
        Some(path_id),
        0,
        0,
    );
    (
        Ok(H5Writer {
            fd,
            datasets: Vec::new(),
            eof: SUPERBLOCK,
        }),
        end,
    )
}

impl H5Writer {
    /// Append a dataset filled with a synthetic pattern. `chunk_bytes =
    /// None` stores it contiguously (CosmoFlow's files are unchunked).
    pub fn write_dataset(
        &mut self,
        w: &mut IoWorld,
        rank: RankId,
        name: &str,
        shape: &[u64],
        dtype_size: u32,
        chunk_bytes: Option<u64>,
        seed: u64,
        now: SimTime,
    ) -> (Result<(), IoErr>, SimTime) {
        let t0 = now;
        let nbytes = shape.iter().product::<u64>() * dtype_size as u64;
        let path_id = w.fd(rank, self.fd).map(|of| of.path_id).ok();
        let offset = self.eof;
        let mut t = now;
        match chunk_bytes {
            None => {
                let (res, t2) = posix::write_pattern_at(w, rank, self.fd, offset, nbytes, seed, t);
                if let Err(e) = res {
                    return (Err(e), t2);
                }
                t = t2;
            }
            Some(cb) => {
                let cb = cb.max(1);
                let mut off = 0u64;
                while off < nbytes {
                    let this = (nbytes - off).min(cb);
                    let (res, t2) = posix::write_pattern_at(
                        w,
                        rank,
                        self.fd,
                        offset + off,
                        this,
                        seed ^ off,
                        t,
                    );
                    if let Err(e) = res {
                        return (Err(e), t2);
                    }
                    t = t2;
                    off += this;
                }
            }
        }
        self.datasets.push(DatasetInfo {
            name: name.to_string(),
            shape: shape.to_vec(),
            dtype_size,
            layout: match chunk_bytes {
                None => DsLayout::Contiguous { offset },
                Some(cb) => DsLayout::Chunked {
                    offset,
                    chunk_bytes: cb.max(1),
                },
            },
        });
        self.eof = offset + nbytes;
        let end = w.trace_io(
            rank,
            Layer::HighLevel,
            OpKind::Write,
            t0,
            t,
            path_id,
            offset,
            nbytes,
        );
        (Ok(()), end)
    }

    /// Finalize: serialize the header, point the superblock at it, close.
    pub fn close(
        self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<(), IoErr>, SimTime) {
        let t0 = now;
        let path_id = w.fd(rank, self.fd).map(|of| of.path_id).ok();
        let header = Header {
            datasets: self.datasets,
        };
        let json = vani_rt::json::to_vec(&header);
        let hlen = json.len() as u64;
        let (res, t) = posix::write_at(w, rank, self.fd, self.eof, &json, now);
        if let Err(e) = res {
            return (Err(e), t);
        }
        let mut sb = vec![0u8; SUPERBLOCK as usize];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..16].copy_from_slice(&self.eof.to_le_bytes());
        sb[16..24].copy_from_slice(&hlen.to_le_bytes());
        let (res, t) = posix::write_at(w, rank, self.fd, 0, &sb, t);
        if let Err(e) = res {
            return (Err(e), t);
        }
        let (res, t) = posix::close(w, rank, self.fd, t);
        let end = w.trace_io(rank, Layer::HighLevel, OpKind::Close, t0, t, path_id, 0, 0);
        (res, end)
    }
}

/// Materialize a complete H5SIM file directly into a file store, without
/// simulating the producer. Used to stage input datasets (the paper's
/// CosmoFlow corpus pre-exists the job). Dataset bodies are synthetic
/// pattern segments, so a 32 MiB file costs a few hundred bytes of memory.
pub fn materialize(
    store: &mut storage_sim::file::FileStore,
    path: &str,
    specs: &[(&str, &[u64], u32, Option<u64>)],
    seed: u64,
) -> Result<(), IoErr> {
    use storage_sim::file::Segment;
    let key = store.create(path, false)?;
    let mut eof = SUPERBLOCK;
    let mut datasets = Vec::new();
    for (name, shape, dtype_size, chunk_bytes) in specs {
        let nbytes = shape.iter().product::<u64>() * *dtype_size as u64;
        store.write(
            key,
            eof,
            Segment::Pattern {
                seed: seed ^ eof,
                len: nbytes.max(1),
            },
        )?;
        datasets.push(DatasetInfo {
            name: name.to_string(),
            shape: shape.to_vec(),
            dtype_size: *dtype_size,
            layout: match chunk_bytes {
                None => DsLayout::Contiguous { offset: eof },
                Some(cb) => DsLayout::Chunked {
                    offset: eof,
                    chunk_bytes: (*cb).max(1),
                },
            },
        });
        eof += nbytes;
    }
    let json = vani_rt::json::to_vec(&Header { datasets });
    let hlen = json.len() as u64;
    store.write(key, eof, Segment::Bytes(std::sync::Arc::new(json)))?;
    let mut sb = vec![0u8; SUPERBLOCK as usize];
    sb[..8].copy_from_slice(MAGIC);
    sb[8..16].copy_from_slice(&eof.to_le_bytes());
    sb[16..24].copy_from_slice(&hlen.to_le_bytes());
    store.write(key, 0, Segment::Bytes(std::sync::Arc::new(sb)))?;
    Ok(())
}

/// A chunk-cache entry key.
type ChunkIdx = u64;

/// Reader handle for an H5SIM file.
pub struct H5File {
    fd: Fd,
    opts: H5Options,
    datasets: Vec<DatasetInfo>,
    header_offset: u64,
    cache: HashMap<(usize, ChunkIdx), u64>,
    cache_bytes: u64,
    cache_order: Vec<(usize, ChunkIdx)>,
}

/// Open an existing file: superblock read, header read, JSON parse. Every
/// one of those is a real small read in the trace.
pub fn open(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    opts: H5Options,
    now: SimTime,
) -> (Result<H5File, IoErr>, SimTime) {
    let t0 = now;
    let flags = OpenFlags::read_only();
    let (fd, t) = if opts.use_mpiio {
        crate::mpiio::open(w, rank, path, flags, now)
    } else {
        posix::open(w, rank, path, flags, now)
    };
    let fd = match fd {
        Ok(f) => f,
        Err(e) => return (Err(e), t),
    };
    // Superblock.
    let node = w.node_of(rank);
    let (handle, path_id) = {
        let of = w.fd(rank, fd).expect("just opened");
        (of.handle, of.path_id)
    };
    let (res, t_sb) =
        crate::resilience::with_retries(w, rank, Some(path_id), 0, SUPERBLOCK, t, |w, t| {
            w.storage.read_data(node, handle, 0, SUPERBLOCK, t)
        });
    let (sb, t) = match res {
        Ok(sb) => (sb, t_sb),
        Err(e) => return (Err(e), t_sb),
    };
    let t = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Read,
        t0,
        t,
        Some(path_id),
        0,
        sb.len() as u64,
    );
    if sb.len() < 24 || &sb[..8] != MAGIC {
        return (Err(IoErr::Invalid), t);
    }
    let header_offset = u64::from_le_bytes(sb[8..16].try_into().expect("8 bytes"));
    let header_len = u64::from_le_bytes(sb[16..24].try_into().expect("8 bytes"));
    if header_offset == 0 {
        return (Err(IoErr::Invalid), t); // file never closed properly
    }
    // Object header.
    let (res, t_hdr) = crate::resilience::with_retries(
        w,
        rank,
        Some(path_id),
        header_offset,
        header_len,
        t,
        |w, t| {
            w.storage
                .read_data(node, handle, header_offset, header_len, t)
        },
    );
    let (hjson, t2) = match res {
        Ok(h) => (h, t_hdr),
        Err(e) => return (Err(e), t_hdr),
    };
    let t = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Read,
        t,
        t2,
        Some(path_id),
        header_offset,
        hjson.len() as u64,
    );
    let header: Header = match vani_rt::json::from_slice(&hjson) {
        Ok(h) => h,
        Err(_) => return (Err(IoErr::Invalid), t),
    };
    let end = w.trace_io(
        rank,
        Layer::HighLevel,
        OpKind::Open,
        t0,
        t,
        Some(path_id),
        0,
        0,
    );
    (
        Ok(H5File {
            fd,
            opts,
            datasets: header.datasets,
            header_offset,
            cache: HashMap::new(),
            cache_bytes: 0,
            cache_order: Vec::new(),
        }),
        end,
    )
}

impl H5File {
    /// The datasets in this file.
    pub fn datasets(&self) -> &[DatasetInfo] {
        &self.datasets
    }

    /// Find a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&DatasetInfo> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Read `len` bytes of a dataset starting at byte `offset` within it.
    /// Returns bytes read and completion time.
    pub fn read(
        &mut self,
        w: &mut IoWorld,
        rank: RankId,
        name: &str,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let Some(idx) = self.datasets.iter().position(|d| d.name == name) else {
            return (Err(IoErr::NotFound), now);
        };
        let ds = self.datasets[idx].clone();
        let path_id = w.fd(rank, self.fd).map(|of| of.path_id).ok();
        let nbytes = ds.nbytes();
        let len = len.min(nbytes.saturating_sub(offset));
        let mut t = now;
        let total;
        match ds.layout {
            DsLayout::Contiguous { offset: base } => {
                if self.opts.use_mpiio {
                    // Collective-metadata validation per access — the
                    // unchunked-over-MPI-IO tax: a small header read (which
                    // thrashes the lock token across nodes) plus an MDS
                    // round trip (which storms the metadata service).
                    let (res, t2) = posix::read_at(w, rank, self.fd, self.header_offset, 256, t);
                    if let Err(e) = res {
                        return (Err(e), t2);
                    }
                    let (res, t3) = posix::fstat(w, rank, self.fd, t2);
                    if let Err(e) = res {
                        return (Err(e), t3);
                    }
                    let t4 = w.trace_io(rank, Layer::HighLevel, OpKind::Stat, t, t3, path_id, 0, 0);
                    t = t4;
                }
                let (res, t2) = posix::read_at(w, rank, self.fd, base + offset, len, t);
                match res {
                    Ok(n) => {
                        total = n;
                        t = t2;
                    }
                    Err(e) => return (Err(e), t2),
                }
            }
            DsLayout::Chunked {
                offset: base,
                chunk_bytes,
            } => {
                let first = offset / chunk_bytes;
                let last = (offset + len).saturating_sub(1) / chunk_bytes;
                let mut got = 0u64;
                for c in first..=last {
                    if self.cache_hit(idx, c) {
                        // Cache hit: memcpy-ish cost only.
                        t = t + sim_core::Dur::from_nanos(200);
                        got += chunk_bytes.min(nbytes - c * chunk_bytes);
                        continue;
                    }
                    let c_off = base + c * chunk_bytes;
                    let c_len = chunk_bytes.min(nbytes - c * chunk_bytes);
                    let (res, t2) = posix::read_at(w, rank, self.fd, c_off, c_len, t);
                    match res {
                        Ok(n) => {
                            got += n;
                            t = t2;
                            self.cache_insert(idx, c, c_len);
                        }
                        Err(e) => return (Err(e), t2),
                    }
                }
                total = got.min(len);
            }
        }
        let end = w.trace_io(
            rank,
            Layer::HighLevel,
            OpKind::Read,
            t0,
            t,
            path_id,
            offset,
            total,
        );
        (Ok(total), end)
    }

    fn cache_hit(&self, ds: usize, chunk: ChunkIdx) -> bool {
        self.cache.contains_key(&(ds, chunk))
    }

    fn cache_insert(&mut self, ds: usize, chunk: ChunkIdx, bytes: u64) {
        if bytes > self.opts.chunk_cache_bytes {
            return; // chunk bigger than the cache: uncacheable
        }
        self.cache.insert((ds, chunk), bytes);
        self.cache_order.push((ds, chunk));
        self.cache_bytes += bytes;
        while self.cache_bytes > self.opts.chunk_cache_bytes && !self.cache_order.is_empty() {
            let victim = self.cache_order.remove(0);
            if let Some(b) = self.cache.remove(&victim) {
                self.cache_bytes -= b.min(self.cache_bytes);
            }
        }
    }

    /// Close the file.
    pub fn close(
        self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<(), IoErr>, SimTime) {
        let path_id = w.fd(rank, self.fd).map(|of| of.path_id).ok();
        let (res, t) = if self.opts.use_mpiio {
            crate::mpiio::close(w, rank, self.fd, now)
        } else {
            posix::close(w, rank, self.fd, now)
        };
        let end = w.trace_io(rank, Layer::HighLevel, OpKind::Close, now, t, path_id, 0, 0);
        (res, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::MIB;
    use sim_core::Dur;

    fn world() -> IoWorld {
        IoWorld::lassen(1, 2, Dur::from_secs(3600), 4)
    }

    fn make_file(w: &mut IoWorld, path: &str, chunk: Option<u64>) -> SimTime {
        let r = RankId(0);
        let (wr, t) = create(w, r, path, SimTime::ZERO);
        let mut wr = wr.unwrap();
        let (res, t) = wr.write_dataset(w, r, "full", &[512, 512, 4], 2, chunk, 7, t);
        res.unwrap();
        let (res, t) = wr.close(w, r, t);
        res.unwrap();
        t
    }

    #[test]
    fn create_write_open_read_round_trip() {
        let mut w = world();
        let t = make_file(&mut w, "/p/gpfs1/sim.h5", None);
        let r = RankId(0);
        let (f, t) = open(&mut w, r, "/p/gpfs1/sim.h5", H5Options::default(), t);
        let mut f = f.unwrap();
        let ds = f.dataset("full").unwrap();
        assert_eq!(ds.shape, vec![512, 512, 4]);
        assert_eq!(ds.nbytes(), 512 * 512 * 4 * 2);
        let (n, t) = f.read(&mut w, r, "full", 0, 1 * MIB, t);
        assert_eq!(n.unwrap(), 1 * MIB);
        let (res, _) = f.close(&mut w, r, t);
        res.unwrap();
    }

    #[test]
    fn open_costs_small_metadata_reads() {
        let mut w = world();
        let t = make_file(&mut w, "/p/gpfs1/meta.h5", None);
        let before = w.tracer.len();
        let r = RankId(0);
        let (f, _t) = open(&mut w, r, "/p/gpfs1/meta.h5", H5Options::default(), t);
        f.unwrap();
        let new: Vec<_> = w.tracer.records()[before..].to_vec();
        // Superblock + header POSIX reads are small.
        let small_reads: Vec<u64> = new
            .iter()
            .filter(|rec| rec.layer == Layer::Posix && rec.op == OpKind::Read)
            .map(|rec| rec.bytes)
            .collect();
        assert_eq!(small_reads.len(), 2);
        assert!(small_reads.iter().all(|&b| b < 4096));
        // And a HighLevel open record.
        assert!(new
            .iter()
            .any(|rec| rec.layer == Layer::HighLevel && rec.op == OpKind::Open));
    }

    #[test]
    fn mpiio_unchunked_reads_pay_per_access_metadata() {
        let mut w = world();
        let t = make_file(&mut w, "/p/gpfs1/cf.h5", None);
        let r = RankId(0);
        let opts = H5Options {
            use_mpiio: true,
            ..Default::default()
        };
        let (f, mut t) = open(&mut w, r, "/p/gpfs1/cf.h5", opts, t);
        let mut f = f.unwrap();
        let before = w.tracer.len();
        for i in 0..4u64 {
            let (res, t2) = f.read(&mut w, r, "full", i * MIB, MIB, t);
            res.unwrap();
            t = t2;
        }
        let metas = w.tracer.records()[before..]
            .iter()
            .filter(|rec| rec.layer == Layer::HighLevel && rec.op == OpKind::Stat)
            .count();
        assert_eq!(metas, 4, "one header validation per access");
    }

    #[test]
    fn chunked_reads_use_the_chunk_cache() {
        let mut w = world();
        let t = make_file(&mut w, "/p/gpfs1/ch.h5", Some(64 * 1024));
        let r = RankId(0);
        let opts = H5Options {
            use_mpiio: false,
            chunk_cache_bytes: 1 * MIB,
        };
        let (f, t) = open(&mut w, r, "/p/gpfs1/ch.h5", opts, t);
        let mut f = f.unwrap();
        let posix_reads = |w: &IoWorld| {
            w.tracer
                .records()
                .iter()
                .filter(|rec| rec.layer == Layer::Posix && rec.op == OpKind::Read)
                .count()
        };
        let before = posix_reads(&w);
        let (_, t) = f.read(&mut w, r, "full", 0, 128 * 1024, t);
        let after_first = posix_reads(&w);
        assert_eq!(after_first - before, 2, "two 64 KiB chunks fetched");
        // Re-read the same range: all cache hits, no POSIX reads.
        let (_, _t) = f.read(&mut w, r, "full", 0, 128 * 1024, t);
        assert_eq!(posix_reads(&w), after_first);
    }

    #[test]
    fn corrupt_superblock_is_rejected() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = posix::open(
            &mut w,
            r,
            "/p/gpfs1/bad.h5",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let (_, t) = posix::write(
            &mut w,
            r,
            fd.unwrap(),
            b"not an hdf5 file at all, promise!",
            t,
        );
        let (_, t) = posix::close(&mut w, r, fd.unwrap(), t);
        let (res, _) = open(&mut w, r, "/p/gpfs1/bad.h5", H5Options::default(), t);
        assert_eq!(res.err().unwrap(), IoErr::Invalid);
    }

    #[test]
    fn truncated_file_without_close_is_invalid() {
        let mut w = world();
        let r = RankId(0);
        // Create but never close the writer: superblock still zeroed.
        let (wr, t) = create(&mut w, r, "/p/gpfs1/unclosed.h5", SimTime::ZERO);
        let _wr = wr.unwrap();
        let (res, _) = open(&mut w, r, "/p/gpfs1/unclosed.h5", H5Options::default(), t);
        assert_eq!(res.err().unwrap(), IoErr::Invalid);
    }
}
