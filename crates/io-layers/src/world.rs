//! The engine world shared by all rank scripts: storage, tracer, and
//! per-process state.

use hpc_cluster::job::JobAlloc;
use hpc_cluster::mpi::MpiCostModel;
use hpc_cluster::topology::{ClusterSpec, NodeId, RankId};
use recorder_sim::record::{AppId, Layer, OpKind};
use recorder_sim::Tracer;
use sim_core::{DetRng, Dur, SimTime};
use storage_sim::file::FileKey;
use storage_sim::mounts::{FileHandle, StorageSystem};

/// One open POSIX descriptor.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// The storage-level handle.
    pub handle: FileHandle,
    /// Current file position.
    pub pos: u64,
    /// Interned path for tracing.
    pub path_id: recorder_sim::record::FileId,
    /// Whether writes are permitted.
    pub writable: bool,
    /// Whether writes always go to EOF.
    pub append: bool,
    /// Size as known to this descriptor (used for append positioning).
    pub known_size: u64,
}

/// Per-process (per-rank) state: descriptor table and current application.
#[derive(Debug)]
pub struct ProcState {
    /// POSIX fd table: index = fd.
    pub fds: Vec<Option<OpenFile>>,
    /// The application (workflow step) this process is currently executing.
    pub app: AppId,
    /// Maximum open descriptors (`ulimit -n`).
    pub max_fds: usize,
}

impl ProcState {
    fn new(max_fds: usize) -> Self {
        ProcState {
            fds: Vec::new(),
            app: AppId(0),
            max_fds,
        }
    }

    /// Allocate the lowest free descriptor slot.
    pub fn alloc_fd(&mut self) -> Option<usize> {
        if let Some(i) = self.fds.iter().position(Option::is_none) {
            return Some(i);
        }
        if self.fds.len() >= self.max_fds {
            return None;
        }
        self.fds.push(None);
        Some(self.fds.len() - 1)
    }

    /// Count of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.fds.iter().flatten().count()
    }
}

/// The shared world the engine threads every rank script through.
pub struct IoWorld {
    /// The job's allocation (rank → node mapping).
    pub alloc: JobAlloc,
    /// The storage system (PFS + node-local tiers).
    pub storage: StorageSystem,
    /// The trace capture sink.
    pub tracer: Tracer,
    /// Per-rank process state.
    pub procs: Vec<ProcState>,
    /// Collective cost model (shared with the engine's configuration).
    pub mpi: MpiCostModel,
    /// Workload-visible RNG (shuffles, sample synthesis).
    pub rng: DetRng,
    /// Per-rank stdio stream tables (index = rank).
    pub stdio_streams: Vec<crate::stdio::StreamTable>,
    /// Retry/backoff interceptor the layers route storage calls through.
    pub resilience: crate::resilience::Resilience,
}

impl IoWorld {
    /// Assemble a world for a job on a cluster.
    pub fn new(
        cluster: &ClusterSpec,
        alloc: JobAlloc,
        storage: StorageSystem,
        tracer: Tracer,
        seed: u64,
    ) -> Self {
        let n = alloc.total_ranks() as usize;
        IoWorld {
            mpi: MpiCostModel::from_node(&cluster.node),
            procs: (0..n).map(|_| ProcState::new(1024)).collect(),
            stdio_streams: (0..n)
                .map(|_| crate::stdio::StreamTable::default())
                .collect(),
            alloc,
            storage,
            tracer,
            rng: DetRng::for_component(seed, "workload"),
            resilience: crate::resilience::Resilience::new(seed),
        }
    }

    /// A Lassen world: standard storage system and an enabled tracer.
    pub fn lassen(nodes: u32, ranks_per_node: u32, walltime: Dur, seed: u64) -> Self {
        let cluster = ClusterSpec::lassen();
        let spec = hpc_cluster::job::JobSpec::lassen(nodes, ranks_per_node, walltime);
        let alloc = JobAlloc::allocate(&cluster, spec);
        let storage = StorageSystem::lassen(nodes as usize, seed);
        IoWorld::new(&cluster, alloc, storage, Tracer::new(), seed)
    }

    /// The node a rank runs on.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        self.alloc.node_of(rank)
    }

    /// Set the application name for a rank (workflow steps switch this).
    pub fn set_app(&mut self, rank: RankId, name: &str) {
        let id = self.tracer.app_id(name);
        self.procs[rank.0 as usize].app = id;
    }

    /// The application id of a rank.
    pub fn app_of(&self, rank: RankId) -> AppId {
        self.procs[rank.0 as usize].app
    }

    /// Record a CPU compute span for a rank and return its end time.
    pub fn compute(&mut self, rank: RankId, dur: Dur, now: SimTime) -> SimTime {
        let end = now + dur;
        let node = self.node_of(rank).0;
        let app = self.app_of(rank);
        self.tracer.record(
            rank.0,
            node,
            app,
            Layer::App,
            OpKind::Compute,
            now,
            end,
            None,
            0,
            0,
        );
        end
    }

    /// Record a GPU compute span for a rank and return its end time.
    pub fn gpu_compute(&mut self, rank: RankId, dur: Dur, now: SimTime) -> SimTime {
        let end = now + dur;
        let node = self.node_of(rank).0;
        let app = self.app_of(rank);
        self.tracer.record(
            rank.0,
            node,
            app,
            Layer::App,
            OpKind::GpuCompute,
            now,
            end,
            None,
            0,
            0,
        );
        end
    }

    /// Record an MPI collective span for a rank (the engine computed the
    /// cost; this captures it into the trace).
    pub fn record_collective(&mut self, rank: RankId, start: SimTime, end: SimTime, bytes: u64) {
        let node = self.node_of(rank).0;
        let app = self.app_of(rank);
        self.tracer.record(
            rank.0,
            node,
            app,
            Layer::App,
            OpKind::MpiColl,
            start,
            end,
            None,
            0,
            bytes,
        );
    }

    /// Shorthand: capture an I/O record; returns the end time plus any
    /// tracer overhead. Public so workload skeletons can record synthetic
    /// transfers (e.g. preload copies) that bypass the layer functions.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_io(
        &mut self,
        rank: RankId,
        layer: Layer,
        op: OpKind,
        start: SimTime,
        end: SimTime,
        file: Option<recorder_sim::record::FileId>,
        offset: u64,
        bytes: u64,
    ) -> SimTime {
        let node = self.node_of(rank).0;
        let app = self.app_of(rank);
        let ov = self.tracer.record(
            rank.0, node, app, layer, op, start, end, file, offset, bytes,
        );
        end + ov
    }

    /// Direct access to a rank's proc state.
    pub fn proc(&self, rank: RankId) -> &ProcState {
        &self.procs[rank.0 as usize]
    }

    /// Mutable access to a rank's proc state.
    pub fn proc_mut(&mut self, rank: RankId) -> &mut ProcState {
        &mut self.procs[rank.0 as usize]
    }

    /// Look up an open descriptor.
    pub fn fd(&self, rank: RankId, fd: crate::posix::Fd) -> Result<&OpenFile, storage_sim::IoErr> {
        self.procs[rank.0 as usize]
            .fds
            .get(fd.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(storage_sim::IoErr::BadFd)
    }

    /// Storage-level key of an open descriptor (for assertions in tests).
    pub fn key_of(
        &self,
        rank: RankId,
        fd: crate::posix::Fd,
    ) -> Result<FileKey, storage_sim::IoErr> {
        Ok(self.fd(rank, fd)?.handle.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_setup_places_ranks() {
        let w = IoWorld::lassen(2, 4, Dur::from_secs(60), 1);
        assert_eq!(w.procs.len(), 8);
        assert_eq!(w.node_of(RankId(5)).0, 1);
    }

    #[test]
    fn compute_records_land_in_trace() {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 1);
        w.set_app(RankId(0), "test-app");
        let end = w.compute(RankId(0), Dur::from_secs(2), SimTime::ZERO);
        assert_eq!(end, SimTime::from_secs(2));
        let end2 = w.gpu_compute(RankId(0), Dur::from_secs(1), end);
        assert_eq!(end2, SimTime::from_secs(3));
        assert_eq!(w.tracer.len(), 2);
        assert_eq!(w.tracer.records()[0].op, OpKind::Compute);
        assert_eq!(w.tracer.records()[1].op, OpKind::GpuCompute);
        assert_eq!(w.tracer.app_name(w.tracer.records()[0].app), "test-app");
    }

    #[test]
    fn fd_allocation_reuses_lowest_slot() {
        let mut p = ProcState::new(4);
        assert_eq!(p.alloc_fd(), Some(0));
        p.fds[0] = None; // nothing stored yet; simulate reuse
        assert_eq!(p.alloc_fd(), Some(0));
    }

    #[test]
    fn fd_table_exhausts() {
        let mut p = ProcState::new(2);
        let a = p.alloc_fd().unwrap();
        p.fds[a] = Some(dummy_open());
        let b = p.alloc_fd().unwrap();
        p.fds[b] = Some(dummy_open());
        assert_eq!(p.alloc_fd(), None);
    }

    fn dummy_open() -> OpenFile {
        OpenFile {
            handle: FileHandle {
                tier: storage_sim::mounts::Tier::Pfs,
                key: FileKey(0),
            },
            pos: 0,
            path_id: recorder_sim::record::FileId(0),
            writable: true,
            append: false,
            known_size: 0,
        }
    }
}
