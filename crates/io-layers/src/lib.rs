//! # io-layers
//!
//! Re-implementations of the I/O interface stack the paper's workloads use,
//! running over the simulated storage substrate and traced at every level:
//!
//! * [`world`] — [`world::IoWorld`], the engine world: job allocation,
//!   storage system, tracer, and per-process state (descriptor tables),
//! * [`posix`] — POSIX syscalls (open/read/write/lseek/fsync/stat/unlink)
//!   with per-process fd tables and fd exhaustion,
//! * [`stdio`] — buffered C stdio (`fopen`/`fread`/`fwrite`): user-space
//!   buffering that coalesces small calls into buffer-sized POSIX ops,
//! * [`mpiio`] — MPI-IO: independent and collective (two-phase, `cb_nodes`
//!   aggregators) file access with collective metadata amplification,
//! * [`hdf5`] — an HDF5-like self-describing container (superblock, object
//!   headers, contiguous or chunked datasets, per-process chunk cache),
//! * [`npy`] — the NumPy `.npy` array format over stdio,
//! * [`fits`] — FITS (2880-byte blocks, 80-byte header cards) over stdio,
//! * [`middleware`] — optional interceptors (node-local write buffering,
//!   sequential prefetch, compression) used by the optimizer's ablations,
//! * [`resilience`] — the retry/backoff interceptor that absorbs transient
//!   storage faults and records `Fault`/`Retry` middleware trace spans.
//!
//! Every call takes and returns simulated time and appends multi-level
//! trace records, so one `fwrite` may produce a `Stdio` record plus the
//! `Posix` record of the flush it triggered — exactly Recorder's view.

pub mod fits;
pub mod hdf5;
pub mod middleware;
pub mod mpiio;
pub mod npy;
pub mod posix;
pub mod resilience;
pub mod stdio;
pub mod world;

pub use posix::{Fd, OpenFlags};
pub use resilience::{Resilience, RetryPolicy};
pub use world::IoWorld;
