//! The FITS (Flexible Image Transport System) format over buffered stdio —
//! Montage's input images are FITS files read with 64 KiB transfers
//! (§IV-A5).
//!
//! Real structure: 80-byte header cards in 2880-byte logical blocks
//! (`SIMPLE`, `BITPIX`, `NAXIS`, `NAXIS1..n`, `END`), followed by the image
//! payload padded to a 2880-byte boundary.

use crate::stdio::{self, FileStream};
use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::SimTime;
use storage_sim::IoErr;

/// FITS logical block size.
pub const BLOCK: u64 = 2880;
/// Header card size.
pub const CARD: usize = 80;
/// Buffer size FITS libraries typically use (cfitsio-style), which is what
/// makes Montage's input reads appear as 64 KiB POSIX transfers.
pub const FITS_BUFSIZE: u64 = 64 * 1024;

/// Image metadata carried in the FITS header.
#[derive(Debug, Clone, PartialEq)]
pub struct FitsHeader {
    /// Bits per pixel (8, 16, 32, -32, -64).
    pub bitpix: i32,
    /// Axis lengths (`NAXIS1`, `NAXIS2`, …).
    pub naxes: Vec<u64>,
}

impl FitsHeader {
    /// Payload bytes (before block padding).
    pub fn data_bytes(&self) -> u64 {
        let npix: u64 = self.naxes.iter().product();
        npix * (self.bitpix.unsigned_abs() as u64 / 8)
    }

    /// Payload bytes padded to the 2880-byte block boundary.
    pub fn padded_data_bytes(&self) -> u64 {
        self.data_bytes().div_ceil(BLOCK) * BLOCK
    }

    fn card(key: &str, value: &str) -> [u8; CARD] {
        let mut c = [b' '; CARD];
        let s = format!("{key:<8}= {value:>20}");
        c[..s.len().min(CARD)].copy_from_slice(&s.as_bytes()[..s.len().min(CARD)]);
        c
    }

    /// Encode the header block (cards padded to 2880 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut cards: Vec<[u8; CARD]> = Vec::new();
        cards.push(Self::card("SIMPLE", "T"));
        cards.push(Self::card("BITPIX", &self.bitpix.to_string()));
        cards.push(Self::card("NAXIS", &self.naxes.len().to_string()));
        for (i, n) in self.naxes.iter().enumerate() {
            cards.push(Self::card(&format!("NAXIS{}", i + 1), &n.to_string()));
        }
        let mut end = [b' '; CARD];
        end[..3].copy_from_slice(b"END");
        cards.push(end);
        let mut out: Vec<u8> = cards.into_iter().flatten().collect();
        let padded = (out.len() as u64).div_ceil(BLOCK) * BLOCK;
        out.resize(padded as usize, b' ');
        out
    }

    /// Parse a header block.
    pub fn parse(buf: &[u8]) -> Result<(FitsHeader, u64), IoErr> {
        if buf.len() < CARD {
            return Err(IoErr::Invalid);
        }
        let mut bitpix: Option<i32> = None;
        let mut naxis: Option<usize> = None;
        let mut naxes: Vec<(usize, u64)> = Vec::new();
        let mut simple = false;
        let mut end_at: Option<usize> = None;
        for (i, card) in buf.chunks(CARD).enumerate() {
            let text = std::str::from_utf8(card).map_err(|_| IoErr::Invalid)?;
            let key = text[..8.min(text.len())].trim();
            if key == "END" {
                end_at = Some(i);
                break;
            }
            let value = text.split('=').nth(1).map(str::trim).unwrap_or("");
            match key {
                "SIMPLE" => simple = value.starts_with('T'),
                "BITPIX" => bitpix = value.parse().ok(),
                "NAXIS" => naxis = value.parse().ok(),
                k if k.starts_with("NAXIS") => {
                    let idx: usize = k[5..].parse().map_err(|_| IoErr::Invalid)?;
                    naxes.push((idx, value.parse().map_err(|_| IoErr::Invalid)?));
                }
                _ => {}
            }
        }
        let end_at = end_at.ok_or(IoErr::Invalid)?;
        if !simple {
            return Err(IoErr::Invalid);
        }
        let bitpix = bitpix.ok_or(IoErr::Invalid)?;
        let n = naxis.ok_or(IoErr::Invalid)?;
        naxes.sort_by_key(|&(i, _)| i);
        if naxes.len() != n {
            return Err(IoErr::Invalid);
        }
        let header = FitsHeader {
            bitpix,
            naxes: naxes.into_iter().map(|(_, v)| v).collect(),
        };
        // Header occupies blocks up to and including the END card.
        let bytes = ((end_at + 1) * CARD) as u64;
        let header_len = bytes.div_ceil(BLOCK) * BLOCK;
        Ok((header, header_len))
    }
}

/// An open FITS file.
pub struct FitsFile {
    stream: FileStream,
    path_id: recorder_sim::record::FileId,
    /// Parsed header.
    pub header: FitsHeader,
    /// Byte offset of the image payload.
    pub data_offset: u64,
}

/// Write a complete FITS file (header + synthetic image).
pub fn save(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    header: &FitsHeader,
    seed: u64,
    now: SimTime,
) -> (Result<(), IoErr>, SimTime) {
    let (h, t) = stdio::fopen_buffered(w, rank, path, "w", FITS_BUFSIZE, now);
    let h = match h {
        Ok(h) => h,
        Err(e) => return (Err(e), t),
    };
    let enc = header.encode();
    let (res, t) = stdio::fwrite(w, rank, h, &enc, t);
    if let Err(e) = res {
        return (Err(e), t);
    }
    let (res, t) = stdio::fwrite_pattern(w, rank, h, header.padded_data_bytes(), seed, t);
    if let Err(e) = res {
        return (Err(e), t);
    }
    stdio::fclose(w, rank, h, t)
}

/// Open a FITS file and parse its header.
pub fn open(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    now: SimTime,
) -> (Result<FitsFile, IoErr>, SimTime) {
    let t0 = now;
    let (h, t) = stdio::fopen_buffered(w, rank, path, "r", FITS_BUFSIZE, now);
    let h = match h {
        Ok(h) => h,
        Err(e) => return (Err(e), t),
    };
    let (block, t) = stdio::fread_data(w, rank, h, BLOCK, t);
    let block = match block {
        Ok(b) => b,
        Err(e) => return (Err(e), t),
    };
    let (header, data_offset) = match FitsHeader::parse(&block) {
        Ok(x) => x,
        Err(e) => return (Err(e), t),
    };
    let path_id = w.tracer.file_id(path);
    let end = w.trace_io(
        rank,
        Layer::HighLevel,
        OpKind::Open,
        t0,
        t,
        Some(path_id),
        0,
        0,
    );
    (
        Ok(FitsFile {
            stream: h,
            path_id,
            header,
            data_offset,
        }),
        end,
    )
}

impl FitsFile {
    /// Read the whole image payload in FITS-buffer-sized sweeps.
    pub fn read_image(
        &self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let (res, t) = stdio::fseek(
            w,
            rank,
            self.stream,
            self.data_offset as i64,
            crate::posix::Whence::Set,
            now,
        );
        if let Err(e) = res {
            return (Err(e), t);
        }
        let (res, t) = stdio::fread(w, rank, self.stream, self.header.padded_data_bytes(), t);
        let n = match res {
            Ok(n) => n,
            Err(e) => return (Err(e), t),
        };
        let end = w.trace_io(
            rank,
            Layer::HighLevel,
            OpKind::Read,
            t0,
            t,
            Some(self.path_id),
            self.data_offset,
            n,
        );
        (Ok(n), end)
    }

    /// Close the file.
    pub fn close(
        self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<(), IoErr>, SimTime) {
        stdio::fclose(w, rank, self.stream, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Dur;

    #[test]
    fn header_encode_parse_round_trip() {
        let h = FitsHeader {
            bitpix: 16,
            naxes: vec![1024, 1024],
        };
        let enc = h.encode();
        assert_eq!(enc.len() as u64 % BLOCK, 0);
        let (parsed, hlen) = FitsHeader::parse(&enc).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(hlen, BLOCK);
        assert_eq!(h.data_bytes(), 1024 * 1024 * 2);
        assert_eq!(h.padded_data_bytes() % BLOCK, 0);
    }

    #[test]
    fn negative_bitpix_floats() {
        let h = FitsHeader {
            bitpix: -32,
            naxes: vec![100, 50],
        };
        assert_eq!(h.data_bytes(), 100 * 50 * 4);
        let (parsed, _) = FitsHeader::parse(&h.encode()).unwrap();
        assert_eq!(parsed.bitpix, -32);
    }

    #[test]
    fn save_open_read_cycle_uses_64k_buffers() {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 2);
        let r = RankId(0);
        let h = FitsHeader {
            bitpix: 16,
            naxes: vec![1024, 1024],
        };
        let (res, t) = save(&mut w, r, "/p/gpfs1/ngc3372.fits", &h, 3, SimTime::ZERO);
        res.unwrap();
        let (f, t) = open(&mut w, r, "/p/gpfs1/ngc3372.fits", t);
        let f = f.unwrap();
        assert_eq!(f.header, h);
        let before = w.tracer.len();
        let (n, t) = f.read_image(&mut w, r, t);
        assert_eq!(n.unwrap(), h.padded_data_bytes());
        let (res, _) = f.close(&mut w, r, t);
        res.unwrap();
        // The bulk read bypasses the 64 KiB buffer as one large POSIX read
        // (cfitsio reads image data in big sequential sweeps).
        let posix_read_sizes: Vec<u64> = w.tracer.records()[before..]
            .iter()
            .filter(|rec| rec.layer == Layer::Posix && rec.op == OpKind::Read)
            .map(|rec| rec.bytes)
            .collect();
        assert!(!posix_read_sizes.is_empty());
    }

    #[test]
    fn missing_end_card_is_invalid() {
        let mut buf = FitsHeader {
            bitpix: 8,
            naxes: vec![4],
        }
        .encode();
        // Blank out the END card.
        for b in buf.iter_mut() {
            if *b == b'E' {
                *b = b' ';
            }
        }
        assert_eq!(FitsHeader::parse(&buf), Err(IoErr::Invalid));
    }
}
