//! The POSIX interface: timed syscalls over the storage system with a
//! per-process descriptor table.
//!
//! Every call appends a `Posix`-layer trace record. Data can be written as
//! real bytes (format layers need round-trips) or as synthetic pattern fills
//! (bulk checkpoint bodies), and reads can either materialize bytes or just
//! account for them — see `storage-sim`'s segment model.

use crate::world::{IoWorld, OpenFile};
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::SimTime;
use std::sync::Arc;
use storage_sim::file::Segment;
use storage_sim::IoErr;

/// A POSIX file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Open flags (a simplified `O_*` set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Create if missing (`O_CREAT`).
    pub create: bool,
    /// Fail if it already exists (`O_EXCL`).
    pub exclusive: bool,
    /// Allow writes (`O_WRONLY`/`O_RDWR`).
    pub write: bool,
    /// Truncate on open (`O_TRUNC`).
    pub truncate: bool,
    /// Position writes at EOF (`O_APPEND`).
    pub append: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> Self {
        OpenFlags::default()
    }

    /// Create-or-truncate for writing (`O_CREAT|O_WRONLY|O_TRUNC`).
    pub fn write_create() -> Self {
        OpenFlags {
            create: true,
            write: true,
            truncate: true,
            ..Default::default()
        }
    }

    /// Read-write without truncation.
    pub fn read_write() -> Self {
        OpenFlags {
            write: true,
            ..Default::default()
        }
    }

    /// Append-mode create.
    pub fn append() -> Self {
        OpenFlags {
            create: true,
            write: true,
            append: true,
            ..Default::default()
        }
    }
}

/// `lseek` whence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the beginning.
    Set,
    /// Relative to the current position.
    Cur,
    /// Relative to EOF.
    End,
}

/// Open a file. Returns the descriptor and the completion time.
pub fn open(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    flags: OpenFlags,
    now: SimTime,
) -> (Result<Fd, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let path_id = w.tracer.file_id(path);
    let op = if flags.create {
        OpKind::Create
    } else {
        OpKind::Open
    };
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), 0, 0, now, |w, t| {
            w.storage.open(node, path, flags.create, flags.exclusive, t)
        });
    match res.map(|h| (h, t_settle)) {
        Ok((handle, t_open)) => {
            let mut end = t_open;
            let mut size = match handle.tier {
                storage_sim::mounts::Tier::Pfs => {
                    w.storage.pfs().store().size_of(handle.key).unwrap_or(0)
                }
                storage_sim::mounts::Tier::NodeLocal(i) => w.storage.locals()[i as usize]
                    .store(node)
                    .size_of(handle.key)
                    .unwrap_or(0),
            };
            if flags.truncate && flags.write && size > 0 {
                match handle.tier {
                    storage_sim::mounts::Tier::Pfs => {
                        let _ = w.storage.pfs_mut().store_mut().truncate(handle.key, 0);
                    }
                    storage_sim::mounts::Tier::NodeLocal(i) => {
                        let _ = w.storage.locals_mut()[i as usize]
                            .store_mut(node)
                            .truncate(handle.key, 0);
                    }
                }
                size = 0;
            }
            let slot = match w.proc_mut(rank).alloc_fd() {
                Some(s) => s,
                None => {
                    let end = w.trace_io(rank, Layer::Posix, op, now, end, Some(path_id), 0, 0);
                    return (Err(IoErr::TooManyOpenFiles), end);
                }
            };
            w.proc_mut(rank).fds[slot] = Some(OpenFile {
                handle,
                pos: 0,
                path_id,
                writable: flags.write,
                append: flags.append,
                known_size: size,
            });
            end = w.trace_io(rank, Layer::Posix, op, now, end, Some(path_id), 0, 0);
            (Ok(Fd(slot as u32)), end)
        }
        Err(e) => {
            let end = w.trace_io(rank, Layer::Posix, op, now, t_settle, Some(path_id), 0, 0);
            (Err(e), end)
        }
    }
}

/// Close a descriptor.
pub fn close(w: &mut IoWorld, rank: RankId, fd: Fd, now: SimTime) -> (Result<(), IoErr>, SimTime) {
    let node = w.node_of(rank);
    let Some(of) = w.procs[rank.0 as usize]
        .fds
        .get_mut(fd.0 as usize)
        .and_then(Option::take)
    else {
        return (Err(IoErr::BadFd), now);
    };
    let t = w.storage.close(node, of.handle, now);
    let end = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Close,
        now,
        t,
        Some(of.path_id),
        0,
        0,
    );
    (Ok(()), end)
}

fn resolve_write_pos(of: &OpenFile) -> u64 {
    if of.append {
        of.known_size
    } else {
        of.pos
    }
}

/// Write real bytes at the current position.
pub fn write(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    data: &[u8],
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let seg = Segment::Bytes(Arc::new(data.to_vec()));
    write_seg(w, rank, fd, None, seg, now)
}

/// Write a synthetic pattern of `len` bytes at the current position.
pub fn write_pattern(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    len: u64,
    seed: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    write_seg(w, rank, fd, None, Segment::Pattern { seed, len }, now)
}

/// `pwrite`: write at an explicit offset without moving the position.
pub fn write_at(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: u64,
    data: &[u8],
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    write_seg(
        w,
        rank,
        fd,
        Some(offset),
        Segment::Bytes(Arc::new(data.to_vec())),
        now,
    )
}

/// `pwrite` of a synthetic pattern.
pub fn write_pattern_at(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: u64,
    len: u64,
    seed: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    write_seg(
        w,
        rank,
        fd,
        Some(offset),
        Segment::Pattern { seed, len },
        now,
    )
}

fn write_seg(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: Option<u64>,
    seg: Segment,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let (handle, path_id, pos, advance) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        if !of.writable {
            return (Err(IoErr::ReadOnly), now);
        }
        let pos = offset.unwrap_or_else(|| resolve_write_pos(of));
        (of.handle, of.path_id, pos, offset.is_none())
    };
    // The segment is cloned per attempt: a transiently-failed write never
    // reaches the store, so the retry must re-submit the same payload.
    let bytes = seg.len();
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), pos, bytes, now, |w, t| {
            w.storage.write(node, handle, pos, seg.clone(), t)
        });
    match res.map(|n| (n, t_settle)) {
        Ok((n, t)) => {
            {
                let of = w.procs[rank.0 as usize].fds[fd.0 as usize]
                    .as_mut()
                    .expect("fd checked above");
                if advance {
                    of.pos = pos + n;
                }
                of.known_size = of.known_size.max(pos + n);
            }
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Write,
                now,
                t,
                Some(path_id),
                pos,
                n,
            );
            (Ok(n), end)
        }
        Err(e) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Write,
                now,
                t_settle,
                Some(path_id),
                pos,
                0,
            );
            (Err(e), end)
        }
    }
}

/// Timing-only read of `len` bytes at the current position; returns bytes
/// actually read (0 at EOF) and advances the position.
pub fn read(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    len: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    read_common(w, rank, fd, None, len, now)
}

/// `pread`: timing-only read at an explicit offset.
pub fn read_at(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: u64,
    len: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    read_common(w, rank, fd, Some(offset), len, now)
}

fn read_common(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: Option<u64>,
    len: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let (handle, path_id, pos) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id, offset.unwrap_or(of.pos))
    };
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), pos, len, now, |w, t| {
            w.storage.read_len(node, handle, pos, len, t)
        });
    match res.map(|n| (n, t_settle)) {
        Ok((n, t)) => {
            if offset.is_none() {
                let of = w.procs[rank.0 as usize].fds[fd.0 as usize]
                    .as_mut()
                    .expect("fd checked above");
                of.pos = pos + n;
            }
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t,
                Some(path_id),
                pos,
                n,
            );
            (Ok(n), end)
        }
        Err(e) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t_settle,
                Some(path_id),
                pos,
                0,
            );
            (Err(e), end)
        }
    }
}

/// Materializing read at the current position.
pub fn read_data(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    len: u64,
    now: SimTime,
) -> (Result<Vec<u8>, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let (handle, path_id, pos) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id, of.pos)
    };
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), pos, len, now, |w, t| {
            w.storage.read_data(node, handle, pos, len, t)
        });
    match res.map(|d| (d, t_settle)) {
        Ok((data, t)) => {
            let n = data.len() as u64;
            w.procs[rank.0 as usize].fds[fd.0 as usize]
                .as_mut()
                .expect("fd checked above")
                .pos = pos + n;
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t,
                Some(path_id),
                pos,
                n,
            );
            (Ok(data), end)
        }
        Err(e) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t_settle,
                Some(path_id),
                pos,
                0,
            );
            (Err(e), end)
        }
    }
}

/// Reposition a descriptor; returns the new absolute position. Traced as a
/// metadata (`Seek`) record with zero storage cost, like a real `lseek`.
pub fn lseek(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: i64,
    whence: Whence,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let (path_id, new_pos) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        let base = match whence {
            Whence::Set => 0i128,
            Whence::Cur => of.pos as i128,
            Whence::End => of.known_size as i128,
        };
        let target = base + offset as i128;
        if target < 0 {
            return (Err(IoErr::Invalid), now);
        }
        (of.path_id, target as u64)
    };
    w.procs[rank.0 as usize].fds[fd.0 as usize]
        .as_mut()
        .expect("fd checked above")
        .pos = new_pos;
    let end = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Seek,
        now,
        now,
        Some(path_id),
        new_pos,
        0,
    );
    (Ok(new_pos), end)
}

/// Flush a descriptor to stable storage.
pub fn fsync(w: &mut IoWorld, rank: RankId, fd: Fd, now: SimTime) -> (Result<(), IoErr>, SimTime) {
    let node = w.node_of(rank);
    let (handle, path_id) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id)
    };
    let t = w.storage.fsync(node, handle, now);
    let end = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Sync,
        now,
        t,
        Some(path_id),
        0,
        0,
    );
    (Ok(()), end)
}

/// `fstat`: metadata query on an open descriptor — one MDS round trip on
/// the PFS (this is the call HDF5's collective-metadata validation turns
/// into, which is what storms the metadata service in CosmoFlow).
pub fn fstat(w: &mut IoWorld, rank: RankId, fd: Fd, now: SimTime) -> (Result<u64, IoErr>, SimTime) {
    let (handle, path_id, size) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id, of.known_size)
    };
    let t = match handle.tier {
        storage_sim::mounts::Tier::Pfs => w.storage.pfs_mut().meta_op(now),
        storage_sim::mounts::Tier::NodeLocal(_) => now + sim_core::Dur::from_nanos(400),
    };
    let end = w.trace_io(
        rank,
        Layer::Posix,
        OpKind::Stat,
        now,
        t,
        Some(path_id),
        0,
        0,
    );
    (Ok(size), end)
}

/// Stat a path; returns the file size.
pub fn stat(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let path_id = w.tracer.file_id(path);
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), 0, 0, now, |w, t| {
            w.storage.stat(node, path, t)
        });
    match res {
        Ok(size) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Stat,
                now,
                t_settle,
                Some(path_id),
                0,
                0,
            );
            (Ok(size), end)
        }
        Err(e) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Stat,
                now,
                t_settle,
                Some(path_id),
                0,
                0,
            );
            (Err(e), end)
        }
    }
}

/// Unlink a path.
pub fn unlink(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    now: SimTime,
) -> (Result<(), IoErr>, SimTime) {
    let node = w.node_of(rank);
    let path_id = w.tracer.file_id(path);
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), 0, 0, now, |w, t| {
            w.storage.unlink(node, path, t).map(|end| ((), end))
        });
    match res {
        Ok(()) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Unlink,
                now,
                t_settle,
                Some(path_id),
                0,
                0,
            );
            (Ok(()), end)
        }
        Err(e) => {
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Unlink,
                now,
                t_settle,
                Some(path_id),
                0,
                0,
            );
            (Err(e), end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Dur;

    fn world() -> IoWorld {
        IoWorld::lassen(2, 2, Dur::from_secs(3600), 5)
    }

    #[test]
    fn open_write_read_close_round_trip() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/t.bin",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (n, t2) = write(&mut w, r, fd, b"hello", t);
        assert_eq!(n.unwrap(), 5);
        let (pos, t3) = lseek(&mut w, r, fd, 0, Whence::Set, t2);
        assert_eq!(pos.unwrap(), 0);
        let (data, t4) = read_data(&mut w, r, fd, 5, t3);
        assert_eq!(data.unwrap(), b"hello");
        let (res, _) = close(&mut w, r, fd, t4);
        res.unwrap();
        // Trace has create, write, seek, read, close at POSIX layer.
        let ops: Vec<OpKind> = w.tracer.records().iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                OpKind::Create,
                OpKind::Write,
                OpKind::Seek,
                OpKind::Read,
                OpKind::Close
            ]
        );
        assert!(w.tracer.records().iter().all(|r| r.layer == Layer::Posix));
    }

    #[test]
    fn position_advances_and_eof_reads_zero() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/x",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = write_pattern(&mut w, r, fd, 100, 1, t);
        let (pos, t) = lseek(&mut w, r, fd, 0, Whence::Set, t);
        assert_eq!(pos.unwrap(), 0);
        let (n1, t) = read(&mut w, r, fd, 60, t);
        assert_eq!(n1.unwrap(), 60);
        let (n2, t) = read(&mut w, r, fd, 60, t);
        assert_eq!(n2.unwrap(), 40);
        let (n3, _) = read(&mut w, r, fd, 60, t);
        assert_eq!(n3.unwrap(), 0); // EOF
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/log",
            OpenFlags::append(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = write(&mut w, r, fd, b"aaa", t);
        // Seek somewhere irrelevant; append ignores it.
        let (_, t) = lseek(&mut w, r, fd, 0, Whence::Set, t);
        let (_, t) = write(&mut w, r, fd, b"bbb", t);
        let (_, t) = lseek(&mut w, r, fd, 0, Whence::Set, t);
        let (data, _) = read_data(&mut w, r, fd, 6, t);
        assert_eq!(data.unwrap(), b"aaabbb");
    }

    #[test]
    fn truncate_on_open_clears_contents() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/tr",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let (_, t) = write(&mut w, r, fd.unwrap(), b"data", t);
        let (_, t) = close(&mut w, r, fd.unwrap(), t);
        let (fd2, t) = open(&mut w, r, "/p/gpfs1/tr", OpenFlags::write_create(), t);
        let (size, _) = stat(&mut w, r, "/p/gpfs1/tr", t);
        assert_eq!(size.unwrap(), 0);
        let _ = fd2;
    }

    #[test]
    fn read_only_fd_rejects_writes() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/ro",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let (_, t) = close(&mut w, r, fd.unwrap(), t);
        let (fd, t) = open(&mut w, r, "/p/gpfs1/ro", OpenFlags::read_only(), t);
        let (res, _) = write(&mut w, r, fd.unwrap(), b"x", t);
        assert_eq!(res.unwrap_err(), IoErr::ReadOnly);
    }

    #[test]
    fn bad_fd_is_rejected_everywhere() {
        let mut w = world();
        let r = RankId(0);
        let bad = Fd(42);
        assert_eq!(
            read(&mut w, r, bad, 1, SimTime::ZERO).0.unwrap_err(),
            IoErr::BadFd
        );
        assert_eq!(
            write(&mut w, r, bad, b"x", SimTime::ZERO).0.unwrap_err(),
            IoErr::BadFd
        );
        assert_eq!(
            close(&mut w, r, bad, SimTime::ZERO).0.unwrap_err(),
            IoErr::BadFd
        );
        assert_eq!(
            lseek(&mut w, r, bad, 0, Whence::Set, SimTime::ZERO)
                .0
                .unwrap_err(),
            IoErr::BadFd
        );
    }

    #[test]
    fn fd_exhaustion_returns_emfile() {
        let mut w = world();
        let r = RankId(0);
        w.proc_mut(r).max_fds = 3;
        let mut t = SimTime::ZERO;
        let mut fds = Vec::new();
        for i in 0..3 {
            let (fd, t2) = open(
                &mut w,
                r,
                &format!("/p/gpfs1/f{i}"),
                OpenFlags::write_create(),
                t,
            );
            fds.push(fd.unwrap());
            t = t2;
        }
        let (res, t) = open(&mut w, r, "/p/gpfs1/f3", OpenFlags::write_create(), t);
        assert_eq!(res.unwrap_err(), IoErr::TooManyOpenFiles);
        // Closing one frees a slot.
        let (_, t) = close(&mut w, r, fds[1], t);
        let (res, _) = open(&mut w, r, "/p/gpfs1/f4", OpenFlags::write_create(), t);
        assert!(res.is_ok());
    }

    #[test]
    fn ranks_have_independent_fd_tables() {
        let mut w = world();
        let (fd0, t) = open(
            &mut w,
            RankId(0),
            "/p/gpfs1/a",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let (fd1, _) = open(
            &mut w,
            RankId(1),
            "/p/gpfs1/b",
            OpenFlags::write_create(),
            t,
        );
        // Both get fd 0 in their own tables.
        assert_eq!(fd0.unwrap(), Fd(0));
        assert_eq!(fd1.unwrap(), Fd(0));
    }

    #[test]
    fn pwrite_pread_do_not_move_position() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/p",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = write_at(&mut w, r, fd, 10, b"zz", t);
        let (n, t) = read_at(&mut w, r, fd, 10, 2, t);
        assert_eq!(n.unwrap(), 2);
        // Position still 0: a normal read starts from the beginning.
        let (data, _) = read_data(&mut w, r, fd, 2, t);
        assert_eq!(data.unwrap(), vec![0, 0]);
    }

    #[test]
    fn shm_paths_work_through_posix() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/dev/shm/fast",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let start = t;
        let (_, t) = write_pattern(&mut w, r, fd, 1 << 20, 1, t);
        // 1 MiB to shm takes ~32 µs, while GPFS would take milliseconds.
        assert!(t.since(start) < Dur::from_micros(200));
    }
}
