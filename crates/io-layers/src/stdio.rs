//! Buffered C stdio over POSIX.
//!
//! `fwrite`/`fread` coalesce small application calls into buffer-sized POSIX
//! operations — this is why Montage's millions of sub-4 KiB record accesses
//! do not turn into millions of syscalls, and why its STDIO-level transfer
//! sizes differ from the POSIX-level ones in the multi-level trace.
//!
//! Buffer hits cost a memcpy; misses flush/fill through [`crate::posix`],
//! whose records appear beneath the `Stdio` records in the trace.

use crate::posix::{self, Fd, OpenFlags, Whence};
use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::units::GIB;
use sim_core::{Dur, SimTime};
use storage_sim::file::pattern_byte;
use storage_sim::IoErr;

/// Default stream buffer size (glibc's `BUFSIZ`).
pub const BUFSIZ: u64 = 8192;

/// Cost of moving `bytes` through the user-space buffer.
fn memcpy_cost(bytes: u64) -> Dur {
    Dur::from_nanos(100) + Dur::for_transfer(bytes, 8 * GIB)
}

/// A buffered stream handle (`FILE*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileStream(pub u32);

/// Internal stream state, stored per process.
#[derive(Debug)]
pub struct Stream {
    fd: Fd,
    path_id: recorder_sim::record::FileId,
    bufsize: u64,
    /// Logical stream position.
    pos: u64,
    /// Pending write buffer: file offset of its first byte + contents.
    wbuf_start: u64,
    wbuf: Vec<u8>,
    /// Read cache: file offset of its first byte + contents.
    rbuf_start: u64,
    rbuf: Vec<u8>,
}

/// Per-process stream tables live in the world, keyed by rank.
#[derive(Debug, Default)]
pub struct StreamTable {
    streams: Vec<Option<Stream>>,
}

impl StreamTable {
    fn alloc(&mut self, s: Stream) -> FileStream {
        if let Some(i) = self.streams.iter().position(Option::is_none) {
            self.streams[i] = Some(s);
            FileStream(i as u32)
        } else {
            self.streams.push(Some(s));
            FileStream(self.streams.len() as u32 - 1)
        }
    }

    fn get(&mut self, h: FileStream) -> Result<&mut Stream, IoErr> {
        self.streams
            .get_mut(h.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(IoErr::BadFd)
    }

    fn take(&mut self, h: FileStream) -> Result<Stream, IoErr> {
        self.streams
            .get_mut(h.0 as usize)
            .and_then(Option::take)
            .ok_or(IoErr::BadFd)
    }
}

fn tables(w: &mut IoWorld) -> &mut Vec<StreamTable> {
    &mut w.stdio_streams
}

/// Open a stream. Modes: `"r"`, `"w"`, `"a"`, `"r+"`, `"w+"`.
pub fn fopen(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    mode: &str,
    now: SimTime,
) -> (Result<FileStream, IoErr>, SimTime) {
    fopen_buffered(w, rank, path, mode, BUFSIZ, now)
}

/// Open a stream with an explicit buffer size (`setvbuf`).
pub fn fopen_buffered(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    mode: &str,
    bufsize: u64,
    now: SimTime,
) -> (Result<FileStream, IoErr>, SimTime) {
    let flags = match mode {
        "r" => OpenFlags::read_only(),
        "r+" => OpenFlags::read_write(),
        "w" | "w+" => OpenFlags::write_create(),
        "a" | "a+" => OpenFlags::append(),
        _ => return (Err(IoErr::Invalid), now),
    };
    let t0 = now;
    let (fd, t) = posix::open(w, rank, path, flags, now);
    let fd = match fd {
        Ok(f) => f,
        Err(e) => {
            let end = w.trace_io(rank, Layer::Stdio, OpKind::Open, t0, t, None, 0, 0);
            return (Err(e), end);
        }
    };
    let path_id = w.tracer.file_id(path);
    let stream = Stream {
        fd,
        path_id,
        bufsize: bufsize.max(1),
        pos: 0,
        wbuf_start: 0,
        wbuf: Vec::new(),
        rbuf_start: 0,
        rbuf: Vec::new(),
    };
    let h = tables(w)[rank.0 as usize].alloc(stream);
    let op = if matches!(mode, "w" | "w+" | "a" | "a+") {
        OpKind::Create
    } else {
        OpKind::Open
    };
    let end = w.trace_io(rank, Layer::Stdio, op, t0, t, Some(path_id), 0, 0);
    (Ok(h), end)
}

/// Flush the write buffer through POSIX; returns completion time.
fn flush_wbuf(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    now: SimTime,
) -> Result<SimTime, IoErr> {
    let (fd, start, buf) = {
        let s = tables(w)[rank.0 as usize].get(h)?;
        if s.wbuf.is_empty() {
            return Ok(now);
        }
        let buf = std::mem::take(&mut s.wbuf);
        (s.fd, s.wbuf_start, buf)
    };
    let (res, t) = posix::write_at(w, rank, fd, start, &buf, now);
    res?;
    Ok(t)
}

/// `fflush`: drain the write buffer.
pub fn fflush(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    now: SimTime,
) -> (Result<(), IoErr>, SimTime) {
    let path_id = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => s.path_id,
        Err(e) => return (Err(e), now),
    };
    match flush_wbuf(w, rank, h, now) {
        Ok(t) => {
            let end = w.trace_io(
                rank,
                Layer::Stdio,
                OpKind::Sync,
                now,
                t,
                Some(path_id),
                0,
                0,
            );
            (Ok(()), end)
        }
        Err(e) => (Err(e), now),
    }
}

/// Write bytes through the stream buffer.
pub fn fwrite(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    data: &[u8],
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    fwrite_inner(w, rank, h, data, now)
}

/// Write a synthetic pattern through the stream buffer. Patterns small
/// enough to buffer are materialized (the buffer is at most `bufsize`);
/// larger ones bypass the buffer as a direct POSIX pattern write.
pub fn fwrite_pattern(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    len: u64,
    seed: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let bufsize = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => s.bufsize,
        Err(e) => return (Err(e), now),
    };
    if len <= bufsize {
        let data: Vec<u8> = (0..len).map(|i| pattern_byte(seed, i)).collect();
        return fwrite_inner(w, rank, h, &data, now);
    }
    // Large write: flush pending buffer, then write directly.
    let t0 = now;
    let (fd, pos, path_id) = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => (s.fd, s.pos, s.path_id),
        Err(e) => return (Err(e), now),
    };
    let t = match flush_wbuf(w, rank, h, now) {
        Ok(t) => t,
        Err(e) => return (Err(e), now),
    };
    let (res, t2) = posix::write_pattern_at(w, rank, fd, pos, len, seed, t);
    match res {
        Ok(n) => {
            let s = tables(w)[rank.0 as usize].get(h).expect("stream exists");
            s.pos += n;
            s.rbuf.clear();
            let end = w.trace_io(
                rank,
                Layer::Stdio,
                OpKind::Write,
                t0,
                t2,
                Some(path_id),
                pos,
                n,
            );
            (Ok(n), end)
        }
        Err(e) => (Err(e), t2),
    }
}

fn fwrite_inner(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    data: &[u8],
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let t0 = now;
    let (path_id, pos) = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => (s.path_id, s.pos),
        Err(e) => return (Err(e), now),
    };
    let mut t = now;
    let mut written = 0u64;
    let mut remaining = data;
    while !remaining.is_empty() {
        // Check buffer adjacency and capacity.
        let (needs_flush, take) = {
            let s = tables(w)[rank.0 as usize].get(h).expect("checked");
            let buf_end = s.wbuf_start + s.wbuf.len() as u64;
            let adjacent = s.wbuf.is_empty() || buf_end == s.pos;
            if !adjacent || s.wbuf.len() as u64 >= s.bufsize {
                (true, 0usize)
            } else {
                let space = (s.bufsize - s.wbuf.len() as u64) as usize;
                (false, space.min(remaining.len()))
            }
        };
        if needs_flush {
            t = match flush_wbuf(w, rank, h, t) {
                Ok(t2) => t2,
                Err(e) => return (Err(e), t),
            };
            let s = tables(w)[rank.0 as usize].get(h).expect("checked");
            s.wbuf_start = s.pos;
            continue;
        }
        let s = tables(w)[rank.0 as usize].get(h).expect("checked");
        if s.wbuf.is_empty() {
            s.wbuf_start = s.pos;
        }
        s.wbuf.extend_from_slice(&remaining[..take]);
        s.pos += take as u64;
        written += take as u64;
        remaining = &remaining[take..];
        t = t + memcpy_cost(take as u64);
    }
    // Invalidate the read cache on writes.
    tables(w)[rank.0 as usize]
        .get(h)
        .expect("checked")
        .rbuf
        .clear();
    let end = w.trace_io(
        rank,
        Layer::Stdio,
        OpKind::Write,
        t0,
        t,
        Some(path_id),
        pos,
        written,
    );
    (Ok(written), end)
}

/// Read `len` bytes through the stream buffer (timing + count only; bulk
/// reads larger than the buffer are accounted without materializing, so a
/// 750 MiB FITS sweep costs no memory).
pub fn fread(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    len: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    match fread_impl(w, rank, h, len, now, false) {
        (Ok((n, _)), t) => (Ok(n), t),
        (Err(e), t) => (Err(e), t),
    }
}

/// Read and materialize `len` bytes through the stream buffer.
pub fn fread_data(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    len: u64,
    now: SimTime,
) -> (Result<Vec<u8>, IoErr>, SimTime) {
    match fread_impl(w, rank, h, len, now, true) {
        (Ok((_, d)), t) => (Ok(d), t),
        (Err(e), t) => (Err(e), t),
    }
}

fn fread_impl(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    len: u64,
    now: SimTime,
    materialize: bool,
) -> (Result<(u64, Vec<u8>), IoErr>, SimTime) {
    let t0 = now;
    let (path_id, start_pos) = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => (s.path_id, s.pos),
        Err(e) => return (Err(e), now),
    };
    // Writes must land before reads observe the file.
    let mut t = match flush_wbuf(w, rank, h, now) {
        Ok(t) => t,
        Err(e) => return (Err(e), now),
    };
    let mut out: Vec<u8> = Vec::with_capacity(if materialize {
        len.min(1 << 20) as usize
    } else {
        0
    });
    let mut count = 0u64;
    let mut remaining = len;
    while remaining > 0 {
        let (fd, pos, bufsize, hit) = {
            let s = tables(w)[rank.0 as usize].get(h).expect("checked");
            let rb_end = s.rbuf_start + s.rbuf.len() as u64;
            let hit = s.pos >= s.rbuf_start && s.pos < rb_end;
            (s.fd, s.pos, s.bufsize, hit)
        };
        if hit {
            let s = tables(w)[rank.0 as usize].get(h).expect("checked");
            let off_in = (s.pos - s.rbuf_start) as usize;
            let take = ((s.rbuf.len() - off_in) as u64).min(remaining) as usize;
            if materialize {
                out.extend_from_slice(&s.rbuf[off_in..off_in + take]);
            }
            count += take as u64;
            s.pos += take as u64;
            remaining -= take as u64;
            t = t + memcpy_cost(take as u64);
            continue;
        }
        if remaining >= bufsize && !materialize {
            // Large timing-only read: bypass the buffer and account bytes
            // without materializing them.
            let (res, t2) = posix::read_at(w, rank, fd, pos, remaining, t);
            match res {
                Ok(0) => {
                    t = t2;
                    break;
                }
                Ok(n) => {
                    count += n;
                    let s = tables(w)[rank.0 as usize].get(h).expect("checked");
                    s.pos += n;
                    remaining -= n;
                    t = t2;
                    if n < remaining + n {
                        // Short read = EOF.
                        if n < bufsize {
                            break;
                        }
                    }
                }
                Err(e) => return (Err(e), t2),
            }
            continue;
        }
        if remaining >= bufsize && materialize {
            // Large materializing read: fetch the exact range.
            let (res, t2) = read_fill_exact(w, rank, fd, pos, remaining, t);
            match res {
                Ok(data) => {
                    if data.is_empty() {
                        t = t2;
                        break;
                    }
                    let n = data.len() as u64;
                    out.extend_from_slice(&data);
                    count += n;
                    let s = tables(w)[rank.0 as usize].get(h).expect("checked");
                    s.pos += n;
                    remaining -= n;
                    t = t2;
                    if n < bufsize {
                        break; // EOF
                    }
                }
                Err(e) => return (Err(e), t2),
            }
            continue;
        }
        // Fill the read cache with one buffer-sized POSIX read.
        let (data, t2) = {
            let (res, t2) = read_fill(w, rank, fd, pos, bufsize, t);
            match res {
                Ok(d) => (d, t2),
                Err(e) => return (Err(e), t2),
            }
        };
        t = t2;
        if data.is_empty() {
            break; // EOF
        }
        let s = tables(w)[rank.0 as usize].get(h).expect("checked");
        s.rbuf_start = pos;
        s.rbuf = data;
    }
    let end = w.trace_io(
        rank,
        Layer::Stdio,
        OpKind::Read,
        t0,
        t,
        Some(path_id),
        start_pos,
        count,
    );
    (Ok((count, out)), end)
}

/// Materializing pread of an exact range (large `fread_data` path).
fn read_fill_exact(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    pos: u64,
    len: u64,
    now: SimTime,
) -> (Result<Vec<u8>, IoErr>, SimTime) {
    let node = w.node_of(rank);
    let (handle, path_id) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id)
    };
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), pos, len, now, |w, t| {
            w.storage.read_data(node, handle, pos, len, t)
        });
    match res {
        Ok(data) => {
            let n = data.len() as u64;
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t_settle,
                Some(path_id),
                pos,
                n,
            );
            (Ok(data), end)
        }
        Err(e) => (Err(e), t_settle),
    }
}

fn read_fill(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    pos: u64,
    bufsize: u64,
    now: SimTime,
) -> (Result<Vec<u8>, IoErr>, SimTime) {
    // pread-style fill that materializes.
    let node = w.node_of(rank);
    let (handle, path_id) = {
        let Ok(of) = w.fd(rank, fd) else {
            return (Err(IoErr::BadFd), now);
        };
        (of.handle, of.path_id)
    };
    let (res, t_settle) =
        crate::resilience::with_retries(w, rank, Some(path_id), pos, bufsize, now, |w, t| {
            w.storage.read_data(node, handle, pos, bufsize, t)
        });
    match res {
        Ok(data) => {
            let n = data.len() as u64;
            let end = w.trace_io(
                rank,
                Layer::Posix,
                OpKind::Read,
                now,
                t_settle,
                Some(path_id),
                pos,
                n,
            );
            (Ok(data), end)
        }
        Err(e) => (Err(e), t_settle),
    }
}

/// Reposition the stream (flushes pending writes, drops the read cache).
pub fn fseek(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    offset: i64,
    whence: Whence,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let (fd, path_id) = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => (s.fd, s.path_id),
        Err(e) => return (Err(e), now),
    };
    let t = match flush_wbuf(w, rank, h, now) {
        Ok(t) => t,
        Err(e) => return (Err(e), now),
    };
    let (res, t2) = posix::lseek(w, rank, fd, offset, whence, t);
    match res {
        Ok(newpos) => {
            let s = tables(w)[rank.0 as usize].get(h).expect("checked");
            s.pos = newpos;
            s.rbuf.clear();
            let end = w.trace_io(
                rank,
                Layer::Stdio,
                OpKind::Seek,
                now,
                t2,
                Some(path_id),
                newpos,
                0,
            );
            (Ok(newpos), end)
        }
        Err(e) => (Err(e), t2),
    }
}

/// Current stream position.
pub fn ftell(w: &mut IoWorld, rank: RankId, h: FileStream) -> Result<u64, IoErr> {
    Ok(tables(w)[rank.0 as usize].get(h)?.pos)
}

/// Close the stream: flush, close the descriptor.
pub fn fclose(
    w: &mut IoWorld,
    rank: RankId,
    h: FileStream,
    now: SimTime,
) -> (Result<(), IoErr>, SimTime) {
    let path_id = match tables(w)[rank.0 as usize].get(h) {
        Ok(s) => s.path_id,
        Err(e) => return (Err(e), now),
    };
    let t = match flush_wbuf(w, rank, h, now) {
        Ok(t) => t,
        Err(e) => return (Err(e), now),
    };
    let s = match tables(w)[rank.0 as usize].take(h) {
        Ok(s) => s,
        Err(e) => return (Err(e), t),
    };
    let (res, t2) = posix::close(w, rank, s.fd, t);
    let end = w.trace_io(
        rank,
        Layer::Stdio,
        OpKind::Close,
        now,
        t2,
        Some(path_id),
        0,
        0,
    );
    (res, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::Layer as L;

    fn world() -> IoWorld {
        IoWorld::lassen(1, 2, Dur::from_secs(3600), 9)
    }

    #[test]
    fn buffered_writes_coalesce_into_few_posix_ops() {
        let mut w = world();
        let r = RankId(0);
        let (h, mut t) = fopen(&mut w, r, "/p/gpfs1/buf.dat", "w", SimTime::ZERO);
        let h = h.unwrap();
        // 64 writes of 256 B = 16 KiB = 2 × BUFSIZ flushes.
        for _ in 0..64 {
            let (n, t2) = fwrite(&mut w, r, h, &[7u8; 256], t);
            assert_eq!(n.unwrap(), 256);
            t = t2;
        }
        let (_, t) = fclose(&mut w, r, h, t);
        let _ = t;
        let posix_writes = w
            .tracer
            .records()
            .iter()
            .filter(|rec| rec.layer == L::Posix && rec.op == OpKind::Write)
            .count();
        let stdio_writes = w
            .tracer
            .records()
            .iter()
            .filter(|rec| rec.layer == L::Stdio && rec.op == OpKind::Write)
            .count();
        assert_eq!(stdio_writes, 64);
        assert_eq!(
            posix_writes, 2,
            "16 KiB should flush as two 8 KiB POSIX writes"
        );
    }

    #[test]
    fn data_round_trips_through_the_buffer() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/rt.dat", "w", SimTime::ZERO);
        let h = h.unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let (_, t) = fwrite(&mut w, r, h, &payload, t);
        let (_, t) = fclose(&mut w, r, h, t);
        let (h2, t) = fopen(&mut w, r, "/p/gpfs1/rt.dat", "r", t);
        let h2 = h2.unwrap();
        let (data, _) = fread_data(&mut w, r, h2, 1000, t);
        assert_eq!(data.unwrap(), payload);
    }

    #[test]
    fn buffered_reads_fill_once_then_hit() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/rd.dat", "w", SimTime::ZERO);
        let h = h.unwrap();
        let (_, t) = fwrite(&mut w, r, h, &vec![1u8; 8192], t);
        let (_, t) = fclose(&mut w, r, h, t);
        let n_posix_before = |w: &IoWorld| {
            w.tracer
                .records()
                .iter()
                .filter(|rec| rec.layer == L::Posix && rec.op == OpKind::Read)
                .count()
        };
        let (h, mut t2) = fopen(&mut w, r, "/p/gpfs1/rd.dat", "r", t);
        let h = h.unwrap();
        for _ in 0..32 {
            let (n, tn) = fread(&mut w, r, h, 256, t2);
            assert_eq!(n.unwrap(), 256);
            t2 = tn;
        }
        // 32 × 256 B = 8 KiB = exactly one buffer fill.
        assert_eq!(n_posix_before(&w), 1);
    }

    #[test]
    fn fseek_flushes_and_repositions() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/sk.dat", "w+", SimTime::ZERO);
        let h = h.unwrap();
        let (_, t) = fwrite(&mut w, r, h, b"abcdef", t);
        let (p, t) = fseek(&mut w, r, h, 2, Whence::Set, t);
        assert_eq!(p.unwrap(), 2);
        let (data, _) = fread_data(&mut w, r, h, 2, t);
        assert_eq!(data.unwrap(), b"cd");
    }

    #[test]
    fn large_writes_bypass_the_buffer() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/big.dat", "w", SimTime::ZERO);
        let h = h.unwrap();
        let (n, t) = fwrite_pattern(&mut w, r, h, 1 << 20, 3, t);
        assert_eq!(n.unwrap(), 1 << 20);
        let (_, _t) = fclose(&mut w, r, h, t);
        let posix_writes: Vec<u64> = w
            .tracer
            .records()
            .iter()
            .filter(|rec| rec.layer == L::Posix && rec.op == OpKind::Write)
            .map(|rec| rec.bytes)
            .collect();
        assert_eq!(posix_writes, vec![1 << 20]);
    }

    #[test]
    fn eof_reads_return_short() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/eof.dat", "w", SimTime::ZERO);
        let h = h.unwrap();
        let (_, t) = fwrite(&mut w, r, h, &[9u8; 100], t);
        let (_, t) = fclose(&mut w, r, h, t);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/eof.dat", "r", t);
        let h = h.unwrap();
        let (n, t) = fread(&mut w, r, h, 1000, t);
        assert_eq!(n.unwrap(), 100);
        let (n2, _) = fread(&mut w, r, h, 10, t);
        assert_eq!(n2.unwrap(), 0);
    }

    #[test]
    fn invalid_mode_is_rejected() {
        let mut w = world();
        let (res, _) = fopen(&mut w, RankId(0), "/p/gpfs1/x", "q", SimTime::ZERO);
        assert_eq!(res.unwrap_err(), IoErr::Invalid);
    }

    #[test]
    fn append_mode_via_stdio() {
        let mut w = world();
        let r = RankId(0);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/ap", "w", SimTime::ZERO);
        let (_, t) = fwrite(&mut w, r, h.unwrap(), b"xy", t);
        let (_, t) = fclose(&mut w, r, h.unwrap(), t);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/ap", "a", t);
        let h = h.unwrap();
        // Append starts at EOF once we seek there explicitly.
        let (_, t) = fseek(&mut w, r, h, 0, Whence::End, t);
        let (_, t) = fwrite(&mut w, r, h, b"z", t);
        let (_, t) = fclose(&mut w, r, h, t);
        let (h, t) = fopen(&mut w, r, "/p/gpfs1/ap", "r", t);
        let (data, _) = fread_data(&mut w, r, h.unwrap(), 10, t);
        assert_eq!(data.unwrap(), b"xyz");
    }
}
