//! MPI-IO over POSIX: independent and collective file access.
//!
//! Collective ("two-phase") I/O is modeled with ROMIO's structure: a subset
//! of ranks act as aggregators (`cb_nodes`, settable via the
//! `cb_config_list`-style hint the paper cites in §II-B), each moving its
//! share of the collective extent in `cb_buffer_size` chunks, while every
//! participant pays the data-exchange cost. The caller synchronizes the
//! participants with an engine collective around the call — the layer
//! handles per-rank work, the engine handles meeting up.
//!
//! Opening a shared file through MPI-IO is a *collective metadata* event:
//! every rank performs the POSIX open, which is what turns 50 000 shared
//! HDF5 files into the metadata storm CosmoFlow suffers from (Fig. 3).

use crate::posix::{self, Fd, OpenFlags};
use crate::world::IoWorld;
use hpc_cluster::mpi::{CollectiveKind, MpiCostModel};
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::units::MIB;
use sim_core::SimTime;
use storage_sim::IoErr;

/// ROMIO-style hints controlling collective buffering.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiIoHints {
    /// Number of aggregator ranks (`cb_nodes`); `None` = one per node.
    pub cb_nodes: Option<u32>,
    /// Collective buffer size per aggregator (`cb_buffer_size`).
    pub cb_buffer_size: u64,
}

impl Default for MpiIoHints {
    fn default() -> Self {
        MpiIoHints {
            cb_nodes: None,
            cb_buffer_size: 16 * MIB,
        }
    }
}

/// Open a file through MPI-IO. Call from every participating rank.
pub fn open(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    flags: OpenFlags,
    now: SimTime,
) -> (Result<Fd, IoErr>, SimTime) {
    let t0 = now;
    let (fd, t) = posix::open(w, rank, path, flags, now);
    let path_id = w.tracer.file_id(path);
    let end = w.trace_io(rank, Layer::MpiIo, OpKind::Open, t0, t, Some(path_id), 0, 0);
    (fd, end)
}

/// Close an MPI-IO file.
pub fn close(w: &mut IoWorld, rank: RankId, fd: Fd, now: SimTime) -> (Result<(), IoErr>, SimTime) {
    let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
    let (res, t) = posix::close(w, rank, fd, now);
    let end = w.trace_io(rank, Layer::MpiIo, OpKind::Close, now, t, path_id, 0, 0);
    (res, end)
}

/// Independent read at an explicit offset (`MPI_File_read_at`).
pub fn read_at(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: u64,
    len: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
    let (res, t) = posix::read_at(w, rank, fd, offset, len, now);
    let n = *res.as_ref().unwrap_or(&0);
    let end = w.trace_io(rank, Layer::MpiIo, OpKind::Read, now, t, path_id, offset, n);
    (res, end)
}

/// Independent write at an explicit offset (`MPI_File_write_at`).
pub fn write_at(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    offset: u64,
    len: u64,
    seed: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
    let (res, t) = posix::write_pattern_at(w, rank, fd, offset, len, seed, now);
    let n = *res.as_ref().unwrap_or(&0);
    let end = w.trace_io(
        rank,
        Layer::MpiIo,
        OpKind::Write,
        now,
        t,
        path_id,
        offset,
        n,
    );
    (res, end)
}

/// The aggregator role a rank plays in a collective operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveRole {
    /// Whether this rank performs file I/O.
    pub is_aggregator: bool,
    /// Byte range of the collective extent this rank covers (aggregators).
    pub range: Option<(u64, u64)>,
}

/// Compute which part of a collective extent a rank serves.
///
/// `extent` is the union byte range `[start, start+len)` of the collective
/// access across `comm_size` ranks; `n_nodes` drives the default `cb_nodes`.
pub fn plan_collective(
    rank_index: u32,
    comm_size: u32,
    n_nodes: u32,
    extent: (u64, u64),
    hints: &MpiIoHints,
) -> CollectiveRole {
    let cb = hints.cb_nodes.unwrap_or(n_nodes).clamp(1, comm_size);
    // Aggregators are the first rank of each of `cb` equal groups.
    let group = comm_size / cb;
    let is_aggregator = group > 0 && rank_index % group == 0 && rank_index / group < cb;
    if !is_aggregator {
        return CollectiveRole {
            is_aggregator: false,
            range: None,
        };
    }
    let agg_index = rank_index / group;
    let (start, len) = extent;
    let share = len.div_ceil(cb as u64);
    let lo = start + agg_index as u64 * share;
    let hi = (lo + share).min(start + len);
    CollectiveRole {
        is_aggregator: true,
        range: (lo < hi).then_some((lo, hi)),
    }
}

/// The data-shuffle cost every participant pays in two-phase I/O: the
/// per-rank payload redistributed across the communicator.
pub fn exchange_cost(model: &MpiCostModel, comm_size: usize, per_rank_bytes: u64) -> sim_core::Dur {
    model.cost(CollectiveKind::AllToAll, comm_size.min(8), per_rank_bytes)
}

/// Execute an aggregator's share of a collective read: issue POSIX reads of
/// `cb_buffer_size` chunks over the assigned range. Non-aggregators return
/// immediately. Returns bytes read and completion time.
pub fn collective_read_part(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    role: &CollectiveRole,
    hints: &MpiIoHints,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let Some((lo, hi)) = role.range else {
        return (Ok(0), now);
    };
    let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
    let mut t = now;
    let mut off = lo;
    let mut total = 0u64;
    while off < hi {
        let chunk = (hi - off).min(hints.cb_buffer_size);
        let (res, t2) = posix::read_at(w, rank, fd, off, chunk, t);
        match res {
            Ok(n) => {
                total += n;
                t = t2;
                off += chunk;
            }
            Err(e) => return (Err(e), t2),
        }
    }
    let end = w.trace_io(rank, Layer::MpiIo, OpKind::Read, now, t, path_id, lo, total);
    (Ok(total), end)
}

/// Execute an aggregator's share of a collective write (pattern payload).
pub fn collective_write_part(
    w: &mut IoWorld,
    rank: RankId,
    fd: Fd,
    role: &CollectiveRole,
    hints: &MpiIoHints,
    seed: u64,
    now: SimTime,
) -> (Result<u64, IoErr>, SimTime) {
    let Some((lo, hi)) = role.range else {
        return (Ok(0), now);
    };
    let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
    let mut t = now;
    let mut off = lo;
    let mut total = 0u64;
    while off < hi {
        let chunk = (hi - off).min(hints.cb_buffer_size);
        let (res, t2) = posix::write_pattern_at(w, rank, fd, off, chunk, seed ^ off, t);
        match res {
            Ok(n) => {
                total += n;
                t = t2;
                off += chunk;
            }
            Err(e) => return (Err(e), t2),
        }
    }
    let end = w.trace_io(
        rank,
        Layer::MpiIo,
        OpKind::Write,
        now,
        t,
        path_id,
        lo,
        total,
    );
    (Ok(total), end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Dur;

    #[test]
    fn plan_assigns_disjoint_covering_ranges() {
        let hints = MpiIoHints {
            cb_nodes: Some(4),
            cb_buffer_size: 1 * MIB,
        };
        let extent = (0u64, 100 * MIB);
        let mut covered = 0u64;
        let mut aggs = 0;
        for r in 0..16u32 {
            let role = plan_collective(r, 16, 4, extent, &hints);
            if let Some((lo, hi)) = role.range {
                assert!(role.is_aggregator);
                covered += hi - lo;
                aggs += 1;
            }
        }
        assert_eq!(aggs, 4);
        assert_eq!(covered, 100 * MIB);
    }

    #[test]
    fn default_cb_nodes_is_node_count() {
        let hints = MpiIoHints::default();
        let mut aggs = 0;
        for r in 0..8u32 {
            if plan_collective(r, 8, 2, (0, 1000), &hints).is_aggregator {
                aggs += 1;
            }
        }
        assert_eq!(aggs, 2);
    }

    #[test]
    fn cb_nodes_clamps_to_comm_size() {
        let hints = MpiIoHints {
            cb_nodes: Some(64),
            cb_buffer_size: MIB,
        };
        let mut aggs = 0;
        for r in 0..4u32 {
            if plan_collective(r, 4, 32, (0, 100), &hints).is_aggregator {
                aggs += 1;
            }
        }
        assert_eq!(aggs, 4);
    }

    #[test]
    fn collective_read_moves_the_assigned_bytes() {
        let mut w = IoWorld::lassen(2, 2, Dur::from_secs(3600), 3);
        let r = RankId(0);
        // Create a 4 MiB file first.
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/coll.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (res, t) = write_at(&mut w, r, fd, 0, 4 * MIB, 5, t);
        assert_eq!(res.unwrap(), 4 * MIB);
        let hints = MpiIoHints {
            cb_nodes: Some(2),
            cb_buffer_size: 1 * MIB,
        };
        let role = plan_collective(0, 4, 2, (0, 4 * MIB), &hints);
        let (n, t2) = collective_read_part(&mut w, r, fd, &role, &hints, t);
        assert_eq!(n.unwrap(), 2 * MIB); // half of the extent
        assert!(t2 > t);
        // Non-aggregator does nothing.
        let role3 = plan_collective(1, 4, 2, (0, 4 * MIB), &hints);
        let (n3, t3) = collective_read_part(&mut w, r, fd, &role3, &hints, t2);
        assert_eq!(n3.unwrap(), 0);
        assert_eq!(t3, t2);
    }

    #[test]
    fn mpiio_layer_records_are_captured() {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 3);
        let r = RankId(0);
        let (fd, t) = open(
            &mut w,
            r,
            "/p/gpfs1/m.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = write_at(&mut w, r, fd, 0, 1024, 1, t);
        let (_, t) = read_at(&mut w, r, fd, 0, 1024, t);
        let (_, _t) = close(&mut w, r, fd, t);
        let mpiio_ops: Vec<OpKind> = w
            .tracer
            .records()
            .iter()
            .filter(|rec| rec.layer == Layer::MpiIo)
            .map(|rec| rec.op)
            .collect();
        assert_eq!(
            mpiio_ops,
            vec![OpKind::Open, OpKind::Write, OpKind::Read, OpKind::Close]
        );
        // POSIX records exist beneath.
        assert!(w
            .tracer
            .records()
            .iter()
            .any(|rec| rec.layer == Layer::Posix));
    }

    #[test]
    fn exchange_cost_grows_with_payload() {
        let model = MpiCostModel {
            latency: Dur::from_micros(5),
            bandwidth: 1 << 30,
        };
        let small = exchange_cost(&model, 8, 1024);
        let big = exchange_cost(&model, 8, 1 << 26);
        assert!(big > small * 100);
    }
}
