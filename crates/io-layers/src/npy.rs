//! The NumPy `.npy` array format over buffered stdio — JAG ICF's interface
//! ("JAG performs I/O using the STDIO interface used by NumPy array Python
//! files", §IV-A4).
//!
//! The v1.0 header is encoded and parsed for real: magic, version, a
//! little-endian header length, and the Python dict literal with `descr`,
//! `fortran_order`, and `shape`.

use crate::stdio::{self, FileStream};
use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::SimTime;
use storage_sim::IoErr;

/// Magic prefix of every `.npy` file.
const MAGIC: &[u8; 6] = b"\x93NUMPY";

/// Metadata of an npy array.
#[derive(Debug, Clone, PartialEq)]
pub struct NpyHeader {
    /// NumPy dtype string, e.g. `"<f4"`.
    pub descr: String,
    /// Array shape.
    pub shape: Vec<u64>,
}

impl NpyHeader {
    /// Bytes per element implied by `descr` (the trailing digits).
    pub fn dtype_size(&self) -> u64 {
        self.descr
            .trim_start_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or(1)
    }

    /// Total payload bytes.
    pub fn nbytes(&self) -> u64 {
        self.shape.iter().product::<u64>() * self.dtype_size()
    }

    /// Encode the full header block (magic + version + len + dict, padded
    /// to 64 bytes as NumPy does).
    pub fn encode(&self) -> Vec<u8> {
        let shape_str = match self.shape.len() {
            1 => format!("({},)", self.shape[0]),
            _ => format!(
                "({})",
                self.shape
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let dict = format!(
            "{{'descr': '{}', 'fortran_order': False, 'shape': {}, }}",
            self.descr, shape_str
        );
        let unpadded = MAGIC.len() + 2 + 2 + dict.len() + 1; // +1 newline
        let total = unpadded.div_ceil(64) * 64;
        let pad = total - unpadded;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC);
        out.push(1); // major
        out.push(0); // minor
        let hlen = (dict.len() + pad + 1) as u16;
        out.extend_from_slice(&hlen.to_le_bytes());
        out.extend_from_slice(dict.as_bytes());
        out.extend(std::iter::repeat_n(b' ', pad));
        out.push(b'\n');
        out
    }

    /// Parse a header block (magic + version + len + dict).
    pub fn parse(buf: &[u8]) -> Result<(NpyHeader, u64), IoErr> {
        if buf.len() < 10 || &buf[..6] != MAGIC {
            return Err(IoErr::Invalid);
        }
        let hlen = u16::from_le_bytes([buf[8], buf[9]]) as usize;
        if buf.len() < 10 + hlen {
            return Err(IoErr::Invalid);
        }
        let dict = std::str::from_utf8(&buf[10..10 + hlen]).map_err(|_| IoErr::Invalid)?;
        let descr = extract_quoted(dict, "'descr':").ok_or(IoErr::Invalid)?;
        let shape_src = dict.split("'shape':").nth(1).ok_or(IoErr::Invalid)?;
        let open = shape_src.find('(').ok_or(IoErr::Invalid)?;
        let close = shape_src.find(')').ok_or(IoErr::Invalid)?;
        let shape: Vec<u64> = shape_src[open + 1..close]
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        Ok((
            NpyHeader {
                descr: descr.to_string(),
                shape,
            },
            (10 + hlen) as u64,
        ))
    }
}

fn extract_quoted<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let rest = src.split(key).nth(1)?;
    let first = rest.find('\'')?;
    let rest = &rest[first + 1..];
    let second = rest.find('\'')?;
    Some(&rest[..second])
}

/// An open npy file for sample reads.
pub struct NpyFile {
    stream: FileStream,
    path_id: recorder_sim::record::FileId,
    /// Parsed header.
    pub header: NpyHeader,
    /// Byte offset where the array payload begins.
    pub data_offset: u64,
}

/// Write a complete npy file (header + synthetic payload) through stdio.
pub fn save(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    header: &NpyHeader,
    seed: u64,
    now: SimTime,
) -> (Result<(), IoErr>, SimTime) {
    let (h, t) = stdio::fopen(w, rank, path, "w", now);
    let h = match h {
        Ok(h) => h,
        Err(e) => return (Err(e), t),
    };
    let enc = header.encode();
    let (res, t) = stdio::fwrite(w, rank, h, &enc, t);
    if let Err(e) = res {
        return (Err(e), t);
    }
    let (res, t) = stdio::fwrite_pattern(w, rank, h, header.nbytes(), seed, t);
    if let Err(e) = res {
        return (Err(e), t);
    }
    stdio::fclose(w, rank, h, t)
}

/// Open an npy file and parse its header.
pub fn open(
    w: &mut IoWorld,
    rank: RankId,
    path: &str,
    now: SimTime,
) -> (Result<NpyFile, IoErr>, SimTime) {
    let t0 = now;
    let (h, t) = stdio::fopen(w, rank, path, "r", now);
    let h = match h {
        Ok(h) => h,
        Err(e) => return (Err(e), t),
    };
    // NumPy reads the magic+version+len first, then the dict.
    let (head, t) = stdio::fread_data(w, rank, h, 10, t);
    let head = match head {
        Ok(d) => d,
        Err(e) => return (Err(e), t),
    };
    if head.len() < 10 || &head[..6] != MAGIC {
        return (Err(IoErr::Invalid), t);
    }
    let hlen = u16::from_le_bytes([head[8], head[9]]) as u64;
    let (dict, t) = stdio::fread_data(w, rank, h, hlen, t);
    let dict = match dict {
        Ok(d) => d,
        Err(e) => return (Err(e), t),
    };
    let mut full = head;
    full.extend_from_slice(&dict);
    let (header, data_offset) = match NpyHeader::parse(&full) {
        Ok(x) => x,
        Err(e) => return (Err(e), t),
    };
    let path_id = w.tracer.file_id(path);
    let end = w.trace_io(
        rank,
        Layer::HighLevel,
        OpKind::Open,
        t0,
        t,
        Some(path_id),
        0,
        0,
    );
    (
        Ok(NpyFile {
            stream: h,
            path_id,
            header,
            data_offset,
        }),
        end,
    )
}

impl NpyFile {
    /// Read `count` elements starting at element `index` (row-major order).
    pub fn read_elements(
        &self,
        w: &mut IoWorld,
        rank: RankId,
        index: u64,
        count: u64,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let esz = self.header.dtype_size();
        let off = self.data_offset + index * esz;
        let (res, t) = stdio::fseek(
            w,
            rank,
            self.stream,
            off as i64,
            crate::posix::Whence::Set,
            now,
        );
        if let Err(e) = res {
            return (Err(e), t);
        }
        let (res, t) = stdio::fread(w, rank, self.stream, count * esz, t);
        let n = match res {
            Ok(n) => n,
            Err(e) => return (Err(e), t),
        };
        let end = w.trace_io(
            rank,
            Layer::HighLevel,
            OpKind::Read,
            t0,
            t,
            Some(self.path_id),
            off,
            n,
        );
        (Ok(n / esz.max(1)), end)
    }

    /// Close the file.
    pub fn close(
        self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<(), IoErr>, SimTime) {
        stdio::fclose(w, rank, self.stream, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Dur;

    #[test]
    fn header_encode_parse_round_trip() {
        let h = NpyHeader {
            descr: "<f4".to_string(),
            shape: vec![100_000, 16],
        };
        let enc = h.encode();
        assert_eq!(enc.len() % 64, 0, "numpy pads headers to 64 bytes");
        let (parsed, off) = NpyHeader::parse(&enc).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(off as usize, enc.len());
        assert_eq!(h.dtype_size(), 4);
        assert_eq!(h.nbytes(), 100_000 * 16 * 4);
    }

    #[test]
    fn one_dim_shape_round_trips() {
        let h = NpyHeader {
            descr: "<i8".to_string(),
            shape: vec![42],
        };
        let (parsed, _) = NpyHeader::parse(&h.encode()).unwrap();
        assert_eq!(parsed.shape, vec![42]);
    }

    #[test]
    fn save_open_read_cycle() {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 8);
        let r = RankId(0);
        let h = NpyHeader {
            descr: "<f4".to_string(),
            shape: vec![1000, 64],
        };
        let (res, t) = save(&mut w, r, "/p/gpfs1/jag.npy", &h, 42, SimTime::ZERO);
        res.unwrap();
        let (f, t) = open(&mut w, r, "/p/gpfs1/jag.npy", t);
        let f = f.unwrap();
        assert_eq!(f.header, h);
        let (n, t) = f.read_elements(&mut w, r, 0, 64, t);
        assert_eq!(n.unwrap(), 64);
        let (res, _) = f.close(&mut w, r, t);
        res.unwrap();
        // HighLevel open + read records present.
        assert!(w
            .tracer
            .records()
            .iter()
            .any(|rec| rec.layer == Layer::HighLevel && rec.op == OpKind::Open));
        assert!(w
            .tracer
            .records()
            .iter()
            .any(|rec| rec.layer == Layer::HighLevel && rec.op == OpKind::Read));
    }

    #[test]
    fn garbage_is_rejected() {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 8);
        let r = RankId(0);
        let (h, t) = stdio::fopen(&mut w, r, "/p/gpfs1/junk.npy", "w", SimTime::ZERO);
        let (_, t) = stdio::fwrite(&mut w, r, h.unwrap(), b"garbage bytes here", t);
        let (_, t) = stdio::fclose(&mut w, r, h.unwrap(), t);
        let (res, _) = open(&mut w, r, "/p/gpfs1/junk.npy", t);
        assert_eq!(res.err().unwrap(), IoErr::Invalid);
    }
}
