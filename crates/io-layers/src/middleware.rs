//! Middleware interceptors (§II-B, §IV-D1): transparent I/O accelerators a
//! workload-aware storage stack can insert once it knows the workload's
//! attributes. Used by the optimizer's ablation benches.
//!
//! * [`WriteBuffer`] — Hermes/UnifyFS-style hierarchical buffering: writes
//!   to matching paths are redirected to the node-local tier and drained to
//!   the PFS on `drain` (what the paper's async-I/O guideline enables),
//! * [`Prefetcher`] — HFetch-style sequential prefetch: detects sequential
//!   reads per descriptor and pre-issues the next extent so the following
//!   read is already in flight,
//! * [`Compression`] — HCompress-style adaptive compression: trades CPU
//!   time for bytes moved, with the ratio chosen from the dataset's value
//!   distribution (Table VI's "Data dist" attribute).

use crate::posix::{self, Fd};
use crate::world::IoWorld;
use hpc_cluster::topology::RankId;
use recorder_sim::record::{Layer, OpKind};
use sim_core::stats::DistributionFit;
use sim_core::units::MIB;
use sim_core::{Dur, SimTime};
use std::collections::HashMap;
use storage_sim::IoErr;

/// Hierarchical write buffering: redirect writes under `match_prefix` to the
/// node-local tier, remembering what must eventually reach the PFS.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    /// Pending drains: (shm path, pfs path, bytes).
    pending: Vec<(String, String, u64)>,
}

impl WriteBuffer {
    /// New empty buffer layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewrite a PFS path to its node-local staging location.
    pub fn stage_path(pfs_path: &str) -> String {
        format!("/dev/shm/stage{pfs_path}")
    }

    /// Write `len` pattern bytes to the staged (node-local) location instead
    /// of the PFS, recording the intent to drain.
    pub fn write_staged(
        &mut self,
        w: &mut IoWorld,
        rank: RankId,
        pfs_path: &str,
        len: u64,
        seed: u64,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let staged = Self::stage_path(pfs_path);
        let t0 = now;
        let (fd, t) = posix::open(w, rank, &staged, posix::OpenFlags::write_create(), now);
        let fd = match fd {
            Ok(f) => f,
            Err(e) => return (Err(e), t),
        };
        let (res, t) = posix::write_pattern(w, rank, fd, len, seed, t);
        let n = match res {
            Ok(n) => n,
            Err(e) => return (Err(e), t),
        };
        let (_, t) = posix::close(w, rank, fd, t);
        self.pending
            .push((staged.clone(), pfs_path.to_string(), len));
        let path_id = w.tracer.file_id(pfs_path);
        let end = w.trace_io(
            rank,
            Layer::Middleware,
            OpKind::Write,
            t0,
            t,
            Some(path_id),
            0,
            n,
        );
        (Ok(n), end)
    }

    /// Number of files awaiting drain.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drain all staged files to the PFS (the async flush at phase end).
    pub fn drain(
        &mut self,
        w: &mut IoWorld,
        rank: RankId,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let mut t = now;
        let mut moved = 0u64;
        for (_staged, pfs_path, len) in self.pending.drain(..) {
            let (fd, t2) = posix::open(w, rank, &pfs_path, posix::OpenFlags::write_create(), t);
            let fd = match fd {
                Ok(f) => f,
                Err(e) => return (Err(e), t2),
            };
            let (res, t3) = posix::write_pattern(w, rank, fd, len, 1, t2);
            match res {
                Ok(n) => moved += n,
                Err(e) => return (Err(e), t3),
            }
            let (_, t4) = posix::close(w, rank, fd, t3);
            t = t4;
        }
        let end = w.trace_io(rank, Layer::Middleware, OpKind::Sync, t0, t, None, 0, moved);
        (Ok(moved), end)
    }
}

/// Sequential-read prefetcher. Tracks the last extent per descriptor; when a
/// read continues sequentially, the *next* extent is fetched in the
/// background so the subsequent read returns at memory speed.
#[derive(Debug, Default)]
pub struct Prefetcher {
    /// fd → (next expected offset, prefetched extent end).
    state: HashMap<u32, (u64, u64)>,
    /// How far ahead to fetch.
    pub window: u64,
    /// Prefetch hits served.
    pub hits: u64,
}

impl Prefetcher {
    /// New prefetcher with a 4 MiB look-ahead window.
    pub fn new() -> Self {
        Prefetcher {
            window: 4 * MIB,
            ..Default::default()
        }
    }

    /// Read through the prefetcher.
    pub fn read(
        &mut self,
        w: &mut IoWorld,
        rank: RankId,
        fd: Fd,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let entry = self.state.get(&fd.0).copied();
        let sequential = entry.is_some_and(|(next, _)| next == offset);
        let covered = entry.is_some_and(|(_, pf_end)| offset + len <= pf_end);
        let (n, mut t) = if sequential && covered {
            // Already prefetched: memory-speed service.
            self.hits += 1;
            (
                len,
                now + Dur::from_micros(2) + Dur::for_transfer(len, 8 * sim_core::units::GIB),
            )
        } else {
            let (res, t) = posix::read_at(w, rank, fd, offset, len, now);
            match res {
                Ok(n) => (n, t),
                Err(e) => return (Err(e), t),
            }
        };
        if sequential || entry.is_none() {
            // Fire-and-forget the next window; its completion time is not
            // awaited but it occupies the servers.
            let pf_start = offset + len;
            let (res, _ignored_end) = posix::read_at(w, rank, fd, pf_start, self.window, t);
            if res.is_ok() {
                self.state.insert(fd.0, (pf_start, pf_start + self.window));
            }
        } else {
            self.state.insert(fd.0, (offset + len, offset + len));
        }
        let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
        t = w.trace_io(
            rank,
            Layer::Middleware,
            OpKind::Read,
            t0,
            t,
            path_id,
            offset,
            n,
        );
        (Ok(n), t)
    }
}

/// Compression middleware configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionCfg {
    /// Compression throughput (bytes/sec of input).
    pub compress_bw: u64,
    /// Decompression throughput.
    pub decompress_bw: u64,
    /// Achieved ratio (output/input) per value distribution; the paper's
    /// HCompress reference shows distribution-dependent ratios, including
    /// ratios above 1.0 (inflation) for adverse distributions.
    pub ratio_uniform: f64,
    /// Ratio for normal-distributed values.
    pub ratio_normal: f64,
    /// Ratio for gamma-distributed values.
    pub ratio_gamma: f64,
}

impl Default for CompressionCfg {
    fn default() -> Self {
        CompressionCfg {
            compress_bw: 500 * MIB,
            decompress_bw: 1500 * MIB,
            ratio_uniform: 1.12, // incompressible: 12 % inflation (§I, ref [10])
            ratio_normal: 0.55,
            ratio_gamma: 0.40,
        }
    }
}

/// Compression interceptor.
#[derive(Debug, Default)]
pub struct Compression {
    /// Active configuration.
    pub cfg: CompressionCfg,
}

impl Compression {
    /// New interceptor with defaults.
    pub fn new(cfg: CompressionCfg) -> Self {
        Compression { cfg }
    }

    /// The ratio applied for a given data distribution.
    pub fn ratio_for(&self, dist: DistributionFit) -> f64 {
        match dist {
            DistributionFit::Uniform => self.cfg.ratio_uniform,
            DistributionFit::Normal => self.cfg.ratio_normal,
            DistributionFit::Gamma => self.cfg.ratio_gamma,
            DistributionFit::Unknown => 1.0,
        }
    }

    /// Write `len` logical bytes with compression: CPU cost plus a smaller
    /// (or larger!) physical write.
    pub fn write(
        &self,
        w: &mut IoWorld,
        rank: RankId,
        fd: Fd,
        offset: u64,
        len: u64,
        dist: DistributionFit,
        seed: u64,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let cpu = Dur::for_transfer(len, self.cfg.compress_bw);
        let t = now + cpu;
        let phys = (len as f64 * self.ratio_for(dist)).round() as u64;
        let (res, t) = posix::write_pattern_at(w, rank, fd, offset, phys, seed, t);
        match res {
            Ok(_) => {
                let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
                let end = w.trace_io(
                    rank,
                    Layer::Middleware,
                    OpKind::Write,
                    t0,
                    t,
                    path_id,
                    offset,
                    len,
                );
                (Ok(len), end)
            }
            Err(e) => (Err(e), t),
        }
    }

    /// Read `len` logical bytes with decompression.
    pub fn read(
        &self,
        w: &mut IoWorld,
        rank: RankId,
        fd: Fd,
        offset: u64,
        len: u64,
        dist: DistributionFit,
        now: SimTime,
    ) -> (Result<u64, IoErr>, SimTime) {
        let t0 = now;
        let phys = (len as f64 * self.ratio_for(dist)).round() as u64;
        let (res, t) = posix::read_at(w, rank, fd, offset, phys, now);
        match res {
            Ok(_) => {
                let t = t + Dur::for_transfer(len, self.cfg.decompress_bw);
                let path_id = w.fd(rank, fd).map(|of| of.path_id).ok();
                let end = w.trace_io(
                    rank,
                    Layer::Middleware,
                    OpKind::Read,
                    t0,
                    t,
                    path_id,
                    offset,
                    len,
                );
                (Ok(len), end)
            }
            Err(e) => (Err(e), t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posix::OpenFlags;

    fn world() -> IoWorld {
        IoWorld::lassen(2, 2, Dur::from_secs(3600), 6)
    }

    #[test]
    fn write_buffer_stages_then_drains() {
        let mut w = world();
        let r = RankId(0);
        let mut wb = WriteBuffer::new();
        let (n, t) = wb.write_staged(
            &mut w,
            r,
            "/p/gpfs1/out/inter.tbl",
            1 * MIB,
            1,
            SimTime::ZERO,
        );
        assert_eq!(n.unwrap(), 1 * MIB);
        assert_eq!(wb.pending(), 1);
        // Staged write is fast (node-local): well under a PFS round trip.
        assert!(t.since(SimTime::ZERO) < Dur::from_millis(2));
        // The file exists in shm, not on the PFS.
        assert!(w
            .storage
            .pfs()
            .store()
            .lookup("/p/gpfs1/out/inter.tbl")
            .is_none());
        let (moved, t2) = wb.drain(&mut w, r, t);
        assert_eq!(moved.unwrap(), 1 * MIB);
        assert_eq!(wb.pending(), 0);
        assert!(w
            .storage
            .pfs()
            .store()
            .lookup("/p/gpfs1/out/inter.tbl")
            .is_some());
        assert!(t2 > t);
    }

    #[test]
    fn prefetcher_accelerates_sequential_scans() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = posix::open(
            &mut w,
            r,
            "/p/gpfs1/seq.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = posix::write_pattern(&mut w, r, fd, 32 * MIB, 1, t);
        let mut pf = Prefetcher::new();
        let mut t = t;
        for i in 0..16u64 {
            let (res, t2) = pf.read(&mut w, r, fd, i * MIB, MIB, t);
            res.unwrap();
            t = t2;
        }
        assert!(
            pf.hits >= 12,
            "sequential scan should hit the window, got {}",
            pf.hits
        );
    }

    #[test]
    fn prefetcher_random_access_does_not_hit() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = posix::open(
            &mut w,
            r,
            "/p/gpfs1/rnd.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = posix::write_pattern(&mut w, r, fd, 32 * MIB, 1, t);
        let mut pf = Prefetcher::new();
        let mut t = t;
        for i in [30u64, 2, 17, 9, 25, 1, 13] {
            let (res, t2) = pf.read(&mut w, r, fd, i * MIB, MIB, t);
            res.unwrap();
            t = t2;
        }
        assert_eq!(pf.hits, 0);
    }

    #[test]
    fn compression_shrinks_normal_and_inflates_uniform() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = posix::open(
            &mut w,
            r,
            "/p/gpfs1/c.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let cmp = Compression::new(CompressionCfg::default());
        let bytes_before = w.storage.pfs().stats().bytes_written;
        let (res, t) = cmp.write(&mut w, r, fd, 0, 10 * MIB, DistributionFit::Normal, 1, t);
        res.unwrap();
        let normal_written = w.storage.pfs().stats().bytes_written - bytes_before;
        assert!(normal_written < 6 * MIB, "normal data should compress");
        let before2 = w.storage.pfs().stats().bytes_written;
        let (res, _t) = cmp.write(&mut w, r, fd, 0, 10 * MIB, DistributionFit::Uniform, 1, t);
        res.unwrap();
        let uniform_written = w.storage.pfs().stats().bytes_written - before2;
        assert!(uniform_written > 10 * MIB, "uniform data should inflate");
    }

    #[test]
    fn compression_read_pays_cpu_time() {
        let mut w = world();
        let r = RankId(0);
        let (fd, t) = posix::open(
            &mut w,
            r,
            "/p/gpfs1/d.dat",
            OpenFlags::write_create(),
            SimTime::ZERO,
        );
        let fd = fd.unwrap();
        let (_, t) = posix::write_pattern(&mut w, r, fd, 10 * MIB, 1, t);
        let cmp = Compression::new(CompressionCfg::default());
        let (res, t2) = cmp.read(&mut w, r, fd, 0, 8 * MIB, DistributionFit::Gamma, t);
        assert_eq!(res.unwrap(), 8 * MIB);
        // Decompress cost alone is ≥ 8 MiB / 1500 MiB/s ≈ 5.3 ms.
        assert!(t2.since(t) >= Dur::from_millis(5));
    }
}
