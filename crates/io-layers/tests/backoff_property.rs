//! Seeded property test for the resilience backoff: across many seeds,
//! the jittered exponential waits the middleware actually charges (read
//! back from the `Retry` spans in the trace) must
//!
//! * stay inside the jitter envelope `nominal * [1-j, 1+j]` where
//!   `nominal = base * multiplier^(k-1)` capped at `max_backoff`,
//! * be monotone non-decreasing while the nominal backoff is still
//!   below the cap (the default policy guarantees this:
//!   `multiplier * (1-j) >= 1+j` for `multiplier = 2, j = 0.25`),
//! * never exceed the attempt budget: at most `max_attempts` faults and
//!   `max_attempts - 1` retries per protected operation.
//!
//! Deterministic sweep in the repo's randomized-test idiom: the seeded
//! [`vani_rt::Rng`] replaces proptest, so the exact same cases run on
//! every machine.

use hpc_cluster::topology::RankId;
use io_layers::resilience::with_retries;
use io_layers::world::IoWorld;
use recorder_sim::record::{Layer, OpKind};
use sim_core::{Dur, SimTime};
use storage_sim::IoErr;

/// Exhaust the full retry budget against an always-transient fault and
/// return the backoff waits actually charged, in order.
fn charged_waits(w: &mut IoWorld) -> Vec<f64> {
    let before = w.tracer.len();
    let (res, _) = with_retries(&mut *w, RankId(0), None, 0, 512, SimTime::ZERO, |_w, _t| {
        Err::<((), SimTime), _>(IoErr::TransientIo)
    });
    assert!(res.is_err(), "an always-failing op must surface its error");
    w.tracer.records()[before..]
        .iter()
        .filter(|r| r.layer == Layer::Middleware && r.op == OpKind::Retry)
        .map(|r| r.end.as_secs_f64() - r.start.as_secs_f64())
        .collect()
}

#[test]
fn backoff_waits_respect_envelope_monotonicity_and_budget() {
    for seed in 0..64u64 {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), seed);
        let policy = w.resilience.policy.clone();
        let j = policy.jitter;
        assert!(
            policy.multiplier * (1.0 - j) >= 1.0 + j,
            "default policy must make pre-cap waits monotone"
        );

        let waits = charged_waits(&mut w);
        assert_eq!(
            waits.len(),
            (policy.max_attempts - 1) as usize,
            "seed {seed}: exactly budget-1 retries for an unrecoverable fault"
        );
        assert_eq!(w.resilience.stats.faults, policy.max_attempts as u64);
        assert_eq!(w.resilience.stats.retries, (policy.max_attempts - 1) as u64);
        assert_eq!(w.resilience.stats.exhausted, 1);

        let base = policy.base_backoff.as_secs_f64();
        let cap = policy.max_backoff.as_secs_f64();
        // SimTime spans quantize to nanoseconds: allow one tick of slack.
        let tick = 1e-9;
        for (k, wait) in waits.iter().enumerate() {
            let nominal = (base * policy.multiplier.powi(k as i32)).min(cap);
            assert!(
                *wait >= nominal * (1.0 - j) - tick && *wait <= nominal * (1.0 + j) + tick,
                "seed {seed}: wait {k} = {wait} outside jitter envelope of {nominal}"
            );
        }
        for k in 1..waits.len() {
            let prev_nominal = base * policy.multiplier.powi(k as i32 - 1);
            if prev_nominal * policy.multiplier <= cap {
                assert!(
                    waits[k] + tick >= waits[k - 1],
                    "seed {seed}: pre-cap waits must be monotone non-decreasing \
                     ({} then {})",
                    waits[k - 1],
                    waits[k]
                );
            }
        }
    }
}

#[test]
fn capped_backoff_stays_inside_the_cap_envelope() {
    // Stretch the budget so the exponential actually reaches the cap:
    // 2ms * 2^(k-1) crosses 250ms at the 9th retry.
    for seed in [3u64, 11, 29] {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), seed);
        w.resilience.policy.max_attempts = 12;
        let policy = w.resilience.policy.clone();
        let waits = charged_waits(&mut w);
        assert_eq!(waits.len(), 11);

        let cap = policy.max_backoff.as_secs_f64();
        let j = policy.jitter;
        let capped: Vec<f64> = waits
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                policy.base_backoff.as_secs_f64() * policy.multiplier.powi(*k as i32) >= cap
            })
            .map(|(_, w)| *w)
            .collect();
        assert!(
            !capped.is_empty(),
            "the stretched budget must reach the cap"
        );
        for w in capped {
            assert!(
                w >= cap * (1.0 - j) - 1e-9 && w <= cap * (1.0 + j) + 1e-9,
                "seed {seed}: capped wait {w} escapes the cap envelope"
            );
        }
    }
}

#[test]
fn zero_jitter_reproduces_the_exact_exponential_ladder() {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(60), 7);
    w.resilience.policy.jitter = 0.0;
    let waits = charged_waits(&mut w);
    let expected: Vec<f64> = (0..waits.len())
        .map(|k| (0.002 * 2f64.powi(k as i32)).min(0.25))
        .collect();
    for (got, want) in waits.iter().zip(&expected) {
        assert!(
            (got - want).abs() < 1e-9,
            "exact ladder without jitter: {got} vs {want}"
        );
    }
}
