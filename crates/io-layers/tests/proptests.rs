//! Property tests across the interface layers: the buffered stdio layer
//! must be observationally equivalent to a plain byte-vector file model,
//! and format layers must round-trip arbitrary metadata.

use hpc_cluster::topology::RankId;
use io_layers::posix::Whence;
use io_layers::world::IoWorld;
use io_layers::{fits, npy, stdio};
use proptest::prelude::*;
use sim_core::{Dur, SimTime};

/// A scripted stdio operation.
#[derive(Debug, Clone)]
enum Op {
    Write(Vec<u8>),
    Read(u16),
    Seek(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..600).prop_map(Op::Write),
        (1u16..600).prop_map(Op::Read),
        (0u16..2048).prop_map(Op::Seek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of buffered writes, reads, and seeks produce
    /// exactly the bytes a Vec<u8> file model predicts — buffering must be
    /// invisible to the application.
    #[test]
    fn stdio_matches_vec_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 1);
        let r = RankId(0);
        // Small buffer to force plenty of flush/fill boundary cases.
        let (h, mut t) = stdio::fopen_buffered(&mut w, r, "/p/gpfs1/prop.bin", "w+", 128, SimTime::ZERO);
        let h = h.unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut pos: usize = 0;
        for op in &ops {
            match op {
                Op::Write(data) => {
                    let (n, t2) = stdio::fwrite(&mut w, r, h, data, t);
                    prop_assert_eq!(n.unwrap(), data.len() as u64);
                    t = t2;
                    if model.len() < pos + data.len() {
                        model.resize(pos + data.len(), 0);
                    }
                    model[pos..pos + data.len()].copy_from_slice(data);
                    pos += data.len();
                }
                Op::Read(len) => {
                    let (data, t2) = stdio::fread_data(&mut w, r, h, *len as u64, t);
                    let data = data.unwrap();
                    t = t2;
                    let avail = model.len().saturating_sub(pos).min(*len as usize);
                    prop_assert_eq!(data.len(), avail);
                    let expect = model.get(pos..pos + avail).unwrap_or(&[]);
                    prop_assert_eq!(&data[..], expect);
                    pos += avail;
                }
                Op::Seek(to) => {
                    let (p, t2) = stdio::fseek(&mut w, r, h, *to as i64, Whence::Set, t);
                    prop_assert_eq!(p.unwrap(), *to as u64);
                    t = t2;
                    pos = *to as usize;
                }
            }
        }
        // Close and re-read the whole file: must equal the model.
        let (_, t) = stdio::fclose(&mut w, r, h, t);
        let (h2, t) = stdio::fopen(&mut w, r, "/p/gpfs1/prop.bin", "r", t);
        let h2 = h2.unwrap();
        let (full, _) = stdio::fread_data(&mut w, r, h2, model.len() as u64 + 64, t);
        prop_assert_eq!(full.unwrap(), model);
    }

    /// npy headers round-trip for arbitrary shapes and dtypes.
    #[test]
    fn npy_header_round_trips(
        dims in proptest::collection::vec(1u64..10_000, 1..4),
        dtype in prop_oneof![Just("<f4"), Just("<f8"), Just("<i2"), Just("<u1")],
    ) {
        let h = npy::NpyHeader { descr: dtype.to_string(), shape: dims.clone() };
        let enc = h.encode();
        let (parsed, off) = npy::NpyHeader::parse(&enc).unwrap();
        prop_assert_eq!(&parsed, &h);
        prop_assert_eq!(off as usize, enc.len());
        prop_assert_eq!(parsed.shape, dims);
    }

    /// FITS headers round-trip for arbitrary axes and bitpix values.
    #[test]
    fn fits_header_round_trips(
        axes in proptest::collection::vec(1u64..5_000, 1..4),
        bitpix in prop_oneof![Just(8i32), Just(16), Just(32), Just(-32), Just(-64)],
    ) {
        let h = fits::FitsHeader { bitpix, naxes: axes };
        let enc = h.encode();
        prop_assert_eq!(enc.len() as u64 % fits::BLOCK, 0);
        let (parsed, hlen) = fits::FitsHeader::parse(&enc).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert!(hlen as usize <= enc.len());
    }

    /// Timed layer calls never travel backwards in time, whatever the op mix.
    #[test]
    fn time_is_monotonic_through_the_stack(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 1);
        let r = RankId(0);
        let (h, mut t) = stdio::fopen(&mut w, r, "/p/gpfs1/mono.bin", "w+", SimTime::ZERO);
        let h = h.unwrap();
        for op in &ops {
            let t2 = match op {
                Op::Write(data) => stdio::fwrite(&mut w, r, h, data, t).1,
                Op::Read(len) => stdio::fread(&mut w, r, h, *len as u64, t).1,
                Op::Seek(to) => stdio::fseek(&mut w, r, h, *to as i64, Whence::Set, t).1,
            };
            prop_assert!(t2 >= t, "time went backwards: {t2} < {t}");
            t = t2;
        }
    }
}
