//! Randomized model tests across the interface layers: the buffered stdio
//! layer must be observationally equivalent to a plain byte-vector file
//! model, and format layers must round-trip arbitrary metadata.
//!
//! These were originally proptest properties; they are now deterministic
//! sweeps driven by the seeded [`vani_rt::Rng`], so the exact same cases run
//! on every machine. Failure cases proptest shrank in the past are pinned as
//! explicit regression tests below instead of living in a
//! `.proptest-regressions` sidecar.

use hpc_cluster::topology::RankId;
use io_layers::posix::Whence;
use io_layers::world::IoWorld;
use io_layers::{fits, npy, stdio};
use sim_core::{Dur, SimTime};
use vani_rt::Rng;

/// A scripted stdio operation.
#[derive(Debug, Clone)]
enum Op {
    Write(Vec<u8>),
    Read(u16),
    Seek(u16),
}

/// Draw one random operation (write with 1–599 random bytes, read of 1–599
/// bytes, or absolute seek to 0–2047).
fn random_op(r: &mut Rng) -> Op {
    match r.uniform_u64(0, 3) {
        0 => {
            let len = r.uniform_u64(1, 600) as usize;
            Op::Write((0..len).map(|_| r.uniform_u64(0, 256) as u8).collect())
        }
        1 => Op::Read(r.uniform_u64(1, 600) as u16),
        _ => Op::Seek(r.uniform_u64(0, 2048) as u16),
    }
}

/// Run a scripted op sequence against the buffered stdio layer and a Vec<u8>
/// model, asserting observational equivalence after every step and after a
/// close + full re-read.
fn check_stdio_matches_vec_model(ops: &[Op]) {
    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 1);
    let r = RankId(0);
    // Small buffer to force plenty of flush/fill boundary cases.
    let (h, mut t) =
        stdio::fopen_buffered(&mut w, r, "/p/gpfs1/prop.bin", "w+", 128, SimTime::ZERO);
    let h = h.unwrap();
    let mut model: Vec<u8> = Vec::new();
    let mut pos: usize = 0;
    for op in ops {
        match op {
            Op::Write(data) => {
                let (n, t2) = stdio::fwrite(&mut w, r, h, data, t);
                assert_eq!(n.unwrap(), data.len() as u64);
                t = t2;
                if model.len() < pos + data.len() {
                    model.resize(pos + data.len(), 0);
                }
                model[pos..pos + data.len()].copy_from_slice(data);
                pos += data.len();
            }
            Op::Read(len) => {
                let (data, t2) = stdio::fread_data(&mut w, r, h, *len as u64, t);
                let data = data.unwrap();
                t = t2;
                let avail = model.len().saturating_sub(pos).min(*len as usize);
                assert_eq!(data.len(), avail);
                let expect = model.get(pos..pos + avail).unwrap_or(&[]);
                assert_eq!(&data[..], expect);
                pos += avail;
            }
            Op::Seek(to) => {
                let (p, t2) = stdio::fseek(&mut w, r, h, *to as i64, Whence::Set, t);
                assert_eq!(p.unwrap(), *to as u64);
                t = t2;
                pos = *to as usize;
            }
        }
    }
    // Close and re-read the whole file: must equal the model.
    let (_, t) = stdio::fclose(&mut w, r, h, t);
    let (h2, t) = stdio::fopen(&mut w, r, "/p/gpfs1/prop.bin", "r", t);
    let h2 = h2.unwrap();
    let (full, _) = stdio::fread_data(&mut w, r, h2, model.len() as u64 + 64, t);
    assert_eq!(full.unwrap(), model);
}

/// Arbitrary interleavings of buffered writes, reads, and seeks produce
/// exactly the bytes a Vec<u8> file model predicts — buffering must be
/// invisible to the application.
#[test]
fn randomized_stdio_matches_vec_model() {
    let mut r = Rng::new(0x10_1a_0001);
    for _ in 0..48 {
        let n = r.uniform_u64(1, 40) as usize;
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut r)).collect();
        check_stdio_matches_vec_model(&ops);
    }
}

/// Pinned proptest shrink (formerly `proptests.proptest-regressions`): a
/// one-byte write, a 423-byte write that straddles several 128-byte buffer
/// flushes, a seek past EOF, and two reads that hit the EOF boundary.
#[test]
fn regression_buffered_write_seek_past_eof_then_read() {
    const BIG: &[u8] = &[
        139, 229, 195, 138, 227, 0, 190, 133, 108, 8, 227, 156, 6, 139, 199, 190, 186, 219, 51,
        170, 98, 40, 55, 65, 187, 220, 160, 198, 205, 240, 8, 193, 148, 153, 199, 48, 105, 120, 56,
        170, 156, 101, 80, 175, 205, 52, 67, 226, 102, 218, 229, 43, 197, 198, 106, 161, 33, 212,
        208, 115, 26, 17, 120, 142, 109, 4, 169, 96, 121, 77, 195, 22, 234, 88, 152, 111, 14, 194,
        138, 203, 230, 98, 246, 118, 136, 197, 146, 183, 236, 58, 171, 51, 16, 175, 216, 95, 69,
        193, 125, 189, 124, 0, 181, 57, 156, 254, 28, 101, 13, 33, 69, 66, 238, 251, 217, 65, 79,
        212, 221, 19, 193, 181, 93, 223, 139, 153, 232, 199, 169, 137, 207, 48, 171, 0, 216, 58,
        123, 204, 40, 74, 88, 42, 201, 13, 100, 141, 197, 203, 93, 26, 17, 240, 245, 205, 13, 253,
        224, 17, 68, 173, 182, 194, 2, 212, 123, 252, 110, 20, 144, 227, 108, 36, 239, 101, 31,
        210, 19, 10, 168, 91, 195, 79, 93, 172, 119, 42, 195, 250, 242, 202, 254, 248, 129, 157,
        98, 54, 75, 147, 80, 197, 152, 133, 30, 103, 10, 186, 67, 14, 240, 166, 84, 99, 113, 160,
        71, 203, 37, 126, 224, 118, 188, 250, 5, 95, 114, 82, 171, 26, 229, 87, 108, 92, 67, 141,
        239, 45, 79, 180, 228, 58, 161, 243, 83, 48, 13, 161, 201, 132, 229, 89, 183, 58, 161, 129,
        79, 78, 198, 244, 213, 83, 143, 16, 12, 28, 32, 180, 45, 151, 13, 133, 82, 80, 177, 159,
        18, 245, 167, 111, 50, 52, 132, 72, 122, 39, 160, 213, 195, 190, 214, 168, 104, 122, 90,
        30, 188, 168, 38, 201, 150, 8, 66, 38, 4, 118, 53, 51, 191, 197, 36, 63, 170, 154, 92, 27,
        133, 232, 199, 158, 6, 53, 242, 237, 24, 2, 152, 37, 19, 60, 216, 111, 131, 215, 240, 234,
        166, 108, 126, 125, 23, 28, 11, 233, 76, 150, 214, 142, 165, 120, 92, 125, 44, 227, 186, 5,
        175, 47, 123, 115, 140, 153, 116, 173, 54, 164, 199, 43, 82, 170, 121, 251, 223, 192, 215,
        197, 139, 62, 117, 108, 78, 239, 58, 6, 0, 64, 187, 87, 18, 90, 35, 185, 110, 91, 136, 202,
        107, 33, 212, 112, 82, 0, 104, 54, 163, 126, 226, 171, 1, 208, 88, 24, 111, 143, 89, 203,
        144, 42, 118, 117, 161, 141, 124, 108, 75, 89, 118, 186, 194, 69, 6, 221, 105, 87, 225,
        176, 190, 47, 55, 185, 77, 182, 226, 154, 186, 61,
    ];
    let ops = vec![
        Op::Write(vec![0]),
        Op::Write(BIG.to_vec()),
        Op::Seek(1033),
        Op::Read(248),
        Op::Read(456),
    ];
    check_stdio_matches_vec_model(&ops);
}

/// npy headers round-trip for arbitrary shapes and dtypes.
#[test]
fn randomized_npy_header_round_trips() {
    let mut r = Rng::new(0x10_1a_0002);
    const DTYPES: [&str; 4] = ["<f4", "<f8", "<i2", "<u1"];
    for _ in 0..64 {
        let ndims = r.uniform_u64(1, 4) as usize;
        let dims: Vec<u64> = (0..ndims).map(|_| r.uniform_u64(1, 10_000)).collect();
        let dtype = DTYPES[r.uniform_u64(0, DTYPES.len() as u64) as usize];
        let h = npy::NpyHeader {
            descr: dtype.to_string(),
            shape: dims.clone(),
        };
        let enc = h.encode();
        let (parsed, off) = npy::NpyHeader::parse(&enc).unwrap();
        assert_eq!(&parsed, &h);
        assert_eq!(off as usize, enc.len());
        assert_eq!(parsed.shape, dims);
    }
}

/// FITS headers round-trip for arbitrary axes and bitpix values.
#[test]
fn randomized_fits_header_round_trips() {
    let mut r = Rng::new(0x10_1a_0003);
    const BITPIX: [i32; 5] = [8, 16, 32, -32, -64];
    for _ in 0..64 {
        let naxes = r.uniform_u64(1, 4) as usize;
        let axes: Vec<u64> = (0..naxes).map(|_| r.uniform_u64(1, 5_000)).collect();
        let bitpix = BITPIX[r.uniform_u64(0, BITPIX.len() as u64) as usize];
        let h = fits::FitsHeader {
            bitpix,
            naxes: axes,
        };
        let enc = h.encode();
        assert_eq!(enc.len() as u64 % fits::BLOCK, 0);
        let (parsed, hlen) = fits::FitsHeader::parse(&enc).unwrap();
        assert_eq!(parsed, h);
        assert!(hlen as usize <= enc.len());
    }
}

/// Timed layer calls never travel backwards in time, whatever the op mix.
#[test]
fn randomized_time_is_monotonic_through_the_stack() {
    let mut rng = Rng::new(0x10_1a_0004);
    for _ in 0..48 {
        let n = rng.uniform_u64(1, 30) as usize;
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        let mut w = IoWorld::lassen(1, 1, Dur::from_secs(3600), 1);
        let r = RankId(0);
        let (h, mut t) = stdio::fopen(&mut w, r, "/p/gpfs1/mono.bin", "w+", SimTime::ZERO);
        let h = h.unwrap();
        for op in &ops {
            let t2 = match op {
                Op::Write(data) => stdio::fwrite(&mut w, r, h, data, t).1,
                Op::Read(len) => stdio::fread(&mut w, r, h, *len as u64, t).1,
                Op::Seek(to) => stdio::fseek(&mut w, r, h, *to as i64, Whence::Set, t).1,
            };
            assert!(t2 >= t, "time went backwards: {t2} < {t}");
            t = t2;
        }
    }
}
