//! Statistics kernels used by the workload analyzer.
//!
//! * [`Histogram`] — power-of-two bucketed histograms for request sizes and
//!   per-request bandwidths (the paper's Figures 1a–6a),
//! * [`Summary`] — streaming moments (mean/std/skewness/kurtosis, min/max),
//! * [`TimeSeries`] — fixed-width time binning for I/O timelines
//!   (Figures 1c–6c),
//! * [`DistributionFit`] — moment-based classification of sample-value
//!   distributions into uniform/normal/gamma (Table VI's "Data dist" row).

use crate::time::{Dur, SimTime};

/// A histogram over power-of-two buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))`, with values of zero counted in bucket 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = Self::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Count in the bucket containing `value`.
    pub fn count_at(&self, value: u64) -> u64 {
        self.counts
            .get(Self::bucket_of(value))
            .copied()
            .unwrap_or(0)
    }

    /// Iterate `(bucket_lo, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }

    /// Fraction of observations at or below `value`'s bucket.
    pub fn frac_le(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(value);
        let below: u64 = self.counts.iter().take(b + 1).sum();
        below as f64 / self.total as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Streaming summary statistics over f64 samples (Welford-style central
/// moments up to order four).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// New empty summary.
    pub fn new() -> Self {
        Summary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * (n - 1.0);
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness (0 when degenerate).
    pub fn skewness(&self) -> f64 {
        let var = self.variance();
        if self.n < 2 || var <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (self.m3 / n) / var.powf(1.5)
    }

    /// Kurtosis (3 = mesokurtic/normal; returns 0 when degenerate).
    pub fn kurtosis(&self) -> f64 {
        let var = self.variance();
        if self.n < 2 || var <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (self.m4 / n) / (var * var)
    }

    /// Smallest sample (infinity when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-infinity when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Distribution families the analyzer recognizes (Table VI "Data dist").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionFit {
    /// Flat spread over a bounded range.
    Uniform,
    /// Symmetric, bell-shaped.
    Normal,
    /// Right-skewed, non-negative.
    Gamma,
    /// Not enough signal to classify.
    Unknown,
}

impl DistributionFit {
    /// Classify by moments: near-zero skew splits uniform from normal by
    /// kurtosis (uniform ≈ 1.8, normal ≈ 3); pronounced positive skew with
    /// non-negative support reads as gamma.
    pub fn classify(s: &Summary) -> DistributionFit {
        if s.count() < 16 || s.std() <= f64::EPSILON {
            return DistributionFit::Unknown;
        }
        let skew = s.skewness();
        let kurt = s.kurtosis();
        if skew >= 0.5 && s.min() >= 0.0 {
            DistributionFit::Gamma
        } else if skew.abs() < 0.5 {
            if kurt < 2.4 {
                DistributionFit::Uniform
            } else {
                DistributionFit::Normal
            }
        } else {
            DistributionFit::Unknown
        }
    }

    /// Short label used in table output.
    pub fn label(&self) -> &'static str {
        match self {
            DistributionFit::Uniform => "uniform",
            DistributionFit::Normal => "normal",
            DistributionFit::Gamma => "gamma",
            DistributionFit::Unknown => "unknown",
        }
    }
}

/// Synthesize `n` bytes whose u8 values follow the given distribution —
/// used to stage dataset prefixes so the analyzer's distribution fitting
/// (Table VI's "Data dist") has real signal to classify.
pub fn synth_bytes(dist: DistributionFit, seed: u64, n: usize) -> Vec<u8> {
    let mut rng = crate::rng::DetRng::from_seed(seed);
    (0..n)
        .map(|_| match dist {
            DistributionFit::Uniform => rng.uniform_f64(0.0, 256.0) as u8,
            DistributionFit::Normal => rng.normal(128.0, 20.0).clamp(0.0, 255.0) as u8,
            DistributionFit::Gamma => rng.gamma(2.0, 24.0).clamp(0.0, 255.0) as u8,
            DistributionFit::Unknown => 0,
        })
        .collect()
}

/// A fixed-bin time series accumulating a value (e.g. bytes moved) per bin;
/// used to render I/O timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bin: Dur,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// New series with the given bin width.
    pub fn new(bin: Dur) -> Self {
        assert!(bin > Dur::ZERO, "bin width must be positive");
        TimeSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> Dur {
        self.bin
    }

    /// Add `amount` spread uniformly over `[start, end)`. Point events
    /// (`end <= start`) land entirely in `start`'s bin.
    pub fn add(&mut self, start: SimTime, end: SimTime, amount: f64) {
        let b0 = (start.as_nanos() / self.bin.as_nanos()) as usize;
        if end <= start {
            self.grow(b0 + 1);
            self.bins[b0] += amount;
            return;
        }
        let b1 = ((end.as_nanos().saturating_sub(1)) / self.bin.as_nanos()) as usize;
        self.grow(b1 + 1);
        let span = end.since(start).as_nanos() as f64;
        for b in b0..=b1 {
            let bin_start = (b as u64) * self.bin.as_nanos();
            let bin_end = bin_start + self.bin.as_nanos();
            let lo = bin_start.max(start.as_nanos());
            let hi = bin_end.min(end.as_nanos());
            self.bins[b] += amount * ((hi - lo) as f64 / span);
        }
    }

    fn grow(&mut self, n: usize) {
        if self.bins.len() < n {
            self.bins.resize(n, 0.0);
        }
    }

    /// The accumulated values per bin.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Total across all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Peak bin value.
    pub fn peak(&self) -> f64 {
        self.bins.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-bin rate (value / bin seconds) — e.g. bytes/bin → bytes/sec.
    pub fn rates(&self) -> Vec<f64> {
        let s = self.bin.as_secs_f64();
        self.bins.iter().map(|v| v / s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn histogram_buckets_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(4095), 11);
        assert_eq!(Histogram::bucket_of(4096), 12);
        assert_eq!(Histogram::bucket_lo(12), 4096);
    }

    #[test]
    fn histogram_counts_and_mass() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(100);
        h.record(5000);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count_at(64), 2); // 100 falls in [64,128)
        assert_eq!(h.count_at(4096), 1);
        assert_eq!(h.sum(), 5200);
        assert!((h.frac_le(128) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(10);
        b.record(1 << 30);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at(10), 2);
        assert_eq!(a.count_at(1 << 30), 1);
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn classifier_recognizes_uniform() {
        let mut r = DetRng::from_seed(1);
        let mut s = Summary::new();
        for _ in 0..5000 {
            s.record(r.uniform_f64(0.0, 100.0));
        }
        assert_eq!(DistributionFit::classify(&s), DistributionFit::Uniform);
    }

    #[test]
    fn classifier_recognizes_normal() {
        let mut r = DetRng::from_seed(2);
        let mut s = Summary::new();
        for _ in 0..5000 {
            s.record(r.normal(50.0, 5.0));
        }
        assert_eq!(DistributionFit::classify(&s), DistributionFit::Normal);
    }

    #[test]
    fn classifier_recognizes_gamma() {
        let mut r = DetRng::from_seed(3);
        let mut s = Summary::new();
        for _ in 0..5000 {
            s.record(r.gamma(2.0, 3.0));
        }
        assert_eq!(DistributionFit::classify(&s), DistributionFit::Gamma);
    }

    #[test]
    fn synth_bytes_round_trip_classification() {
        for dist in [
            DistributionFit::Uniform,
            DistributionFit::Normal,
            DistributionFit::Gamma,
        ] {
            let bytes = synth_bytes(dist, 42, 8192);
            let mut s = Summary::new();
            for &b in &bytes {
                s.record(b as f64);
            }
            assert_eq!(DistributionFit::classify(&s), dist, "{dist:?}");
        }
    }

    #[test]
    fn classifier_defers_on_tiny_samples() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(2.0);
        assert_eq!(DistributionFit::classify(&s), DistributionFit::Unknown);
    }

    #[test]
    fn timeseries_spreads_across_bins() {
        let mut ts = TimeSeries::new(Dur::from_secs(1));
        // 4 units over [0.5s, 2.5s): 0.5s in bin 0, 1s in bin 1, 0.5s in bin 2.
        ts.add(
            SimTime::from_secs_f64(0.5),
            SimTime::from_secs_f64(2.5),
            4.0,
        );
        let b = ts.bins();
        assert_eq!(b.len(), 3);
        assert!((b[0] - 1.0).abs() < 1e-9);
        assert!((b[1] - 2.0).abs() < 1e-9);
        assert!((b[2] - 1.0).abs() < 1e-9);
        assert!((ts.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_point_event_hits_one_bin() {
        let mut ts = TimeSeries::new(Dur::from_millis(100));
        ts.add(SimTime::from_secs(1), SimTime::from_secs(1), 7.0);
        assert!((ts.bins()[10] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_rates_scale_by_bin_width() {
        let mut ts = TimeSeries::new(Dur::from_millis(500));
        ts.add(SimTime::ZERO, SimTime::from_millis(500), 10.0);
        assert!((ts.rates()[0] - 20.0).abs() < 1e-9);
    }

    // Deterministic randomized sweeps (seeded `vani_rt::Rng`, fixed case
    // counts) — converted from the original proptest suites.

    /// Histogram mass conservation: total == number of records, and
    /// iter() covers all of it, for random value sets.
    #[test]
    fn randomized_histogram_mass() {
        let mut r = vani_rt::Rng::new(0x5747_0001);
        for _ in 0..64 {
            let n = r.uniform_u64(0, 500) as usize;
            let values: Vec<u64> = (0..n).map(|_| r.uniform_u64(0, u64::MAX / 2)).collect();
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            assert_eq!(h.total(), values.len() as u64);
            let iter_total: u64 = h.iter().map(|(_, c)| c).sum();
            assert_eq!(iter_total, values.len() as u64);
            assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        }
    }

    /// TimeSeries conserves the amount added regardless of interval.
    #[test]
    fn randomized_timeseries_conserves() {
        let mut r = vani_rt::Rng::new(0x5747_0002);
        for _ in 0..256 {
            let start = r.uniform_u64(0, 10_000_000);
            let len = r.uniform_u64(0, 10_000_000);
            let amount = r.uniform_f64(0.0, 1e6);
            let mut ts = TimeSeries::new(Dur::from_micros(250));
            ts.add(SimTime(start), SimTime(start + len), amount);
            assert!((ts.total() - amount).abs() < 1e-6 * amount.max(1.0));
        }
    }

    /// Welford summary agrees with the naive two-pass computation.
    #[test]
    fn randomized_summary_matches_naive() {
        let mut r = vani_rt::Rng::new(0x5747_0003);
        for _ in 0..64 {
            let n = r.uniform_u64(2, 200) as usize;
            let values: Vec<f64> = (0..n).map(|_| r.uniform_f64(-1e3, 1e3)).collect();
            let mut s = Summary::new();
            for &v in &values {
                s.record(v);
            }
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            assert!((s.mean() - mean).abs() < 1e-6);
            assert!((s.variance() - var).abs() < 1e-4 * var.max(1.0));
        }
    }
}
