//! Byte-size and bandwidth constants plus human-readable formatting helpers
//! used throughout the suite and in table/figure output.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte.
pub const TIB: u64 = 1024 * GIB;

/// Format a byte count with binary units ("1.50GiB").
pub fn fmt_bytes(b: u64) -> String {
    let bf = b as f64;
    if b >= TIB {
        format!("{:.2}TiB", bf / TIB as f64)
    } else if b >= GIB {
        format!("{:.2}GiB", bf / GIB as f64)
    } else if b >= MIB {
        format!("{:.2}MiB", bf / MIB as f64)
    } else if b >= KIB {
        format!("{:.2}KiB", bf / KIB as f64)
    } else {
        format!("{b}B")
    }
}

/// Format a bandwidth in bytes/second ("3.50GiB/s").
pub fn fmt_bw(bytes_per_sec: f64) -> String {
    let b = bytes_per_sec;
    if !b.is_finite() {
        return "inf".to_string();
    }
    if b >= TIB as f64 {
        format!("{:.2}TiB/s", b / TIB as f64)
    } else if b >= GIB as f64 {
        format!("{:.2}GiB/s", b / GIB as f64)
    } else if b >= MIB as f64 {
        format!("{:.2}MiB/s", b / MIB as f64)
    } else if b >= KIB as f64 {
        format!("{:.2}KiB/s", b / KIB as f64)
    } else {
        format!("{b:.1}B/s")
    }
}

/// Format a ratio as a percentage ("87.5%").
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Format a count with thousands separators ("1,234,567").
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let digits = s.as_bytes();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*d as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * MIB / 2), "1.50MiB");
        assert_eq!(fmt_bytes(GIB), "1.00GiB");
        assert_eq!(fmt_bytes(5 * TIB / 2), "2.50TiB");
    }

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(fmt_bw(64.0 * MIB as f64), "64.00MiB/s");
        assert_eq!(fmt_bw(64.0 * GIB as f64), "64.00GiB/s");
        assert_eq!(fmt_bw(f64::INFINITY), "inf");
        assert_eq!(fmt_bw(3.0), "3.0B/s");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(fmt_pct(0.875), "87.5%");
        assert_eq!(fmt_pct(0.0), "0.0%");
        assert_eq!(fmt_pct(1.0), "100.0%");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }
}
