//! Virtual time for the discrete-event simulation.
//!
//! [`SimTime`] is an absolute instant and [`Dur`] a span, both in integer
//! nanoseconds. Integer nanoseconds keep the simulation deterministic (no
//! floating-point drift in the event queue) while still resolving sub-µs
//! device latencies such as shared-memory access.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// An absolute instant in simulated time, in nanoseconds since job start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for SimTime {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(SimTime)
    }
}

impl ToJson for Dur {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Dur {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(Dur)
    }
}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span from an earlier instant to this one (saturating).
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        Dur((s.max(0.0) * 1e9).round() as u64)
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds in this span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time to move `bytes` through a channel of `bytes_per_sec` bandwidth.
    ///
    /// Zero bandwidth is treated as infinitely slow and panics in debug
    /// builds; callers model unreachable devices explicitly instead.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Dur {
        debug_assert!(bytes_per_sec > 0, "bandwidth must be positive");
        if bytes == 0 {
            return Dur::ZERO;
        }
        // ns = bytes * 1e9 / bw, computed in u128 to avoid overflow for
        // terabyte transfers.
        let ns = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        Dur(ns.min(u64::MAX as u128) as u64)
    }

    /// The implied bandwidth of moving `bytes` in this span, bytes/second.
    /// Returns `f64::INFINITY` for zero-length spans of non-zero bytes.
    pub fn bandwidth(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            if bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            bytes as f64 / self.as_secs_f64()
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_exact_for_round_numbers() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = Dur::for_transfer(1 << 20, 1 << 20);
        assert_eq!(d, Dur::from_secs(1));
    }

    #[test]
    fn transfer_time_handles_huge_transfers() {
        // 1 TiB at 1 GiB/s = 1024 seconds; must not overflow u64 math.
        let d = Dur::for_transfer(1 << 40, 1 << 30);
        assert_eq!(d, Dur::from_secs(1024));
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        assert_eq!(Dur::for_transfer(0, 100), Dur::ZERO);
    }

    #[test]
    fn bandwidth_round_trips_transfer() {
        let bytes = 64 * 1024 * 1024u64;
        let bw = 3_000_000_000u64;
        let d = Dur::for_transfer(bytes, bw);
        let measured = d.bandwidth(bytes);
        assert!((measured - bw as f64).abs() / (bw as f64) < 1e-6);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), Dur::ZERO);
        assert_eq!(b.since(a), Dur::from_secs(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Dur::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", Dur::from_micros(250)), "250.00us");
        assert_eq!(format!("{}", Dur::from_millis(3)), "3.00ms");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(5) + Dur::from_millis(500);
        assert!((t.as_secs_f64() - 5.5).abs() < 1e-9);
        let back = t - Dur::from_millis(500);
        assert_eq!(back, SimTime::from_secs(5));
    }
}
