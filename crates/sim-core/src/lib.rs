//! # sim-core
//!
//! Discrete-event simulation core for the vani-rs suite.
//!
//! This crate provides the substrate-independent building blocks used by the
//! cluster, storage, and workload simulators:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`SimTime`]) and durations
//!   ([`Dur`]) with bandwidth/latency arithmetic,
//! * [`event`] — a deterministic event queue with stable FIFO tie-breaking,
//! * [`resource`] — queueing-theoretic resource models (single server, server
//!   pools, bandwidth channels) that produce contention effects,
//! * [`rng`] — deterministic, component-seeded random number generation,
//! * [`stats`] — histogram, summary-statistics, time-series binning, and
//!   distribution-fitting kernels used by the analyzer,
//! * [`units`] — byte/bandwidth constants and human-readable formatting.
//!
//! Everything here is deterministic: two runs with the same seeds produce
//! bit-identical schedules, which the test suite relies on.

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use event::{EventQueue, QueuedEvent};
pub use resource::{BandwidthChannel, ServerPool, ServerQueue};
pub use rng::DetRng;
pub use stats::{Histogram, Summary, TimeSeries};
pub use time::{Dur, SimTime};
