//! Queueing-theoretic resource models.
//!
//! These are the primitives from which the storage and network simulators
//! build contention: a FIFO single-server queue ([`ServerQueue`]), a pool of
//! identical servers with earliest-free dispatch ([`ServerPool`]), and a
//! serializing bandwidth channel ([`BandwidthChannel`]).
//!
//! The simulation dispatches requests in global arrival-time order (the
//! engine's event queue guarantees this), so a simple `next_free` horizon per
//! server reproduces FIFO queueing delay exactly.

use crate::time::{Dur, SimTime};

/// A single FIFO server: requests are serviced back-to-back in arrival order.
#[derive(Debug, Clone, Default)]
pub struct ServerQueue {
    next_free: SimTime,
    busy: Dur,
    served: u64,
}

impl ServerQueue {
    /// New idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve a request arriving at `arrival` with service demand `service`.
    /// Returns `(start, end)` of service.
    pub fn serve(&mut self, arrival: SimTime, service: Dur) -> (SimTime, SimTime) {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.served += 1;
        (start, end)
    }

    /// Earliest instant at which a new arrival would begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over a horizon (busy / horizon), clamped to `[0, 1]`.
    pub fn utilization(&self, horizon: Dur) -> f64 {
        if horizon == Dur::ZERO {
            0.0
        } else {
            (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
        }
    }
}

/// A pool of identical FIFO servers; each request is dispatched to the server
/// that frees up earliest (central-queue approximation of an M/M/k station).
///
/// An optional `route` lets callers pin a request to a specific member (e.g.
/// a file stripe that lives on one object server).
#[derive(Debug, Clone)]
pub struct ServerPool {
    servers: Vec<ServerQueue>,
}

impl ServerPool {
    /// Create a pool of `n` idle servers (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a server pool needs at least one server");
        ServerPool {
            servers: vec![ServerQueue::new(); n],
        }
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Serve on the earliest-free server. Returns `(start, end)`.
    pub fn serve(&mut self, arrival: SimTime, service: Dur) -> (SimTime, SimTime) {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.next_free())
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.servers[idx].serve(arrival, service)
    }

    /// Serve on a specific server (e.g. stripe routing). `which` is taken
    /// modulo the pool size so callers can pass raw stripe indices.
    pub fn serve_on(&mut self, which: usize, arrival: SimTime, service: Dur) -> (SimTime, SimTime) {
        let n = self.servers.len();
        self.servers[which % n].serve(arrival, service)
    }

    /// Earliest time any server frees up.
    pub fn earliest_free(&self) -> SimTime {
        self.servers
            .iter()
            .map(|s| s.next_free())
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total requests served across the pool.
    pub fn served(&self) -> u64 {
        self.servers.iter().map(|s| s.served()).sum()
    }

    /// Total busy time across the pool.
    pub fn busy_time(&self) -> Dur {
        self.servers
            .iter()
            .fold(Dur::ZERO, |acc, s| acc + s.busy_time())
    }

    /// Mean utilization across servers over a horizon.
    pub fn utilization(&self, horizon: Dur) -> f64 {
        if self.servers.is_empty() {
            return 0.0;
        }
        self.servers
            .iter()
            .map(|s| s.utilization(horizon))
            .sum::<f64>()
            / self.servers.len() as f64
    }
}

/// A shared link that serializes transfers at a fixed byte rate, with a fixed
/// per-message latency. Models NICs and backbone links.
#[derive(Debug, Clone)]
pub struct BandwidthChannel {
    bytes_per_sec: u64,
    latency: Dur,
    queue: ServerQueue,
    bytes_moved: u64,
}

impl BandwidthChannel {
    /// A channel moving `bytes_per_sec` with `latency` per message.
    pub fn new(bytes_per_sec: u64, latency: Dur) -> Self {
        assert!(bytes_per_sec > 0, "channel bandwidth must be positive");
        BandwidthChannel {
            bytes_per_sec,
            latency,
            queue: ServerQueue::new(),
            bytes_moved: 0,
        }
    }

    /// Transfer `bytes` starting no earlier than `arrival`; returns the
    /// completion time (queueing + latency + serialization).
    pub fn transfer(&mut self, arrival: SimTime, bytes: u64) -> SimTime {
        let service = self.latency + Dur::for_transfer(bytes, self.bytes_per_sec);
        let (_, end) = self.queue.serve(arrival, service);
        self.bytes_moved += bytes;
        end
    }

    /// Configured bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Configured per-message latency.
    pub fn latency(&self) -> Dur {
        self.latency
    }

    /// Total bytes moved through the channel.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Earliest time a new transfer could begin.
    pub fn next_free(&self) -> SimTime {
        self.queue.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = ServerQueue::new();
        let (start, end) = s.serve(SimTime::from_secs(10), Dur::from_secs(2));
        assert_eq!(start, SimTime::from_secs(10));
        assert_eq!(end, SimTime::from_secs(12));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = ServerQueue::new();
        s.serve(SimTime::ZERO, Dur::from_secs(5));
        // Arrives at t=1 but must wait until t=5.
        let (start, end) = s.serve(SimTime::from_secs(1), Dur::from_secs(1));
        assert_eq!(start, SimTime::from_secs(5));
        assert_eq!(end, SimTime::from_secs(6));
        assert_eq!(s.served(), 2);
        assert_eq!(s.busy_time(), Dur::from_secs(6));
    }

    #[test]
    fn pool_spreads_load_across_servers() {
        let mut p = ServerPool::new(4);
        // Four simultaneous arrivals each take 1s: all should finish at t=1.
        let ends: Vec<SimTime> = (0..4)
            .map(|_| p.serve(SimTime::ZERO, Dur::from_secs(1)).1)
            .collect();
        assert!(ends.iter().all(|&e| e == SimTime::from_secs(1)));
        // A fifth queues behind one of them.
        let (_, end5) = p.serve(SimTime::ZERO, Dur::from_secs(1));
        assert_eq!(end5, SimTime::from_secs(2));
    }

    #[test]
    fn pool_routing_pins_to_one_server() {
        let mut p = ServerPool::new(4);
        let (_, e1) = p.serve_on(2, SimTime::ZERO, Dur::from_secs(1));
        let (_, e2) = p.serve_on(2, SimTime::ZERO, Dur::from_secs(1));
        let (_, e3) = p.serve_on(6, SimTime::ZERO, Dur::from_secs(1)); // 6 % 4 == 2
        assert_eq!(e1, SimTime::from_secs(1));
        assert_eq!(e2, SimTime::from_secs(2));
        assert_eq!(e3, SimTime::from_secs(3));
    }

    #[test]
    fn channel_serializes_transfers() {
        // 1 MiB/s channel, zero latency: two 1 MiB messages take 2 seconds.
        let mut c = BandwidthChannel::new(1 << 20, Dur::ZERO);
        let t1 = c.transfer(SimTime::ZERO, 1 << 20);
        let t2 = c.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(t1, SimTime::from_secs(1));
        assert_eq!(t2, SimTime::from_secs(2));
        assert_eq!(c.bytes_moved(), 2 << 20);
    }

    #[test]
    fn channel_latency_applies_per_message() {
        let mut c = BandwidthChannel::new(1 << 30, Dur::from_micros(5));
        let t = c.transfer(SimTime::ZERO, 0);
        assert_eq!(t, SimTime::ZERO + Dur::from_micros(5));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut s = ServerQueue::new();
        s.serve(SimTime::ZERO, Dur::from_secs(10));
        assert!(s.utilization(Dur::from_secs(5)) <= 1.0);
        assert!((s.utilization(Dur::from_secs(20)) - 0.5).abs() < 1e-9);
    }

    // Deterministic randomized sweeps (seeded `vani_rt::Rng`) — converted
    // from the original proptest suites.

    /// FIFO invariant: for non-decreasing arrivals, service start times
    /// are non-decreasing and never precede arrival.
    #[test]
    fn randomized_fifo_start_ordering() {
        let mut r = vani_rt::Rng::new(0x5e57_0001);
        for _ in 0..128 {
            let n = r.uniform_u64(1, 100) as usize;
            let mut arrivals: Vec<u64> = (0..n).map(|_| r.uniform_u64(0, 10_000)).collect();
            let services: Vec<u64> = (0..n).map(|_| r.uniform_u64(1, 1_000)).collect();
            arrivals.sort_unstable();
            let mut s = ServerQueue::new();
            let mut last_start = SimTime::ZERO;
            for (&a, &svc) in arrivals.iter().zip(&services) {
                let (start, end) = s.serve(SimTime(a), Dur(svc));
                assert!(start >= SimTime(a));
                assert!(start >= last_start);
                assert_eq!(end, start + Dur(svc));
                last_start = start;
            }
        }
    }

    /// Pool conservation: total busy time equals the sum of services.
    #[test]
    fn randomized_pool_conserves_work() {
        let mut r = vani_rt::Rng::new(0x5e57_0002);
        for _ in 0..128 {
            let njobs = r.uniform_u64(1, 100) as usize;
            let n = r.uniform_u64(1, 8) as usize;
            let mut jobs: Vec<(u64, u64)> = (0..njobs)
                .map(|_| (r.uniform_u64(0, 1_000), r.uniform_u64(1, 100)))
                .collect();
            jobs.sort_unstable();
            let mut p = ServerPool::new(n);
            let mut total = Dur::ZERO;
            for (a, svc) in jobs {
                p.serve(SimTime(a), Dur(svc));
                total += Dur(svc);
            }
            assert_eq!(p.busy_time(), total);
        }
    }
}
