//! Deterministic, component-seeded random number generation.
//!
//! Every stochastic element of the simulation (service-time jitter, sample
//! value synthesis, workload shuffles) draws from a [`DetRng`] derived from a
//! root seed plus a component label. This keeps runs reproducible while
//! decoupling streams: adding draws in one component never perturbs another.
//!
//! The generator is `vani-rt`'s splittable xoshiro256++ ([`vani_rt::Rng`]);
//! this module only adds the component-labelling convention and the sampler
//! surface the simulators were written against.

use vani_rt::Rng;

/// FNV-1a hash of a label, used to derive per-component seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic RNG stream for one simulation component.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: Rng,
}

impl DetRng {
    /// Derive a stream from a root seed and a component label.
    pub fn for_component(root_seed: u64, label: &str) -> Self {
        DetRng {
            inner: Rng::new(root_seed ^ fnv1a(label)),
        }
    }

    /// Derive a stream directly from a seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: Rng::new(seed),
        }
    }

    /// Fork an independent child stream; the parent stream advances by two
    /// draws and the child shares no further state with it.
    pub fn split(&mut self) -> DetRng {
        DetRng {
            inner: self.inner.split(),
        }
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.uniform_f64(lo, hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.uniform_u64(lo, hi)
    }

    /// Normal draw with the given mean and standard deviation. A non-finite
    /// or non-positive `std` falls back to the mean.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        self.inner.normal(mean, std)
    }

    /// Gamma draw with the given shape and scale; falls back to
    /// `shape * scale` (the mean) on invalid parameters.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        self.inner.gamma(shape, scale)
    }

    /// Lognormal draw: `exp(N(mu, sigma))`; falls back to the median
    /// `exp(mu)` on invalid parameters.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.inner.lognormal(mu, sigma)
    }

    /// A multiplicative jitter factor in `[1 - amp, 1 + amp]`, used to model
    /// device service-time variation.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&amp));
        1.0 + self.uniform_f64(-amp, amp)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.bernoulli(p)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        self.inner.shuffle(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = DetRng::for_component(42, "mds");
        let mut b = DetRng::for_component(42, "mds");
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1 << 40), b.uniform_u64(0, 1 << 40));
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::for_component(42, "mds");
        let mut b = DetRng::for_component(42, "nsd");
        let same = (0..100)
            .filter(|_| a.uniform_u64(0, 1 << 40) == b.uniform_u64(0, 1 << 40))
            .count();
        assert!(same < 5, "streams should be effectively independent");
    }

    #[test]
    fn split_is_deterministic_and_decoupled() {
        let mut a = DetRng::from_seed(23);
        let mut b = DetRng::from_seed(23);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..50 {
            assert_eq!(ca.uniform_u64(0, 1 << 40), cb.uniform_u64(0, 1 << 40));
        }
        // The parents stayed in lockstep too.
        assert_eq!(a.uniform_u64(0, 1 << 40), b.uniform_u64(0, 1 << 40));
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = DetRng::from_seed(7);
        for _ in 0..1000 {
            let j = r.jitter(0.25);
            assert!((0.75..=1.25).contains(&j));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut r = DetRng::from_seed(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.normal(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn gamma_mean_is_shape_times_scale() {
        let mut r = DetRng::from_seed(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gamma(4.0, 2.5)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3);
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut r = DetRng::from_seed(19);
        let n = 50_000;
        // mean of LogNormal(0, 0.5) = exp(0.125).
        let mean: f64 = (0..n).map(|_| r.lognormal(0.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.125f64.exp()).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn invalid_distribution_params_fall_back_to_mean() {
        let mut r = DetRng::from_seed(13);
        assert_eq!(r.normal(5.0, f64::NAN), 5.0);
        assert_eq!(r.gamma(-2.0, 3.0), -6.0);
        assert_eq!(r.lognormal(0.0, -1.0), 1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::from_seed(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }
}
