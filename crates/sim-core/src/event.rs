//! Deterministic event queue.
//!
//! A thin priority queue over `(time, sequence)` pairs. Ties in time are
//! broken by insertion order, which makes simulation schedules reproducible
//! regardless of payload type or hash ordering.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in virtual time.
#[derive(Debug, Clone)]
pub struct QueuedEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index used for FIFO tie-breaking.
    pub seq: u64,
    /// Caller payload.
    pub payload: T,
}

impl<T> PartialEq for QueuedEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for QueuedEvent<T> {}

impl<T> PartialOrd for QueuedEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueuedEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number winning ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue.
///
/// ```
/// use sim_core::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// q.push(SimTime::from_secs(1), "sooner-but-second");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().payload, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueuedEvent<T>>,
    next_seq: u64,
    /// Highest time popped so far; used to detect causality violations.
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Create an empty queue with room for `cap` pending events, avoiding
    /// the heap's incremental growth when the event count is known up front
    /// (e.g. one wake-up event per rank in the cluster engine).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is earlier than the last popped
    /// event — scheduling into the past is a simulation bug.
    pub fn push(&mut self, time: SimTime, payload: T) {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, payload });
    }

    /// Remove and return the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<QueuedEvent<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the last popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 3, 2, 4] {
            q.push(SimTime::from_secs(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(128);
        assert!(q.capacity() >= 128);
        let cap = q.capacity();
        for i in 0..128 {
            q.push(SimTime::from_secs(i), i as u32);
        }
        assert_eq!(q.capacity(), cap, "no reallocation while within capacity");
        q.reserve(512);
        assert!(q.capacity() >= q.len() + 512);
        // Behavior is unchanged: still pops in time order.
        assert_eq!(q.pop().unwrap().payload, 0);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), ());
        q.push(SimTime::from_secs(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    // Deterministic randomized sweeps (seeded `vani_rt::Rng`) — converted
    // from the original proptest suites.

    /// Popped times are non-decreasing for arbitrary insertion orders.
    #[test]
    fn randomized_pop_order_is_sorted() {
        let mut r = vani_rt::Rng::new(0xe7e7_0001);
        for _ in 0..128 {
            let n = r.uniform_u64(0, 200) as usize;
            let times: Vec<u64> = (0..n).map(|_| r.uniform_u64(0, 1_000_000)).collect();
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime(t), t);
            }
            let mut last = 0u64;
            while let Some(ev) = q.pop() {
                assert!(ev.time.0 >= last);
                last = ev.time.0;
            }
        }
    }

    /// The queue yields exactly the multiset of inserted payloads.
    #[test]
    fn randomized_no_events_lost() {
        let mut r = vani_rt::Rng::new(0xe7e7_0002);
        for _ in 0..128 {
            let n = r.uniform_u64(0, 200) as usize;
            let times: Vec<u64> = (0..n).map(|_| r.uniform_u64(0, 1_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
