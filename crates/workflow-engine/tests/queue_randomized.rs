//! Randomized tests for the pegasus-mpi-cluster-style scheduler: for random
//! DAGs and random worker interleavings, every task executes exactly once,
//! never before its dependencies, and the queue terminates.
//!
//! Originally proptest properties; now deterministic sweeps driven by the
//! seeded [`vani_rt::Rng`] so the same cases run everywhere. Cyclic DAGs
//! (which proptest used to discard via `prop_assume!`) are simply skipped.

use vani_rt::Rng;
use workflow_engine::dag::{Dag, Task, TaskId};
use workflow_engine::queue::WorkQueue;

/// Build a random DAG: `n` tasks; each task may depend on a subset of
/// earlier tasks (guaranteeing acyclicity by construction).
fn random_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut g = Dag::new();
    for i in 0..n {
        g.add(Task {
            name: format!("t{i}"),
            app: format!("k{}", i % 3),
            inputs: vec![],
            outputs: vec![],
        });
    }
    for &(a, b) in edges {
        let (lo, hi) = (a.min(b) % n, (a.max(b) + 1) % n);
        if lo < hi {
            g.add_edge(TaskId(lo as u32), TaskId(hi as u32));
        }
    }
    g
}

/// Draw `count` random node pairs in `0..bound`.
fn random_edges(r: &mut Rng, bound: u64, count: usize) -> Vec<(usize, usize)> {
    (0..count)
        .map(|_| {
            (
                r.uniform_u64(0, bound) as usize,
                r.uniform_u64(0, bound) as usize,
            )
        })
        .collect()
}

/// Every task is claimed exactly once and completion order respects
/// dependencies, for any greedy interleaving of `k` workers.
#[test]
fn randomized_scheduler_is_exactly_once_and_dependency_safe() {
    let mut r = Rng::new(0xdac_0001);
    for _ in 0..64 {
        let n = r.uniform_u64(1, 40) as usize;
        let nedges = r.uniform_u64(0, 80) as usize;
        let edges = random_edges(&mut r, 40, nedges);
        let k = r.uniform_u64(1, 8) as usize;
        // Worker pick order: which worker acts at each step.
        let npicks = r.uniform_u64(1, 400) as usize;
        let picks: Vec<usize> = (0..npicks).map(|_| r.uniform_u64(0, 8) as usize).collect();
        let dag = random_dag(n, &edges);
        if !dag.is_acyclic() {
            continue;
        }
        let mut q = WorkQueue::new(dag.clone(), 0);
        // Each worker holds at most one claimed task.
        let mut holding: Vec<Option<TaskId>> = vec![None; k];
        let mut completed: Vec<TaskId> = Vec::new();
        let mut done_set = std::collections::HashSet::new();
        let mut pick_iter = picks.into_iter().cycle();
        let mut steps = 0usize;
        while !q.all_done() {
            steps += 1;
            assert!(steps < 100_000, "scheduler did not terminate");
            let w = pick_iter.next().expect("cycle is infinite") % k;
            match holding[w].take() {
                Some(t) => {
                    // Completing a task must release only tasks whose deps
                    // are all done.
                    for &d in dag.deps_of(t) {
                        assert!(done_set.contains(&d), "{t:?} ran before dep {d:?}");
                    }
                    q.complete(t);
                    done_set.insert(t);
                    completed.push(t);
                }
                None => {
                    if let Some(t) = q.try_claim() {
                        holding[w] = Some(t);
                    }
                    // else: this worker idles this step; others proceed.
                }
            }
        }
        // Exactly-once execution.
        assert_eq!(completed.len(), dag.len());
        let mut sorted: Vec<u32> = completed.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..dag.len() as u32).collect::<Vec<_>>());
        // And the completion sequence is a valid topological order.
        let mut seen = std::collections::HashSet::new();
        for t in &completed {
            for d in dag.deps_of(*t) {
                assert!(seen.contains(d));
            }
            seen.insert(*t);
        }
    }
}

/// Wake-gate protocol: after any completion that exposes new work, the
/// pre-bump gate id is exactly one less than the current wake gate, so
/// a worker parked on the old id is always woken by the completer.
#[test]
fn randomized_wake_gate_ids_never_skip() {
    let mut r = Rng::new(0xdac_0002);
    for _ in 0..64 {
        let n = r.uniform_u64(2, 30) as usize;
        let nedges = r.uniform_u64(0, 60) as usize;
        let edges = random_edges(&mut r, 30, nedges);
        let dag = random_dag(n, &edges);
        if !dag.is_acyclic() {
            continue;
        }
        let mut q = WorkQueue::new(dag, 500);
        let mut last_gate = q.wake_gate();
        while !q.all_done() {
            let t = match q.try_claim() {
                Some(t) => t,
                None => break, // nothing ready while something runs: not possible serially
            };
            let gate_before = q.wake_gate();
            let newly = q.complete(t);
            let gate_after = q.wake_gate();
            if !newly.is_empty() || q.all_done() {
                assert_eq!(gate_after, gate_before + 1);
                assert_eq!(q.gate_to_open_after_complete(), gate_before);
            } else {
                assert_eq!(gate_after, gate_before);
            }
            assert!(gate_after >= last_gate);
            last_gate = gate_after;
        }
        assert!(q.all_done());
    }
}

/// Levels are consistent with the queue: tasks become ready only after
/// every task in every earlier level that they depend on completes —
/// a serial executor drains the DAG in at most `levels` waves.
#[test]
fn randomized_serial_execution_matches_level_structure() {
    let mut r = Rng::new(0xdac_0003);
    for _ in 0..64 {
        let n = r.uniform_u64(1, 30) as usize;
        let nedges = r.uniform_u64(0, 60) as usize;
        let edges = random_edges(&mut r, 30, nedges);
        let dag = random_dag(n, &edges);
        if !dag.is_acyclic() {
            continue;
        }
        let levels = dag.levels();
        let mut q = WorkQueue::new(dag, 0);
        let mut waves = 0usize;
        while !q.all_done() {
            waves += 1;
            assert!(waves <= levels.len(), "more waves than DAG levels");
            // Drain everything currently ready (one "wave").
            let mut batch = Vec::new();
            while let Some(t) = q.try_claim() {
                batch.push(t);
            }
            assert!(!batch.is_empty(), "stalled with work outstanding");
            for t in batch {
                q.complete(t);
            }
        }
        assert_eq!(waves, levels.len());
    }
}
