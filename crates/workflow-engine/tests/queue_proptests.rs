//! Property tests for the pegasus-mpi-cluster-style scheduler: for random
//! DAGs and random worker interleavings, every task executes exactly once,
//! never before its dependencies, and the queue terminates.

use proptest::prelude::*;
use workflow_engine::dag::{Dag, Task, TaskId};
use workflow_engine::queue::WorkQueue;

/// Build a random DAG: `n` tasks; each task may depend on a subset of
/// earlier tasks (guaranteeing acyclicity by construction).
fn random_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut g = Dag::new();
    for i in 0..n {
        g.add(Task {
            name: format!("t{i}"),
            app: format!("k{}", i % 3),
            inputs: vec![],
            outputs: vec![],
        });
    }
    for &(a, b) in edges {
        let (lo, hi) = (a.min(b) % n, (a.max(b) + 1) % n);
        if lo < hi {
            g.add_edge(TaskId(lo as u32), TaskId(hi as u32));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every task is claimed exactly once and completion order respects
    /// dependencies, for any greedy interleaving of `k` workers.
    #[test]
    fn scheduler_is_exactly_once_and_dependency_safe(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        k in 1usize..8,
        // Worker pick order: which worker acts at each step.
        picks in proptest::collection::vec(0usize..8, 0..400),
    ) {
        let dag = random_dag(n, &edges);
        prop_assume!(dag.is_acyclic());
        let mut q = WorkQueue::new(dag.clone(), 0);
        // Each worker holds at most one claimed task.
        let mut holding: Vec<Option<TaskId>> = vec![None; k];
        let mut completed: Vec<TaskId> = Vec::new();
        let mut done_set = std::collections::HashSet::new();
        let mut pick_iter = picks.into_iter().cycle();
        let mut steps = 0usize;
        while !q.all_done() {
            steps += 1;
            prop_assert!(steps < 100_000, "scheduler did not terminate");
            let w = pick_iter.next().expect("cycle is infinite") % k;
            match holding[w].take() {
                Some(t) => {
                    // Completing a task must release only tasks whose deps
                    // are all done.
                    for &d in dag.deps_of(t) {
                        prop_assert!(done_set.contains(&d), "{t:?} ran before dep {d:?}");
                    }
                    q.complete(t);
                    done_set.insert(t);
                    completed.push(t);
                }
                None => {
                    if let Some(t) = q.try_claim() {
                        holding[w] = Some(t);
                    }
                    // else: this worker idles this step; others proceed.
                }
            }
        }
        // Exactly-once execution.
        prop_assert_eq!(completed.len(), dag.len());
        let mut sorted: Vec<u32> = completed.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..dag.len() as u32).collect::<Vec<_>>());
        // And the completion sequence is a valid topological order.
        let mut seen = std::collections::HashSet::new();
        for t in &completed {
            for d in dag.deps_of(*t) {
                prop_assert!(seen.contains(d));
            }
            seen.insert(*t);
        }
    }

    /// Wake-gate protocol: after any completion that exposes new work, the
    /// pre-bump gate id is exactly one less than the current wake gate, so
    /// a worker parked on the old id is always woken by the completer.
    #[test]
    fn wake_gate_ids_never_skip(
        n in 2usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        let dag = random_dag(n, &edges);
        prop_assume!(dag.is_acyclic());
        let mut q = WorkQueue::new(dag, 500);
        let mut last_gate = q.wake_gate();
        while !q.all_done() {
            let t = match q.try_claim() {
                Some(t) => t,
                None => break, // nothing ready while something runs: not possible serially
            };
            let gate_before = q.wake_gate();
            let newly = q.complete(t);
            let gate_after = q.wake_gate();
            if !newly.is_empty() || q.all_done() {
                prop_assert_eq!(gate_after, gate_before + 1);
                prop_assert_eq!(q.gate_to_open_after_complete(), gate_before);
            } else {
                prop_assert_eq!(gate_after, gate_before);
            }
            prop_assert!(gate_after >= last_gate);
            last_gate = gate_after;
        }
        prop_assert!(q.all_done());
    }

    /// Levels are consistent with the queue: tasks become ready only after
    /// every task in every earlier level that they depend on completes —
    /// a serial executor drains the DAG in at most `levels` waves.
    #[test]
    fn serial_execution_matches_level_structure(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        let dag = random_dag(n, &edges);
        prop_assume!(dag.is_acyclic());
        let levels = dag.levels();
        let mut q = WorkQueue::new(dag, 0);
        let mut waves = 0usize;
        while !q.all_done() {
            waves += 1;
            prop_assert!(waves <= levels.len(), "more waves than DAG levels");
            // Drain everything currently ready (one "wave").
            let mut batch = Vec::new();
            while let Some(t) = q.try_claim() {
                batch.push(t);
            }
            prop_assert!(!batch.is_empty(), "stalled with work outstanding");
            for t in batch {
                q.complete(t);
            }
        }
        prop_assert_eq!(waves, levels.len());
    }
}
