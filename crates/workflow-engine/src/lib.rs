//! # workflow-engine
//!
//! The workflow substrate beneath the paper's Montage experiments:
//!
//! * [`dag`] — task DAGs: explicit dependencies or dependencies inferred
//!   from producer/consumer file relations (how Pegasus plans an abstract
//!   workflow), plus topological levels and critical-path analysis,
//! * [`queue`] — a pegasus-mpi-cluster-style work queue: a fixed pool of
//!   MPI ranks pulls ready tasks, and completions unlock dependents. The
//!   queue exposes an epoch counter that maps onto engine gates so idle
//!   workers sleep until new work appears instead of spinning.

pub mod dag;
pub mod queue;

pub use dag::{Dag, Task, TaskId};
pub use queue::WorkQueue;
