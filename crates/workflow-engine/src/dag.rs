//! Task DAGs: structure, validation, and analysis.

use std::collections::{HashMap, HashSet, VecDeque};

/// Identifies a task within one DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// One schedulable task (a kernel invocation in Pegasus terms).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Instance name, e.g. `"mProject_0042"`.
    pub name: String,
    /// Executable/kernel name, e.g. `"mProject"` — the paper's app entity.
    pub app: String,
    /// Logical input files.
    pub inputs: Vec<String>,
    /// Logical output files.
    pub outputs: Vec<String>,
}

/// A directed acyclic graph of tasks.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    tasks: Vec<Task>,
    /// deps[t] = tasks that must finish before t starts.
    deps: Vec<Vec<TaskId>>,
    /// children[t] = tasks unlocked by t.
    children: Vec<Vec<TaskId>>,
}

impl Dag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; returns its id.
    pub fn add(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        self.deps.push(Vec::new());
        self.children.push(Vec::new());
        id
    }

    /// Declare that `before` must complete before `after` starts.
    pub fn add_edge(&mut self, before: TaskId, after: TaskId) {
        if !self.deps[after.0 as usize].contains(&before) {
            self.deps[after.0 as usize].push(before);
            self.children[before.0 as usize].push(after);
        }
    }

    /// Infer edges from file relations: a task consuming file `f` depends on
    /// the task producing `f`. This is how Pegasus turns an abstract
    /// workflow into a concrete plan.
    pub fn infer_edges_from_files(&mut self) {
        let mut producer: HashMap<&str, TaskId> = HashMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            for out in &t.outputs {
                producer.insert(out.as_str(), TaskId(i as u32));
            }
        }
        let mut edges = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            for input in &t.inputs {
                if let Some(&p) = producer.get(input.as_str()) {
                    if p.0 as usize != i {
                        edges.push((p, TaskId(i as u32)));
                    }
                }
            }
        }
        for (a, b) in edges {
            self.add_edge(a, b);
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Access a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// All tasks, indexed by `TaskId`.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Direct dependencies of a task.
    pub fn deps_of(&self, id: TaskId) -> &[TaskId] {
        &self.deps[id.0 as usize]
    }

    /// Direct dependents of a task.
    pub fn children_of(&self, id: TaskId) -> &[TaskId] {
        &self.children[id.0 as usize]
    }

    /// Tasks with no dependencies.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.tasks.len() as u32)
            .map(TaskId)
            .filter(|t| self.deps[t.0 as usize].is_empty())
            .collect()
    }

    /// Topological order; `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut q: VecDeque<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.0 as usize] == 0)
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some(t) = q.pop_front() {
            out.push(t);
            for &c in &self.children[t.0 as usize] {
                indeg[c.0 as usize] -= 1;
                if indeg[c.0 as usize] == 0 {
                    q.push_back(c);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Whether the DAG is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Tasks grouped by topological level (level = longest path from a
    /// root); the "stages" of the workflow.
    pub fn levels(&self) -> Vec<Vec<TaskId>> {
        let order = self
            .topo_order()
            .expect("levels() requires an acyclic graph");
        let mut level = vec![0usize; self.tasks.len()];
        for &t in &order {
            for &d in &self.deps[t.0 as usize] {
                level[t.0 as usize] = level[t.0 as usize].max(level[d.0 as usize] + 1);
            }
        }
        let max = level.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max + 1];
        for (i, &l) in level.iter().enumerate() {
            out[l].push(TaskId(i as u32));
        }
        out
    }

    /// Length (in tasks) of the longest dependency chain.
    pub fn critical_path_len(&self) -> usize {
        self.levels().len()
    }

    /// Distinct kernel (app) names, in first-appearance order.
    pub fn app_names(&self) -> Vec<&str> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tasks {
            if seen.insert(t.app.as_str()) {
                out.push(t.app.as_str());
            }
        }
        out
    }

    /// App-level dependency edges (producer app → consumer app), the
    /// coarse graph shown in the paper's Figures 5(b)/6(b).
    pub fn app_dependencies(&self) -> Vec<(String, String)> {
        let mut set = HashSet::new();
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &self.deps[i] {
                let from = self.tasks[d.0 as usize].app.clone();
                let to = t.app.clone();
                if from != to {
                    set.insert((from, to));
                }
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, app: &str, inputs: &[&str], outputs: &[&str]) -> Task {
        Task {
            name: name.into(),
            app: app.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn diamond() -> Dag {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = Dag::new();
        let a = g.add(task("a", "A", &[], &["f1"]));
        let b = g.add(task("b", "B", &["f1"], &["f2"]));
        let c = g.add(task("c", "C", &["f1"], &["f3"]));
        let d = g.add(task("d", "D", &["f2", "f3"], &["f4"]));
        let _ = (a, b, c, d);
        g.infer_edges_from_files();
        g
    }

    #[test]
    fn file_inference_builds_the_diamond() {
        let g = diamond();
        assert_eq!(g.roots(), vec![TaskId(0)]);
        assert_eq!(g.deps_of(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.children_of(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|t| t.0 == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn levels_group_parallel_work() {
        let g = diamond();
        let levels = g.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![TaskId(0)]);
        assert_eq!(levels[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(levels[2], vec![TaskId(3)]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = Dag::new();
        let a = g.add(task("a", "A", &[], &[]));
        let b = g.add(task("b", "B", &[], &[]));
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(!g.is_acyclic());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn app_dependencies_collapse_instances() {
        let mut g = Dag::new();
        for i in 0..4 {
            g.add(task(
                &format!("p{i}"),
                "mProject",
                &["raw.fits"],
                &[&format!("proj{i}")],
            ));
        }
        let inputs: Vec<String> = (0..4).map(|i| format!("proj{i}")).collect();
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        g.add(task("add", "mAdd", &input_refs, &["mosaic.fits"]));
        g.infer_edges_from_files();
        assert_eq!(
            g.app_dependencies(),
            vec![("mProject".to_string(), "mAdd".to_string())]
        );
        assert_eq!(g.app_names(), vec!["mProject", "mAdd"]);
    }

    #[test]
    fn self_produced_inputs_do_not_create_self_edges() {
        let mut g = Dag::new();
        g.add(task("x", "X", &["f"], &["f"]));
        g.infer_edges_from_files();
        assert!(g.is_acyclic());
        assert!(g.deps_of(TaskId(0)).is_empty());
    }
}
