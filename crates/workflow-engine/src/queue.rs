//! A pegasus-mpi-cluster-style work queue.
//!
//! pegasus-mpi-cluster runs a whole Pegasus sub-workflow inside one MPI job:
//! a master hands ready tasks to a fixed pool of worker ranks, and task
//! completions release dependents. [`WorkQueue`] is that master's state,
//! designed to be driven from engine rank scripts:
//!
//! * workers call [`WorkQueue::try_claim`]; `None` means "no ready work",
//! * on completion, [`WorkQueue::complete`] releases dependents and bumps
//!   the *wake epoch* — idle workers park on the epoch's gate id and the
//!   completing worker opens it,
//! * [`WorkQueue::all_done`] tells idle workers when to exit.

use crate::dag::{Dag, TaskId};
use std::collections::VecDeque;

/// Task lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Blocked,
    Ready,
    Running,
    Done,
}

/// The scheduler state for one DAG execution.
#[derive(Debug)]
pub struct WorkQueue {
    dag: Dag,
    state: Vec<TaskState>,
    missing_deps: Vec<usize>,
    ready: VecDeque<TaskId>,
    done: usize,
    epoch: u64,
    /// Base value distinguishing this queue's gate ids from other gates.
    gate_base: u64,
}

impl WorkQueue {
    /// Build a queue over a DAG; roots start ready.
    ///
    /// `gate_base` namespaces the wake-gate ids (pick a value unique among
    /// the gates your scripts use).
    pub fn new(dag: Dag, gate_base: u64) -> Self {
        assert!(dag.is_acyclic(), "work queue requires an acyclic DAG");
        let n = dag.len();
        let missing_deps: Vec<usize> = (0..n)
            .map(|i| dag.deps_of(TaskId(i as u32)).len())
            .collect();
        let mut state = vec![TaskState::Blocked; n];
        let mut ready = VecDeque::new();
        for (i, &m) in missing_deps.iter().enumerate() {
            if m == 0 {
                state[i] = TaskState::Ready;
                ready.push_back(TaskId(i as u32));
            }
        }
        WorkQueue {
            dag,
            state,
            missing_deps,
            ready,
            done: 0,
            epoch: 0,
            gate_base,
        }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Claim the next ready task, marking it running.
    pub fn try_claim(&mut self) -> Option<TaskId> {
        let t = self.ready.pop_front()?;
        debug_assert_eq!(self.state[t.0 as usize], TaskState::Ready);
        self.state[t.0 as usize] = TaskState::Running;
        Some(t)
    }

    /// Mark a task complete; returns the newly-ready tasks. Bumps the wake
    /// epoch when new work (or overall completion) appears.
    pub fn complete(&mut self, t: TaskId) -> Vec<TaskId> {
        assert_eq!(
            self.state[t.0 as usize],
            TaskState::Running,
            "completing a task that is not running"
        );
        self.state[t.0 as usize] = TaskState::Done;
        self.done += 1;
        let mut newly = Vec::new();
        for &c in self.dag.children_of(t) {
            let m = &mut self.missing_deps[c.0 as usize];
            *m -= 1;
            if *m == 0 {
                self.state[c.0 as usize] = TaskState::Ready;
                self.ready.push_back(c);
                newly.push(c);
            }
        }
        if !newly.is_empty() || self.all_done() {
            self.epoch += 1;
        }
        newly
    }

    /// Whether every task has completed.
    pub fn all_done(&self) -> bool {
        self.done == self.dag.len()
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.done
    }

    /// Number of currently ready (unclaimed) tasks.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// The gate id an idle worker should wait on *right now*. The id
    /// changes every time new work appears, so a worker that re-checks
    /// after waking never misses a wake-up.
    pub fn wake_gate(&self) -> u64 {
        self.gate_base + self.epoch
    }

    /// The gate id that must be opened after a `complete` call that changed
    /// the epoch: the gate idle workers were waiting on *before* the bump.
    pub fn gate_to_open_after_complete(&self) -> u64 {
        self.gate_base + self.epoch - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Task;

    fn chain(n: usize) -> Dag {
        let mut g = Dag::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|i| {
                g.add(Task {
                    name: format!("t{i}"),
                    app: "A".into(),
                    inputs: vec![],
                    outputs: vec![],
                })
            })
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    fn fan(n: usize) -> Dag {
        // One root, n independent children, one sink.
        let mut g = Dag::new();
        let root = g.add(Task {
            name: "root".into(),
            app: "R".into(),
            inputs: vec![],
            outputs: vec![],
        });
        let sink = g.add(Task {
            name: "sink".into(),
            app: "S".into(),
            inputs: vec![],
            outputs: vec![],
        });
        for i in 0..n {
            let t = g.add(Task {
                name: format!("w{i}"),
                app: "W".into(),
                inputs: vec![],
                outputs: vec![],
            });
            g.add_edge(root, t);
            g.add_edge(t, sink);
        }
        g
    }

    #[test]
    fn chain_executes_in_order() {
        let mut q = WorkQueue::new(chain(4), 1000);
        let mut executed = Vec::new();
        while !q.all_done() {
            let t = q.try_claim().expect("chain always has one ready task");
            executed.push(t);
            q.complete(t);
        }
        assert_eq!(executed, (0..4).map(TaskId).collect::<Vec<_>>());
    }

    #[test]
    fn fan_exposes_parallelism() {
        let mut q = WorkQueue::new(fan(8), 1000);
        let root = q.try_claim().unwrap();
        assert_eq!(q.try_claim(), None, "only the root is ready initially");
        let newly = q.complete(root);
        assert_eq!(newly.len(), 8);
        assert_eq!(q.ready_count(), 8);
        // All eight can be claimed before any completes.
        let claimed: Vec<_> = (0..8).map(|_| q.try_claim().unwrap()).collect();
        assert_eq!(claimed.len(), 8);
        assert_eq!(q.try_claim(), None);
        for t in claimed {
            q.complete(t);
        }
        let sink = q.try_claim().unwrap();
        q.complete(sink);
        assert!(q.all_done());
    }

    #[test]
    fn epochs_bump_only_when_work_appears() {
        let mut q = WorkQueue::new(fan(2), 50);
        let g0 = q.wake_gate();
        let root = q.try_claim().unwrap();
        q.complete(root); // two workers become ready
        assert_eq!(q.wake_gate(), g0 + 1);
        assert_eq!(q.gate_to_open_after_complete(), g0);
        let a = q.try_claim().unwrap();
        let b = q.try_claim().unwrap();
        q.complete(a); // sink not ready yet (b still running): no bump
        assert_eq!(q.wake_gate(), g0 + 1);
        q.complete(b); // sink ready: bump
        assert_eq!(q.wake_gate(), g0 + 2);
    }

    #[test]
    fn final_completion_bumps_epoch_for_idle_workers() {
        let mut q = WorkQueue::new(chain(1), 7);
        let t = q.try_claim().unwrap();
        let before = q.wake_gate();
        q.complete(t);
        assert!(q.all_done());
        assert_eq!(q.wake_gate(), before + 1, "exit wake-up must fire");
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_unclaimed_task_panics() {
        let mut q = WorkQueue::new(chain(2), 0);
        q.complete(TaskId(1));
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_dag_is_rejected() {
        let mut g = chain(2);
        g.add_edge(TaskId(1), TaskId(0));
        WorkQueue::new(g, 0);
    }
}
