//! # exemplar-workloads
//!
//! Faithful I/O-skeleton re-implementations of the paper's six exemplar
//! workloads (§III-B), parameterized by a *scale factor* so tests can run
//! miniature versions while the benches run paper-scale ones:
//!
//! * [`cm1`] — atmospheric simulation: per-rank 16 MiB config reads, then
//!   compute/write steps where only rank 0 writes simulation data in 4 KiB
//!   sequential transfers to shared files (Fig. 1),
//! * [`hacc`] — cosmology checkpoint/restart: file-per-process POSIX, nine
//!   variables written in 16 MiB granularity then read back (Fig. 2),
//! * [`cosmoflow`] — deep-learning input pipeline: ~50 K shared 32 MiB
//!   HDF5 files read collectively through MPI-IO, unchunked, with periodic
//!   small checkpoint writes (Fig. 3),
//! * [`jag`] — AI surrogate over a single 200 MB npy dataset: sub-4 KiB
//!   sample reads through stdio, per-epoch checkpoints, GPU compute (Fig. 4),
//! * [`montage`] — the MPI-flavored mosaic workflow: six stages per node,
//!   FITS inputs at 64 KiB transfers, intermediates at <4 KiB (Fig. 5),
//! * [`montage_pegasus`] — the Pegasus-planned mosaic: nine kernels over a
//!   pegasus-mpi-cluster work queue (Fig. 6),
//! * [`ior`] — an IOR-like synthetic used to calibrate the PFS peak
//!   bandwidth (Table IX's "Max I/O BW using 32-node IOR").
//!
//! Every run returns a [`harness::WorkloadRun`]: the engine report plus the
//! world (trace, storage counters) the Vani analyzer consumes.

pub mod cm1;
pub mod cosmoflow;
pub mod hacc;
pub mod harness;
pub mod ior;
pub mod jag;
pub mod montage;
pub mod montage_pegasus;

pub use harness::{WorkloadKind, WorkloadRun};
