//! CM1 — atmospheric simulation (paper §III-B1, §IV-A1, Figure 1).
//!
//! Observed behavior being reproduced:
//! * ~20 GiB of configuration reads: 16 MiB files, one per reader rank,
//!   read with large transfers (these achieve the high aggregate bandwidth
//!   of Fig. 1a) and re-read once (init + restart), then broadcast,
//! * ~1 GiB of simulation output written **only by rank 0** in sequential
//!   4 KiB transfers to shared step files that every node leader opens and
//!   closes (Fig. 1b) — the small transfers yield ~64 MiB/s and dominate
//!   I/O time (Fig. 1c),
//! * heavy metadata share: each small write is paired with a seek, and the
//!   leaders' open/close churn adds more (87.5 % of I/O time in metadata).

use crate::harness::{execute_with_recovery, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{Outcome, RankScript, StepEffect};
use hpc_cluster::mpi::{CollectiveKind, CommId};
use hpc_cluster::topology::RankId;
use io_layers::posix::{self, Fd, OpenFlags, Whence};
use io_layers::world::IoWorld;
use sim_core::units::{KIB, MIB};
use sim_core::{Dur, SimTime};
use storage_sim::{FaultPlan, InterferenceSchedule};

/// CM1 parameters; `default_paper()` matches the paper's run.
#[derive(Debug, Clone)]
pub struct Cm1Params {
    /// Nodes in the job.
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Config files (FPP): the paper observed 737.
    pub n_config_files: u32,
    /// Bytes per config file (16 MiB).
    pub config_bytes: u64,
    /// Transfer size for config reads.
    pub config_xfer: u64,
    /// Shared simulation-output files (37).
    pub n_shared_files: u32,
    /// Total simulation output written by rank 0 (1 GiB).
    pub write_total: u64,
    /// Write transfer size (4 KiB).
    pub write_xfer: u64,
    /// Simulation steps with compute+write alternation.
    pub n_steps: u32,
    /// Compute time per step per rank.
    pub step_compute: Dur,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl Cm1Params {
    /// The paper's configuration: 32×40 ranks, 664 s job, 11 % I/O.
    pub fn paper() -> Self {
        Cm1Params {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 40,
            n_config_files: 737,
            config_bytes: 16 * MIB,
            config_xfer: 4 * MIB,
            n_shared_files: 37,
            write_total: 1024 * MIB,
            write_xfer: 4 * KIB,
            n_steps: 12,
            step_compute: Dur::from_secs_f64(49.0),
        }
    }

    /// Scaled-down variant for fast runs; scale 1.0 = paper.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        Cm1Params {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p
                .ranks_per_node
                .min(scaled(p.ranks_per_node as u64, scale.max(0.25), 2) as u32),
            n_config_files: scaled(p.n_config_files as u64, scale, 2) as u32,
            config_bytes: scaled(p.config_bytes, scale.sqrt(), 64 * KIB),
            config_xfer: p
                .config_xfer
                .min(scaled(p.config_bytes, scale.sqrt(), 64 * KIB)),
            n_shared_files: scaled(p.n_shared_files as u64, scale, 2) as u32,
            write_total: scaled(p.write_total, scale, 1 * MIB),
            write_xfer: p.write_xfer,
            n_steps: scaled(p.n_steps as u64, scale.max(0.25), 2) as u32,
            step_compute: Dur::from_secs_f64(p.step_compute.as_secs_f64() * scale.max(0.02)),
        }
    }
}

/// Small writes batched per engine step (rank 0 is the only writer of the
/// shared files, so coarser interleaving does not change contention).
const WRITE_BATCH: u64 = 32;

enum Phase {
    OpenConfig,
    ReadConfig { fd: Fd, pass: u8, off: u64 },
    CloseConfig { fd: Fd },
    Bcast,
    StepCompute { step: u32 },
    StepOpen { step: u32 },
    StepWrite { step: u32, fd: Fd, off: u64 },
    StepClose { step: u32, fd: Fd },
    StepBarrier { step: u32 },
    Done,
}

struct Cm1Script {
    p: Cm1Params,
    phase: Phase,
    /// First step to run: 0 on a cold start, the durable-checkpoint count
    /// when the harness relaunches after a crash (each completed step file
    /// is a durable checkpoint).
    start_step: u32,
    /// Start of the in-flight step-file write sequence (rank 0 only);
    /// closes the `Checkpoint` span when the step file goes durable.
    ckpt_begin: SimTime,
}

impl Cm1Script {
    fn shared_path(&self, step: u32) -> String {
        format!(
            "/p/gpfs1/cm1/out/cm1out_{:06}.dat",
            step % self.p.n_shared_files
        )
    }

    fn per_step_bytes(&self) -> u64 {
        (self.p.write_total / self.p.n_steps as u64).max(self.p.write_xfer)
    }
}

impl RankScript<IoWorld> for Cm1Script {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        let is_reader = (rank.0) < self.p.n_config_files;
        let is_leader = w.alloc.is_node_leader(rank);
        let is_writer = rank.0 == 0;
        loop {
            match self.phase {
                Phase::OpenConfig => {
                    if !is_reader {
                        self.phase = Phase::Bcast;
                        continue;
                    }
                    let path = format!("/p/gpfs1/cm1/config/input_{:04}.cfg", rank.0);
                    let (fd, t) = posix::open(w, rank, &path, OpenFlags::read_only(), now);
                    let fd = fd.expect("config file staged");
                    self.phase = Phase::ReadConfig {
                        fd,
                        pass: 0,
                        off: 0,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::ReadConfig { fd, pass, off } => {
                    if off >= self.p.config_bytes {
                        if pass == 0 {
                            // Restart pass: re-read from the start.
                            let (_, t) = posix::lseek(w, rank, fd, 0, Whence::Set, now);
                            self.phase = Phase::ReadConfig {
                                fd,
                                pass: 1,
                                off: 0,
                            };
                            return StepEffect::busy_until(t);
                        }
                        self.phase = Phase::CloseConfig { fd };
                        continue;
                    }
                    let (n, t) = posix::read(w, rank, fd, self.p.config_xfer, now);
                    let n = n.expect("config read");
                    self.phase = Phase::ReadConfig {
                        fd,
                        pass,
                        off: off + n.max(1),
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::CloseConfig { fd } => {
                    let (_, t) = posix::close(w, rank, fd, now);
                    self.phase = Phase::Bcast;
                    return StepEffect::busy_until(t);
                }
                Phase::Bcast => {
                    self.phase = Phase::StepCompute {
                        step: self.start_step,
                    };
                    return StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId::WORLD,
                            kind: CollectiveKind::Bcast,
                            bytes: self.p.config_bytes.min(16 * MIB),
                        },
                        open_gates: vec![],
                    };
                }
                Phase::StepCompute { step } => {
                    if step >= self.p.n_steps {
                        self.phase = Phase::Done;
                        continue;
                    }
                    let t = w.compute(rank, self.p.step_compute, now);
                    self.phase = Phase::StepOpen { step };
                    return StepEffect::busy_until(t);
                }
                Phase::StepOpen { step } => {
                    if !is_leader {
                        self.phase = Phase::StepBarrier { step };
                        continue;
                    }
                    if is_writer {
                        self.ckpt_begin = now;
                    }
                    let path = self.shared_path(step);
                    let (fd, t) = posix::open(
                        w,
                        rank,
                        &path,
                        if is_writer {
                            OpenFlags::read_write()
                        } else {
                            OpenFlags {
                                create: true,
                                write: true,
                                ..Default::default()
                            }
                        },
                        now,
                    );
                    let fd = match fd {
                        Ok(f) => f,
                        Err(_) => {
                            // First opener creates it.
                            let (f2, t2) =
                                posix::open(w, rank, &path, OpenFlags::write_create(), now);
                            let f2 = f2.expect("create step file");
                            self.phase = if is_writer {
                                Phase::StepWrite {
                                    step,
                                    fd: f2,
                                    off: 0,
                                }
                            } else {
                                Phase::StepClose { step, fd: f2 }
                            };
                            return StepEffect::busy_until(t2);
                        }
                    };
                    self.phase = if is_writer {
                        Phase::StepWrite { step, fd, off: 0 }
                    } else {
                        Phase::StepClose { step, fd }
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::StepWrite { step, fd, off } => {
                    let total = self.per_step_bytes();
                    if off >= total {
                        self.phase = Phase::StepClose { step, fd };
                        continue;
                    }
                    // The 3D in-memory array is emitted as seek+4 KiB-write
                    // pairs; batch a few per engine step.
                    let mut t = now;
                    let mut o = off;
                    for _ in 0..WRITE_BATCH {
                        if o >= total {
                            break;
                        }
                        let (_, t2) = posix::lseek(w, rank, fd, o as i64, Whence::Set, t);
                        let (res, t3) =
                            posix::write_pattern(w, rank, fd, self.p.write_xfer, 11, t2);
                        res.expect("step write");
                        t = t3;
                        o += self.p.write_xfer;
                    }
                    self.phase = Phase::StepWrite { step, fd, off: o };
                    return StepEffect::busy_until(t);
                }
                Phase::StepClose { step, fd } => {
                    let (_, t) = posix::close(w, rank, fd, now);
                    if is_writer {
                        // The step file is durable: mark the checkpoint the
                        // harness restarts from (span = open → close).
                        use recorder_sim::record::{Layer, OpKind};
                        w.trace_io(
                            rank,
                            Layer::App,
                            OpKind::Checkpoint,
                            self.ckpt_begin,
                            t,
                            None,
                            0,
                            0,
                        );
                    }
                    self.phase = Phase::StepBarrier { step };
                    return StepEffect::busy_until(t);
                }
                Phase::StepBarrier { step } => {
                    self.phase = Phase::StepCompute { step: step + 1 };
                    return StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId::WORLD,
                            kind: CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    };
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

/// Stage the config files into the PFS (they pre-exist the job).
fn stage_inputs(world: &mut IoWorld, p: &Cm1Params) {
    let store = world.storage.pfs_mut().store_mut();
    // CM1's atmospheric state variables are normally distributed (Table VI);
    // stage a value prefix the analyzer's distribution fitting can sample.
    let prefix =
        sim_core::stats::synth_bytes(sim_core::stats::DistributionFit::Normal, 0xC1, 16384);
    for i in 0..p.n_config_files {
        let path = format!("/p/gpfs1/cm1/config/input_{i:04}.cfg");
        let key = store.create(&path, false).expect("stage config");
        store
            .write(
                key,
                0,
                storage_sim::file::Segment::Pattern {
                    seed: 0xC1 + i as u64,
                    len: p.config_bytes,
                },
            )
            .expect("stage config body");
        store
            .write(
                key,
                1024,
                storage_sim::file::Segment::Bytes(std::sync::Arc::new(prefix.clone())),
            )
            .expect("stage config prefix");
    }
    store.mkdirs("/p/gpfs1/cm1/out").expect("mkdir out");
}

/// Run CM1 at the given scale (1.0 = paper run).
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = Cm1Params::scaled(scale);
    run_with(p, scale, seed)
}

/// Run CM1 with explicit parameters.
pub fn run_with(p: Cm1Params, scale: f64, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(7200), seed);
    // Pre-size the capture columns: every rank opens/reads/closes one
    // config file, rank 0 streams write_total in write_xfer chunks across
    // the shared output files, plus one collective per step.
    let ranks = (p.nodes * p.ranks_per_node) as u64;
    world.tracer.reserve(
        (ranks * (4 + p.config_bytes / p.config_xfer.max(1))
            + p.write_total / p.write_xfer.max(1)
            + p.n_shared_files as u64 * 2
            + p.n_steps as u64) as usize,
    );
    stage_inputs(&mut world, &p);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "cm1");
    }
    let n = world.alloc.total_ranks();
    let crashes = p.faults.crashes_sorted();
    // Every launch (cold start or post-crash relaunch) re-reads the config
    // and resumes at the first step without a durable step file.
    execute_with_recovery(
        WorkloadKind::Cm1,
        scale,
        world,
        &crashes,
        move |ckpts_done, _epoch| {
            (0..n)
                .map(|_| {
                    Box::new(Cm1Script {
                        p: p.clone(),
                        phase: Phase::OpenConfig,
                        start_step: ckpts_done as u32,
                        ckpt_begin: SimTime::ZERO,
                    }) as Box<dyn RankScript<IoWorld>>
                })
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::{Layer, OpKind};

    fn tiny() -> WorkloadRun {
        run(0.02, 42)
    }

    #[test]
    fn only_rank0_writes_simulation_data() {
        let run = tiny();
        let c = run.columnar();
        let writes = c.select(|i| c.op[i] == OpKind::Write && c.layer[i] == Layer::Posix);
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|&i| c.rank[i as usize] == 0));
    }

    #[test]
    fn many_ranks_read_config() {
        let run = tiny();
        let c = run.columnar();
        let reads = c.select(|i| c.op[i] == OpKind::Read);
        let readers: std::collections::HashSet<u32> =
            reads.iter().map(|&i| c.rank[i as usize]).collect();
        assert!(readers.len() > 1, "multiple ranks read config files");
    }

    #[test]
    fn reads_dwarf_writes_in_bytes() {
        let run = tiny();
        let c = run.columnar();
        let rbytes = c.sum_bytes(&c.select(|i| c.op[i] == OpKind::Read));
        let wbytes = c.sum_bytes(&c.select(|i| c.op[i] == OpKind::Write));
        // At paper scale the ratio is 20:1; the scaled-down job keeps the
        // direction (reads dominate) even with far fewer reader ranks.
        assert!(
            2 * rbytes > 3 * wbytes,
            "reads {rbytes} should beat writes {wbytes}"
        );
    }

    #[test]
    fn writes_are_small_reads_are_large() {
        let run = tiny();
        let c = run.columnar();
        let writes = c.select(|i| c.op[i] == OpKind::Write && c.bytes[i] > 0);
        let reads = c.select(|i| c.op[i] == OpKind::Read && c.bytes[i] > 0);
        let avg_w = c.sum_bytes(&writes) / writes.len() as u64;
        let avg_r = c.sum_bytes(&reads) / reads.len() as u64;
        assert!(avg_w <= 4 * KIB, "write transfer {avg_w} should be 4 KiB");
        assert!(avg_r >= 32 * KIB, "read transfer {avg_r} should be large");
    }

    #[test]
    fn metadata_ops_dominate_op_mix() {
        let run = tiny();
        let c = run.columnar();
        let posix = c.select(|i| c.layer[i] == Layer::Posix && c.op[i].is_io());
        let meta = posix
            .iter()
            .filter(|&&i| c.op[i as usize].is_meta())
            .count();
        let frac = meta as f64 / posix.len() as f64;
        // Paper: ~70 % of CM1 operations are metadata (Table III).
        assert!(frac > 0.35, "metadata fraction {frac} too low");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(0.01, 7);
        let b = run(0.01, 7);
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.world.tracer.len(), b.world.tracer.len());
    }

    #[test]
    fn every_completed_step_marks_a_durable_checkpoint() {
        let run = tiny();
        let c = run.columnar();
        let ckpts = c.select(|i| c.op[i] == OpKind::Checkpoint);
        assert_eq!(ckpts.len() as u32, Cm1Params::scaled(0.02).n_steps);
        assert!(ckpts.iter().all(|&i| c.rank[i as usize] == 0));
    }

    #[test]
    fn rank_crash_restarts_from_last_step_checkpoint() {
        let healthy = run(0.02, 42);
        let mid = sim_core::SimTime::from_nanos(healthy.report.makespan.as_nanos() / 2);
        let crashed = || {
            let mut p = Cm1Params::scaled(0.02);
            p.faults = FaultPlan::none().with_rank_crash(3, mid);
            run_with(p, 0.02, 42)
        };
        let a = crashed();
        let c = a.columnar();
        let crash = c.select(|i| c.op[i] == OpKind::Crash);
        let restart = c.select(|i| c.op[i] == OpKind::RestartEpoch);
        assert_eq!(crash.len(), 1, "one crash event");
        assert_eq!(restart.len(), 1, "one restart epoch");
        assert_eq!(
            c.rank[crash[0] as usize], 3,
            "crash attributed to the dead rank"
        );
        // Lost work is re-run after a restart delay, so the job takes longer.
        assert!(a.report.makespan > healthy.report.makespan);
        // Every step still completed (checkpoints are cumulative; none re-run).
        let ckpts = c.select(|i| c.op[i] == OpKind::Checkpoint);
        assert_eq!(ckpts.len() as u32, Cm1Params::scaled(0.02).n_steps);
        // And the recovery path is bit-deterministic.
        let b = crashed();
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.columnar(), b.columnar());
    }

    #[test]
    fn node_crash_kills_and_recovers_too() {
        let mut p = Cm1Params::scaled(0.02);
        p.faults = FaultPlan::none().with_node_crash(0, sim_core::SimTime::from_secs(2));
        let run = run_with(p, 0.02, 42);
        let c = run.columnar();
        assert_eq!(c.select(|i| c.op[i] == OpKind::Crash).len(), 1);
        assert_eq!(c.select(|i| c.op[i] == OpKind::RestartEpoch).len(), 1);
    }
}
