//! Montage with MPI — the six-stage mosaic workflow (paper §III-B5,
//! §IV-A5, Figure 5, and the Figure 8 use case).
//!
//! Per node: a *sequential* leader process runs mProject → mImgTbl, every
//! rank joins the parallel mAddMPI stage, then the leader runs mShrink →
//! mViewer (the sequential/parallel/sequential structure of §III-B5).
//! Input FITS images are read with 64 KiB transfers; intermediate files are
//! written and re-read with small (≤4 KiB) transfers, which is where 95 %
//! of I/O time goes — the paper's Figure 8 optimization moves exactly these
//! files into `/dev/shm`, which this module supports via
//! [`MontageParams::workdir`].

use crate::harness::{execute, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{Outcome, RankScript, StepEffect};
use hpc_cluster::mpi::{CollectiveKind, CommId, Communicator};
use hpc_cluster::topology::RankId;
use io_layers::fits::{self, FitsHeader};
pub use io_layers::posix::Whence as SeekWhence;
use io_layers::stdio::{self, FileStream};
use io_layers::world::IoWorld;
use sim_core::units::{KIB, MIB};
use sim_core::{Dur, SimTime};
use storage_sim::file::Segment;
use storage_sim::{FaultPlan, InterferenceSchedule};

/// Montage-MPI parameters.
#[derive(Debug, Clone)]
pub struct MontageParams {
    /// Nodes in the job.
    pub nodes: u32,
    /// Ranks per node (40; only the leader runs sequential stages).
    pub ranks_per_node: u32,
    /// Input FITS images per node (30 → 960 total).
    pub inputs_per_node: u32,
    /// Image axes (880×880 int16 ≈ 1.5 MiB per image).
    pub image_axes: (u64, u64),
    /// Projected intermediate bytes per node (the mosaic segments bring
    /// the per-node intermediate total to the ~800 MiB of §V-B2).
    pub proj_bytes_per_node: u64,
    /// Intermediate write transfer size (≤4 KiB at the app level).
    pub inter_xfer: u64,
    /// mAddMPI read bytes per rank (~3 MiB).
    pub madd_read_per_rank: u64,
    /// mAddMPI write bytes per rank (~20 MiB).
    pub madd_write_per_rank: u64,
    /// mAddMPI write transfer size (32 KiB).
    pub madd_xfer: u64,
    /// mViewer read bytes per node (~750 MiB).
    pub mviewer_read_per_node: u64,
    /// mViewer read transfer size.
    pub mviewer_xfer: u64,
    /// Output PNG bytes per node (~3.6 MiB).
    pub png_bytes: u64,
    /// Compute time per stage for the leader.
    pub stage_compute: Dur,
    /// Where intermediates live: `/p/gpfs1/montage/work` (baseline) or
    /// `/dev/shm/montage` (the Figure 8 optimization).
    pub workdir: String,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl MontageParams {
    /// Paper configuration: 32 nodes, 247 s job, 12 % I/O, 53 GiB moved.
    pub fn paper() -> Self {
        MontageParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 40,
            inputs_per_node: 30,
            image_axes: (880, 880),
            proj_bytes_per_node: 60 * MIB,
            inter_xfer: 4 * KIB,
            madd_read_per_rank: 3 * MIB,
            madd_write_per_rank: 20 * MIB,
            madd_xfer: 24 * KIB,
            mviewer_read_per_node: 750 * MIB,
            mviewer_xfer: 24 * KIB,
            png_bytes: 3600 * KIB,
            stage_compute: Dur::from_secs_f64(30.0),
            workdir: "/p/gpfs1/montage/work".to_string(),
        }
    }

    /// Scaled-down variant.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        MontageParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p
                .ranks_per_node
                .min(scaled(p.ranks_per_node as u64, scale.max(0.1), 2) as u32),
            inputs_per_node: scaled(p.inputs_per_node as u64, scale.max(0.1), 2) as u32,
            image_axes: p.image_axes,
            proj_bytes_per_node: scaled(p.proj_bytes_per_node, scale, 1 * MIB),
            inter_xfer: p.inter_xfer,
            madd_read_per_rank: scaled(p.madd_read_per_rank, scale, 128 * KIB),
            madd_write_per_rank: scaled(p.madd_write_per_rank, scale, 512 * KIB),
            madd_xfer: p.madd_xfer,
            mviewer_read_per_node: scaled(p.mviewer_read_per_node, scale, 2 * MIB),
            mviewer_xfer: p.mviewer_xfer,
            png_bytes: scaled(p.png_bytes, scale.max(0.25), 256 * KIB),
            stage_compute: Dur::from_secs_f64(p.stage_compute.as_secs_f64() * scale.max(0.02)),
            workdir: p.workdir,
        }
    }

    /// Input image path (inputs live on the PFS in both variants).
    pub fn input_path(&self, node: u32, i: u32) -> String {
        format!("/p/gpfs1/montage/raw/n{node:02}/img_{i:04}.fits")
    }

    fn node_dir(&self, node: u32) -> String {
        format!("{}/n{node:02}", self.workdir)
    }
}

/// Stage the input FITS images (real headers + pattern payloads).
pub fn stage_inputs(world: &mut IoWorld, p: &MontageParams) {
    let header = FitsHeader {
        bitpix: 16,
        naxes: vec![p.image_axes.0, p.image_axes.1],
    };
    let enc = header.encode();
    let store = world.storage.pfs_mut().store_mut();
    for node in 0..p.nodes {
        for i in 0..p.inputs_per_node {
            let path = p.input_path(node, i);
            let key = store.create(&path, false).expect("stage fits");
            store
                .write(key, 0, Segment::Bytes(std::sync::Arc::new(enc.clone())))
                .expect("stage fits header");
            store
                .write(
                    key,
                    enc.len() as u64,
                    Segment::Pattern {
                        seed: (node as u64) << 32 | i as u64,
                        len: header.padded_data_bytes(),
                    },
                )
                .expect("stage fits body");
        }
    }
}

/// Batched small ops per engine step.
const BATCH: u64 = 32;

enum Phase {
    ProjectOpenInput { i: u32 },
    ProjectCompute { i: u32 },
    ProjectOpenOut { i: u32 },
    ProjectWrite { i: u32, out: FileStream, off: u64 },
    ImgTbl { i: u32 },
    PreAddBarrier,
    AddRead { fs: Option<FileStream>, off: u64 },
    AddWrite { fs: Option<FileStream>, off: u64 },
    PostAddBarrier,
    Shrink { fs: Option<FileStream>, off: u64 },
    ViewerRead { fs: Option<FileStream>, off: u64 },
    ViewerWritePng { fs: Option<FileStream>, off: u64 },
    Done,
}

struct MontageScript {
    p: MontageParams,
    phase: Phase,
}

impl MontageScript {
    fn node_comm(node: u32) -> CommId {
        CommId(1 + node)
    }
}

impl RankScript<IoWorld> for MontageScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        let node = w.alloc.node_of(rank).0;
        let leader = w.alloc.is_node_leader(rank);
        let dir = self.p.node_dir(node);
        loop {
            match &mut self.phase {
                Phase::ProjectOpenInput { i } => {
                    if !leader {
                        self.phase = Phase::PreAddBarrier;
                        continue;
                    }
                    w.set_app(rank, "mProject");
                    if *i >= self.p.inputs_per_node {
                        self.phase = Phase::ImgTbl { i: 0 };
                        continue;
                    }
                    let input = self.p.input_path(node, *i);
                    let (f, t) = fits::open(w, rank, &input, now);
                    let f = f.expect("input fits staged");
                    let (_, t) = f.read_image(w, rank, t);
                    let (_, t) = f.close(w, rank, t);
                    self.phase = Phase::ProjectCompute { i: *i };
                    return StepEffect::busy_until(t);
                }
                Phase::ProjectCompute { i } => {
                    // Compute gets its own step so the I/O that follows
                    // arrives at shared queues in causal order.
                    let t = w.compute(
                        rank,
                        self.p.stage_compute / (4 * self.p.inputs_per_node as u64).max(1),
                        now,
                    );
                    self.phase = Phase::ProjectOpenOut { i: *i };
                    return StepEffect::busy_until(t);
                }
                Phase::ProjectOpenOut { i } => {
                    let (out, t) =
                        stdio::fopen(w, rank, &format!("{dir}/proj_{:04}.dat", *i), "w", now);
                    let out = out.expect("proj create");
                    let idx = *i;
                    self.phase = Phase::ProjectWrite {
                        i: idx,
                        out,
                        off: 0,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::ProjectWrite { i, out, off } => {
                    let per_file = self.p.proj_bytes_per_node / self.p.inputs_per_node as u64;
                    if *off >= per_file {
                        let out = *out;
                        let i2 = *i + 1;
                        let (_, t) = stdio::fclose(w, rank, out, now);
                        self.phase = Phase::ProjectOpenInput { i: i2 };
                        return StepEffect::busy_until(t);
                    }
                    let mut t = now;
                    for _ in 0..BATCH {
                        if *off >= per_file {
                            break;
                        }
                        let (res, t2) =
                            stdio::fwrite_pattern(w, rank, *out, self.p.inter_xfer, 0x90, t);
                        res.expect("proj write");
                        t = t2;
                        *off += self.p.inter_xfer;
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::ImgTbl { i } => {
                    w.set_app(rank, "mImgTbl");
                    if *i >= self.p.inputs_per_node {
                        // Write the table file (small).
                        let (fs, t) = stdio::fopen(w, rank, &format!("{dir}/images.tbl"), "w", now);
                        let fs = fs.expect("tbl create");
                        let (_, t) = stdio::fwrite_pattern(w, rank, fs, 16 * KIB, 0x7B, t);
                        let (_, t) = stdio::fclose(w, rank, fs, t);
                        self.phase = Phase::PreAddBarrier;
                        return StepEffect::busy_until(t);
                    }
                    // Header stats over projected files.
                    let (_, t) =
                        io_layers::posix::stat(w, rank, &format!("{dir}/proj_{:04}.dat", *i), now);
                    *i += 1;
                    return StepEffect::busy_until(t);
                }
                Phase::PreAddBarrier => {
                    self.phase = Phase::AddRead { fs: None, off: 0 };
                    return StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId::WORLD,
                            kind: CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    };
                }
                Phase::AddRead { fs, off } => {
                    w.set_app(rank, "mAddMPI");
                    if fs.is_none() {
                        // Each rank scans a projected file of its node.
                        let local = w.alloc.local_rank(rank);
                        let which = local % self.p.inputs_per_node;
                        let (f, t) =
                            stdio::fopen(w, rank, &format!("{dir}/proj_{which:04}.dat"), "r", now);
                        *fs = Some(f.expect("proj exists"));
                        return StepEffect::busy_until(t);
                    }
                    if *off >= self.p.madd_read_per_rank {
                        let f = fs.take().expect("open");
                        let (_, t) = stdio::fclose(w, rank, f, now);
                        self.phase = Phase::AddWrite { fs: None, off: 0 };
                        return StepEffect::busy_until(t);
                    }
                    let mut t = now;
                    let f = (*fs).expect("open");
                    for _ in 0..BATCH {
                        if *off >= self.p.madd_read_per_rank {
                            break;
                        }
                        let (res, t2) = stdio::fread(w, rank, f, 3 * KIB / 2, t);
                        res.expect("madd read");
                        t = t2;
                        *off += 3 * KIB / 2;
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::AddWrite { fs, off } => {
                    // mAddMPI is one MPI job writing a single shared mosaic
                    // file: every rank covers a disjoint region. On GPFS
                    // this is exactly the cross-node shared-write pattern
                    // whose lock-token traffic grows with node count; in
                    // shm each node's namespace holds its own region.
                    let my_base = rank.0 as u64 * self.p.madd_write_per_rank;
                    if fs.is_none() {
                        let mode = if w.alloc.local_rank(rank) == 0 && node == 0 {
                            "w"
                        } else {
                            "r+"
                        };
                        let (f, t) = stdio::fopen(
                            w,
                            rank,
                            &format!("{}/mosaic.dat", self.p.workdir),
                            mode,
                            now,
                        );
                        let f = match f {
                            Ok(f) => f,
                            Err(_) => {
                                // First accessor on this namespace creates it.
                                let (f2, t2) = stdio::fopen(
                                    w,
                                    rank,
                                    &format!("{}/mosaic.dat", self.p.workdir),
                                    "w",
                                    now,
                                );
                                *fs = Some(f2.expect("mosaic create"));
                                return StepEffect::busy_until(t2);
                            }
                        };
                        *fs = Some(f);
                        return StepEffect::busy_until(t);
                    }
                    if *off >= self.p.madd_write_per_rank {
                        let f = fs.take().expect("open");
                        let (_, t) = stdio::fclose(w, rank, f, now);
                        self.phase = Phase::PostAddBarrier;
                        return StepEffect::busy_until(t);
                    }
                    let mut t = now;
                    let f = (*fs).expect("open");
                    if *off == 0 {
                        let (_, t2) = stdio::fseek(
                            w,
                            rank,
                            f,
                            my_base as i64,
                            crate::montage::SeekWhence::Set,
                            t,
                        );
                        t = t2;
                    }
                    for _ in 0..8 {
                        if *off >= self.p.madd_write_per_rank {
                            break;
                        }
                        let (res, t2) =
                            stdio::fwrite_pattern(w, rank, f, self.p.madd_xfer, 0xADD, t);
                        res.expect("mosaic write");
                        t = t2;
                        *off += self.p.madd_xfer;
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::PostAddBarrier => {
                    self.phase = Phase::Shrink { fs: None, off: 0 };
                    return StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId::WORLD,
                            kind: CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    };
                }
                Phase::Shrink { fs, off } => {
                    if !leader {
                        self.phase = Phase::Done;
                        continue;
                    }
                    w.set_app(rank, "mShrink");
                    let budget = self.p.madd_write_per_rank; // sample one rank's region
                    if fs.is_none() {
                        let (f, t) = stdio::fopen(
                            w,
                            rank,
                            &format!("{}/mosaic.dat", self.p.workdir),
                            "r",
                            now,
                        );
                        let f = f.expect("mosaic exists");
                        let (_, t2) = stdio::fseek(
                            w,
                            rank,
                            f,
                            (rank.0 as u64 * budget) as i64,
                            crate::montage::SeekWhence::Set,
                            t,
                        );
                        *fs = Some(f);
                        return StepEffect::busy_until(t2);
                    }
                    if *off >= budget {
                        let f = fs.take().expect("open");
                        let (_, t) = stdio::fclose(w, rank, f, now);
                        // Write the shrunk image (small).
                        let (s, t) = stdio::fopen(w, rank, &format!("{dir}/shrunken.dat"), "w", t);
                        let s = s.expect("shrunken create");
                        let (_, t) = stdio::fwrite_pattern(w, rank, s, 512 * KIB, 0x5123, t);
                        let (_, t) = stdio::fclose(w, rank, s, t);
                        self.phase = Phase::ViewerRead { fs: None, off: 0 };
                        return StepEffect::busy_until(t);
                    }
                    let mut t = now;
                    let f = (*fs).expect("open");
                    for _ in 0..BATCH {
                        if *off >= budget {
                            break;
                        }
                        let (res, t2) = stdio::fread(w, rank, f, 4 * KIB, t);
                        res.expect("shrink read");
                        t = t2;
                        *off += 4 * KIB;
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::ViewerRead { fs, off } => {
                    w.set_app(rank, "mViewer");
                    // The node's mosaic region: its ranks' concatenated
                    // output, wrapped if the viewer samples more.
                    let region = self.p.ranks_per_node as u64 * self.p.madd_write_per_rank;
                    let base =
                        (node as u64 * self.p.ranks_per_node as u64) * self.p.madd_write_per_rank;
                    if fs.is_none() {
                        let (f, t) = stdio::fopen(
                            w,
                            rank,
                            &format!("{}/mosaic.dat", self.p.workdir),
                            "r",
                            now,
                        );
                        let f = f.expect("mosaic exists");
                        let (_, t2) = stdio::fseek(
                            w,
                            rank,
                            f,
                            base as i64,
                            crate::montage::SeekWhence::Set,
                            t,
                        );
                        *fs = Some(f);
                        return StepEffect::busy_until(t2);
                    }
                    if *off >= self.p.mviewer_read_per_node {
                        let f = fs.take().expect("open");
                        let (_, t) = stdio::fclose(w, rank, f, now);
                        self.phase = Phase::ViewerWritePng { fs: None, off: 0 };
                        return StepEffect::busy_until(t);
                    }
                    let mut t = now;
                    let f = (*fs).expect("open");
                    for _ in 0..BATCH {
                        if *off >= self.p.mviewer_read_per_node {
                            break;
                        }
                        if (*off + self.p.mviewer_xfer) % region < self.p.mviewer_xfer {
                            // Wrap back to the region start.
                            let (_, t2) = stdio::fseek(
                                w,
                                rank,
                                f,
                                base as i64,
                                crate::montage::SeekWhence::Set,
                                t,
                            );
                            t = t2;
                        }
                        let (res, t2) = stdio::fread(w, rank, f, self.p.mviewer_xfer, t);
                        res.expect("viewer read");
                        t = t2;
                        *off += self.p.mviewer_xfer;
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::ViewerWritePng { fs, off } => {
                    if fs.is_none() {
                        let (f, t) = stdio::fopen(
                            w,
                            rank,
                            &format!("{dir}/mosaic_n{node:02}.png"),
                            "w",
                            now,
                        );
                        *fs = Some(f.expect("png create"));
                        return StepEffect::busy_until(t);
                    }
                    if *off >= self.p.png_bytes {
                        let f = fs.take().expect("open");
                        let (_, t) = stdio::fclose(w, rank, f, now);
                        self.phase = Phase::Done;
                        return StepEffect::busy_until(t);
                    }
                    let (res, t) = stdio::fwrite_pattern(
                        w,
                        rank,
                        *fs.as_ref().expect("open"),
                        64 * KIB,
                        0x916,
                        now,
                    );
                    res.expect("png write");
                    *off += 64 * KIB;
                    return StepEffect::busy_until(t);
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

/// Run Montage-MPI at the given scale over the PFS (the Fig. 8 baseline).
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = MontageParams::scaled(scale);
    run_with(p, scale, seed)
}

/// Run with explicit parameters (the Figure 8 harness varies `nodes` and
/// `workdir`).
pub fn run_with(p: MontageParams, scale: f64, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(7200), seed);
    // Pre-size the capture columns: projection reads the per-node inputs,
    // intermediates stream in sub-4 KiB transfers, mAddMPI and mViewer add
    // per-rank/per-node streams.
    let ranks = (p.nodes * p.ranks_per_node) as u64;
    let per_node = p.inputs_per_node as u64 * 4
        + p.proj_bytes_per_node / p.inter_xfer.max(1)
        + p.mviewer_read_per_node / p.mviewer_xfer.max(1);
    world.tracer.reserve(
        (p.nodes as u64 * per_node
            + ranks * (4 + (p.madd_read_per_rank + p.madd_write_per_rank) / p.madd_xfer.max(1)))
            as usize,
    );
    stage_inputs(&mut world, &p);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "montage");
    }
    let n = world.alloc.total_ranks();
    let comms: Vec<Communicator> = (0..p.nodes)
        .map(|node| {
            Communicator::new(
                MontageScript::node_comm(node),
                world.alloc.ranks_on(hpc_cluster::topology::NodeId(node)),
            )
        })
        .collect();
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..n)
        .map(|_| {
            Box::new(MontageScript {
                p: p.clone(),
                phase: Phase::ProjectOpenInput { i: 0 },
            }) as Box<dyn RankScript<IoWorld>>
        })
        .collect();
    execute(WorkloadKind::MontageMpi, scale, world, scripts, comms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::{Layer, OpKind};

    fn tiny() -> WorkloadRun {
        run(0.02, 2)
    }

    #[test]
    fn leaders_do_most_io() {
        let run = tiny();
        let c = run.columnar();
        let io = c.select(|i| c.op[i].is_data() && c.layer[i] == Layer::Stdio);
        let by_rank = c.group_by_rank(&io);
        let leader_bytes: u64 = by_rank
            .iter()
            .filter(|(&r, _)| {
                run.world
                    .alloc
                    .is_node_leader(hpc_cluster::topology::RankId(r))
            })
            .map(|(_, g)| g.bytes)
            .sum();
        let other_bytes: u64 = by_rank
            .iter()
            .filter(|(&r, _)| {
                !run.world
                    .alloc
                    .is_node_leader(hpc_cluster::topology::RankId(r))
            })
            .map(|(_, g)| g.bytes)
            .sum();
        // The paper: first rank per node does ~40× more I/O than the rest
        // (per process); in bytes the leaders dominate heavily.
        let n_leaders = run.world.alloc.spec.nodes as u64;
        let n_others = run.world.alloc.total_ranks() as u64 - n_leaders;
        let per_leader = leader_bytes / n_leaders;
        let per_other = other_bytes / n_others.max(1);
        assert!(
            per_leader > 5 * per_other,
            "leader {per_leader} vs other {per_other}"
        );
    }

    #[test]
    fn five_apps_appear_in_the_trace() {
        let run = tiny();
        let names = run.world.tracer.app_names();
        for app in ["mProject", "mImgTbl", "mAddMPI", "mShrink", "mViewer"] {
            assert!(
                names.iter().any(|n| n == app),
                "{app} missing from {names:?}"
            );
        }
    }

    #[test]
    fn intermediate_transfers_are_small_inputs_are_larger() {
        let run = tiny();
        let c = run.columnar();
        // App-level (stdio) ops on intermediates ≤ 4 KiB dominate counts.
        let stdio_data =
            c.select(|i| c.layer[i] == Layer::Stdio && c.op[i].is_data() && c.bytes[i] > 0);
        let small = stdio_data
            .iter()
            .filter(|&&i| c.bytes[i as usize] <= 4 * KIB)
            .count();
        let frac = small as f64 / stdio_data.len() as f64;
        assert!(frac > 0.5, "small-transfer fraction {frac}");
    }

    #[test]
    fn data_ops_dominate_not_metadata() {
        let run = tiny();
        let c = run.columnar();
        let io = c.select(|i| c.op[i].is_io() && c.layer[i] == Layer::Stdio);
        let data = io.iter().filter(|&&i| c.op[i as usize].is_data()).count();
        let frac = data as f64 / io.len() as f64;
        // Paper Table III: Montage MPI is 99 % data ops.
        assert!(frac > 0.8, "data fraction {frac}");
    }

    #[test]
    fn reads_exceed_writes() {
        let run = tiny();
        let c = run.columnar();
        let reads = c.select(|i| c.op[i] == OpKind::Read && c.layer[i] == Layer::Stdio);
        let writes = c.select(|i| c.op[i] == OpKind::Write && c.layer[i] == Layer::Stdio);
        assert!(
            reads.len() > writes.len(),
            "paper: 4M reads vs 1M writes ({} vs {})",
            reads.len(),
            writes.len()
        );
    }

    #[test]
    fn shm_workdir_moves_intermediates_off_the_pfs() {
        let mut p = MontageParams::scaled(0.02);
        p.workdir = "/dev/shm/montage".to_string();
        let run = run_with(p, 0.02, 2);
        // The PFS should only have seen the inputs (reads), not the
        // intermediate churn.
        let pfs_written = run.world.storage.pfs().stats().bytes_written;
        assert_eq!(pfs_written, 0, "no intermediate bytes on the PFS");
        let (shm_r, shm_w) = run.world.storage.locals()[0].bytes_moved();
        assert!(shm_w > 0 && shm_r > 0, "intermediates moved through shm");
    }
}
