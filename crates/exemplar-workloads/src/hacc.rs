//! HACC-IO — cosmology checkpoint/restart kernel (paper §III-B2, §IV-A2,
//! Figure 2).
//!
//! File-per-process POSIX: every rank writes nine 1-D variables totalling
//! 632 MiB into its own file in 16 MiB sequential transfers, then reads the
//! checkpoint back to emulate restart. The file is opened and closed once
//! per variable per phase (the repeated open/close of Fig. 2b), and a seek
//! precedes every transfer — together that makes metadata ≈ 50 % of I/O
//! operations (4× more metadata ops than reads or writes alone). Per-rank
//! bandwidth varies under server contention (Fig. 2c).

use crate::harness::{execute, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{Outcome, RankScript, StepEffect};
use hpc_cluster::mpi::{CollectiveKind, CommId};
use hpc_cluster::topology::RankId;
use io_layers::posix::{self, Fd, OpenFlags, Whence};
use io_layers::world::IoWorld;
use sim_core::units::MIB;
use sim_core::{Dur, SimTime};
use storage_sim::{FaultPlan, InterferenceSchedule};

/// HACC-IO parameters.
#[derive(Debug, Clone)]
pub struct HaccParams {
    /// Nodes in the job.
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Number of variables (9 in the benchmark).
    pub n_vars: u32,
    /// Bytes per rank across all variables (632 MiB).
    pub bytes_per_rank: u64,
    /// Transfer granularity (16 MiB).
    pub xfer: u64,
    /// In-memory data generation time before the checkpoint.
    pub gen_compute: Dur,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl HaccParams {
    /// Paper configuration: 1280 ranks, 33 s job, 75 % I/O time.
    pub fn paper() -> Self {
        HaccParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 40,
            n_vars: 9,
            bytes_per_rank: 632 * MIB,
            xfer: 16 * MIB,
            gen_compute: Dur::from_secs_f64(8.0),
        }
    }

    /// Scaled-down variant.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        HaccParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p
                .ranks_per_node
                .min(scaled(p.ranks_per_node as u64, scale.max(0.1), 2) as u32),
            n_vars: p.n_vars,
            bytes_per_rank: scaled(p.bytes_per_rank, scale, 2 * MIB),
            xfer: p
                .xfer
                .min(scaled(p.bytes_per_rank, scale, 2 * MIB) / 2)
                .max(MIB / 4),
            gen_compute: Dur::from_secs_f64(p.gen_compute.as_secs_f64() * scale.max(0.02)),
        }
    }

    fn var_bytes(&self) -> u64 {
        (self.bytes_per_rank / self.n_vars as u64).max(self.xfer.min(self.bytes_per_rank))
    }
}

enum Phase {
    Generate,
    /// Checkpoint (pass 0) then restart (pass 1): per variable, open →
    /// seek → transfers → close.
    VarOpen {
        pass: u8,
        var: u32,
    },
    VarIo {
        pass: u8,
        var: u32,
        fd: Fd,
        off: u64,
    },
    VarClose {
        pass: u8,
        var: u32,
        fd: Fd,
    },
    FinalBarrier,
    Done,
}

struct HaccScript {
    p: HaccParams,
    phase: Phase,
}

impl HaccScript {
    fn path(&self, rank: RankId) -> String {
        format!("/p/gpfs1/hacc/restart/ckpt.{:05}", rank.0)
    }
}

impl RankScript<IoWorld> for HaccScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        loop {
            match self.phase {
                Phase::Generate => {
                    let t = w.compute(rank, self.p.gen_compute, now);
                    self.phase = Phase::VarOpen { pass: 0, var: 0 };
                    return StepEffect::busy_until(t);
                }
                Phase::VarOpen { pass, var } => {
                    if var >= self.p.n_vars {
                        if pass == 0 {
                            self.phase = Phase::VarOpen { pass: 1, var: 0 };
                            continue;
                        }
                        self.phase = Phase::FinalBarrier;
                        continue;
                    }
                    let flags = if pass == 0 {
                        if var == 0 {
                            OpenFlags::write_create()
                        } else {
                            OpenFlags::read_write()
                        }
                    } else {
                        OpenFlags::read_only()
                    };
                    let (fd, t) = posix::open(w, rank, &self.path(rank), flags, now);
                    let fd = fd.expect("hacc fpp open");
                    // Seek to this variable's region (metadata op).
                    let off = var as u64 * self.p.var_bytes();
                    let (_, t2) = posix::lseek(w, rank, fd, off as i64, Whence::Set, t);
                    self.phase = Phase::VarIo {
                        pass,
                        var,
                        fd,
                        off: 0,
                    };
                    return StepEffect::busy_until(t2);
                }
                Phase::VarIo { pass, var, fd, off } => {
                    let total = self.p.var_bytes();
                    if off >= total {
                        self.phase = Phase::VarClose { pass, var, fd };
                        continue;
                    }
                    let this = (total - off).min(self.p.xfer);
                    let t = if pass == 0 {
                        let (res, t) =
                            posix::write_pattern(w, rank, fd, this, 0xAACC ^ rank.0 as u64, now);
                        res.expect("hacc write");
                        t
                    } else {
                        let (res, t) = posix::read(w, rank, fd, this, now);
                        assert_eq!(
                            res.expect("hacc read"),
                            this,
                            "restart must read back what was written"
                        );
                        t
                    };
                    self.phase = Phase::VarIo {
                        pass,
                        var,
                        fd,
                        off: off + this,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::VarClose { pass, var, fd } => {
                    let (_, t) = posix::close(w, rank, fd, now);
                    self.phase = Phase::VarOpen { pass, var: var + 1 };
                    return StepEffect::busy_until(t);
                }
                Phase::FinalBarrier => {
                    self.phase = Phase::Done;
                    return StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId::WORLD,
                            kind: CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    };
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

/// Run HACC-IO at the given scale.
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = HaccParams::scaled(scale);
    run_with(p, scale, seed)
}

/// Run HACC-IO with explicit parameters.
pub fn run_with(p: HaccParams, scale: f64, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(7200), seed);
    // Pre-size the capture columns: file-per-process checkpoint — each rank
    // opens its file, streams bytes_per_rank in xfer-sized writes across
    // n_vars variables, syncs, and closes.
    let ranks = (p.nodes * p.ranks_per_node) as u64;
    world
        .tracer
        .reserve((ranks * (4 + p.n_vars as u64 + p.bytes_per_rank / p.xfer.max(1))) as usize);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "hacc-io");
    }
    let n = world.alloc.total_ranks();
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..n)
        .map(|_| {
            Box::new(HaccScript {
                p: p.clone(),
                phase: Phase::Generate,
            }) as Box<dyn RankScript<IoWorld>>
        })
        .collect();
    execute(WorkloadKind::Hacc, scale, world, scripts, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::OpKind;

    fn tiny() -> WorkloadRun {
        run(0.02, 1)
    }

    #[test]
    fn every_rank_gets_its_own_file() {
        let run = tiny();
        let c = run.columnar();
        let data = c.select(|i| c.op[i].is_data());
        let by_file = c.group_by_file(&data);
        let n_ranks = run.world.alloc.total_ranks() as usize;
        assert_eq!(by_file.len(), n_ranks, "strict file-per-process");
        // Each file touched by exactly one rank.
        for (&file, _) in &by_file {
            let ranks: std::collections::HashSet<u32> = data
                .iter()
                .filter(|&&i| c.file[i as usize] == file)
                .map(|&i| c.rank[i as usize])
                .collect();
            assert_eq!(ranks.len(), 1);
        }
    }

    #[test]
    fn bytes_written_equal_bytes_read() {
        let run = tiny();
        let c = run.columnar();
        let w = c.sum_bytes(&c.select(|i| c.op[i] == OpKind::Write));
        let r = c.sum_bytes(&c.select(|i| c.op[i] == OpKind::Read));
        assert_eq!(w, r, "checkpoint is fully read back on restart");
        let p = HaccParams::scaled(0.02);
        let expected = p.var_bytes() * p.n_vars as u64 * run.world.alloc.total_ranks() as u64;
        assert_eq!(w, expected);
    }

    #[test]
    fn metadata_is_about_half_of_ops() {
        let run = tiny();
        let c = run.columnar();
        let io = c.io_ops();
        let meta = io.iter().filter(|&&i| c.op[i as usize].is_meta()).count();
        let frac = meta as f64 / io.len() as f64;
        // Paper Table I/III: 50 % data, 50 % metadata.
        assert!((0.3..=0.8).contains(&frac), "metadata fraction {frac}");
    }

    #[test]
    fn per_rank_bandwidth_varies_under_contention() {
        // Paper-sized transfers so the write-behind cache saturates and
        // writes go through the contended servers.
        let p = HaccParams {
            nodes: 2,
            ranks_per_node: 4,
            n_vars: 9,
            bytes_per_rank: 632 * MIB,
            xfer: 16 * MIB,
            gen_compute: Dur::from_secs_f64(0.1),
            ..HaccParams::paper()
        };
        let run = run_with(p, 1.0, 3);
        let c = run.columnar();
        let writes = c.select(|i| c.op[i] == OpKind::Write);
        let by_rank = c.group_by_rank(&writes);
        let bws: Vec<f64> = by_rank
            .values()
            .map(|g| g.bytes as f64 / g.time.as_secs_f64().max(1e-12))
            .collect();
        let max = bws.iter().cloned().fold(0.0, f64::max);
        let min = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 1.05,
            "jitter+contention should spread bandwidth (max {max}, min {min})"
        );
    }

    #[test]
    fn io_dominates_runtime() {
        let run = tiny();
        let c = run.columnar();
        let io_time = c.sum_time(&c.select(|i| c.op[i].is_io() && c.rank[i] == 0));
        let frac = io_time.as_secs_f64() / run.runtime().as_secs_f64();
        // Paper: 75 % of HACC's job time is I/O.
        assert!(frac > 0.25, "I/O fraction {frac} should dominate");
    }
}
