//! IOR-like synthetic benchmark, used to calibrate and report the
//! shared-storage entity's "Max I/O BW" attribute the way the paper did
//! ("64GB/s using 32 node IOR", Table IX): every rank streams large
//! sequential transfers to its own file and the aggregate bandwidth is
//! measured at the job level.

use crate::harness::{execute, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{RankScript, StepEffect};
use hpc_cluster::topology::RankId;
use io_layers::posix::{self, Fd, OpenFlags};
use io_layers::world::IoWorld;
use sim_core::units::MIB;
use sim_core::{Dur, SimTime};
use storage_sim::{FaultPlan, InterferenceSchedule};

/// IOR parameters.
#[derive(Debug, Clone)]
pub struct IorParams {
    /// Nodes in the job (32 in Table IX).
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Bytes each rank writes/reads.
    pub bytes_per_rank: u64,
    /// Transfer size (large, to hit the bandwidth ceiling).
    pub xfer: u64,
    /// Whether to read the data back after writing.
    pub read_back: bool,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl IorParams {
    /// The Table IX measurement configuration.
    pub fn paper() -> Self {
        IorParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 8,
            bytes_per_rank: 512 * MIB,
            xfer: 16 * MIB,
            read_back: false,
        }
    }

    /// Scaled-down variant for fast runs; scale 1.0 = paper. Lets the
    /// benchmark join the fleet's workload mix at the same scale as the
    /// exemplar applications.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        IorParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p
                .ranks_per_node
                .min(scaled(p.ranks_per_node as u64, scale.max(0.25), 2) as u32),
            bytes_per_rank: scaled(p.bytes_per_rank, scale, 2 * MIB),
            xfer: p.xfer.min(scaled(p.bytes_per_rank, scale, 2 * MIB)),
            read_back: p.read_back,
        }
    }
}

enum Phase {
    Open,
    Write { fd: Fd, off: u64 },
    Sync { fd: Fd },
    Read { fd: Fd, off: u64 },
    Close { fd: Fd },
    Done,
}

struct IorScript {
    p: IorParams,
    phase: Phase,
}

impl RankScript<IoWorld> for IorScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        loop {
            match self.phase {
                Phase::Open => {
                    let path = format!("/p/gpfs1/ior/data.{:05}", rank.0);
                    let (fd, t) = posix::open(w, rank, &path, OpenFlags::write_create(), now);
                    self.phase = Phase::Write {
                        fd: fd.expect("ior open"),
                        off: 0,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::Write { fd, off } => {
                    if off >= self.p.bytes_per_rank {
                        // IOR fsyncs at the end of the write phase so the
                        // measurement reflects stable storage, not the
                        // client write-behind cache.
                        self.phase = Phase::Sync { fd };
                        continue;
                    }
                    let (res, t) = posix::write_pattern(w, rank, fd, self.p.xfer, 0x10, now);
                    res.expect("ior write");
                    self.phase = Phase::Write {
                        fd,
                        off: off + self.p.xfer,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::Sync { fd } => {
                    let (res, t) = posix::fsync(w, rank, fd, now);
                    res.expect("ior fsync");
                    self.phase = if self.p.read_back {
                        Phase::Read { fd, off: 0 }
                    } else {
                        Phase::Close { fd }
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::Read { fd, off } => {
                    if off >= self.p.bytes_per_rank {
                        self.phase = Phase::Close { fd };
                        continue;
                    }
                    let (res, t) = posix::read_at(w, rank, fd, off, self.p.xfer, now);
                    res.expect("ior read");
                    self.phase = Phase::Read {
                        fd,
                        off: off + self.p.xfer,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::Close { fd } => {
                    let (_, t) = posix::close(w, rank, fd, now);
                    self.phase = Phase::Done;
                    return StepEffect::busy_until(t);
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

/// Run IOR and return the run (aggregate write bandwidth =
/// total bytes / makespan).
pub fn run(p: IorParams, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(3600), seed);
    // Pre-size the capture columns: each rank opens, streams bytes_per_rank
    // in xfer-sized transfers (twice with read-back), syncs, and closes.
    let ranks = (p.nodes * p.ranks_per_node) as u64;
    let passes = if p.read_back { 2 } else { 1 };
    world
        .tracer
        .reserve((ranks * (4 + passes * (p.bytes_per_rank / p.xfer.max(1)))) as usize);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "ior");
    }
    let n = world.alloc.total_ranks();
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..n)
        .map(|_| {
            Box::new(IorScript {
                p: p.clone(),
                phase: Phase::Open,
            }) as Box<dyn RankScript<IoWorld>>
        })
        .collect();
    execute(WorkloadKind::Ior, 1.0, world, scripts, vec![])
}

/// Measured aggregate bandwidth of a completed IOR run, bytes/second.
pub fn aggregate_bw(run: &WorkloadRun) -> f64 {
    let total =
        run.world.storage.pfs().stats().bytes_written + run.world.storage.pfs().stats().bytes_read;
    total as f64 / run.runtime().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::GIB;

    #[test]
    fn small_ior_saturates_near_the_server_ceiling() {
        let p = IorParams {
            nodes: 32,
            ranks_per_node: 4,
            bytes_per_rank: 64 * MIB,
            xfer: 16 * MIB,
            read_back: false,
            ..IorParams::paper()
        };
        let run = run(p, 1);
        let bw = aggregate_bw(&run);
        let ceiling = run.world.storage.pfs().aggregate_bw() as f64;
        // Within an order of magnitude of the configured ceiling, and at
        // least a third of it (queueing + jitter keep it below peak).
        assert!(bw > ceiling * 0.3, "bw {bw} vs ceiling {ceiling}");
        assert!(
            bw <= ceiling * 1.05,
            "bw {bw} cannot exceed ceiling {ceiling}"
        );
        // Sanity: tens of GiB/s, the paper's 64 GB/s regime.
        assert!(bw > 10.0 * GIB as f64);
    }

    #[test]
    fn single_rank_is_far_from_aggregate_peak() {
        let p = IorParams {
            nodes: 1,
            ranks_per_node: 1,
            bytes_per_rank: 64 * MIB,
            xfer: 16 * MIB,
            read_back: false,
            ..IorParams::paper()
        };
        let run = run(p, 1);
        let bw = aggregate_bw(&run);
        let ceiling = run.world.storage.pfs().aggregate_bw() as f64;
        assert!(bw < ceiling * 0.1, "one rank cannot reach the ceiling");
    }
}
