//! Shared machinery for running workload skeletons through the engine.

use hpc_cluster::engine::{Engine, EngineReport, RankScript};
use hpc_cluster::mpi::MpiCostModel;
use hpc_cluster::topology::ClusterSpec;
use io_layers::world::IoWorld;
use recorder_sim::ColumnarTrace;
use sim_core::{Dur, SimTime};

/// The six exemplar workloads (plus the IOR calibrator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// CM1 atmospheric simulation.
    Cm1,
    /// HACC-IO checkpoint/restart kernel (file per process).
    Hacc,
    /// CosmoFlow deep-learning input pipeline.
    Cosmoflow,
    /// JAG ICF surrogate model.
    Jag,
    /// Montage mosaic workflow, MPI flavor.
    MontageMpi,
    /// Montage mosaic workflow, Pegasus flavor.
    MontagePegasus,
    /// IOR-like synthetic calibrator.
    Ior,
}

impl WorkloadKind {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Cm1 => "CM1",
            WorkloadKind::Hacc => "HACC (FPP)",
            WorkloadKind::Cosmoflow => "Cosmoflow",
            WorkloadKind::Jag => "JAG",
            WorkloadKind::MontageMpi => "Montage MPI",
            WorkloadKind::MontagePegasus => "Montage Pegasus",
            WorkloadKind::Ior => "IOR",
        }
    }

    /// All six paper workloads, in the tables' column order.
    pub fn paper_six() -> [WorkloadKind; 6] {
        [
            WorkloadKind::Cm1,
            WorkloadKind::Hacc,
            WorkloadKind::Cosmoflow,
            WorkloadKind::Jag,
            WorkloadKind::MontageMpi,
            WorkloadKind::MontagePegasus,
        ]
    }
}

/// A completed workload execution: the run report plus the world holding
/// the captured trace and storage counters.
pub struct WorkloadRun {
    /// Which workload ran.
    pub kind: WorkloadKind,
    /// Scale factor it ran at (1.0 = paper scale).
    pub scale: f64,
    /// Engine report (makespan = job runtime).
    pub report: EngineReport,
    /// The world: trace, storage, allocation.
    pub world: IoWorld,
}

impl WorkloadRun {
    /// The job runtime.
    pub fn runtime(&self) -> Dur {
        self.report.makespan.since(SimTime::ZERO)
    }

    /// Owned copy of the captured columns. The tracer captures straight
    /// into columnar storage, so this is a per-column memcpy — no row
    /// materialization or transpose. Prefer [`Self::columnar_view`] when a
    /// borrow suffices.
    pub fn columnar(&self) -> ColumnarTrace {
        self.world.tracer.to_columnar()
    }

    /// Zero-copy borrow of the captured columns.
    pub fn columnar_view(&self) -> &ColumnarTrace {
        self.world.tracer.columnar()
    }
}

/// Drive a prepared world + scripts to completion.
pub fn execute(
    kind: WorkloadKind,
    scale: f64,
    world: IoWorld,
    scripts: Vec<Box<dyn RankScript<IoWorld>>>,
    comms: Vec<hpc_cluster::mpi::Communicator>,
) -> WorkloadRun {
    let cost = MpiCostModel::from_node(&ClusterSpec::lassen().node);
    let mut engine = Engine::new(world, scripts, cost);
    for c in comms {
        engine.add_comm(c);
    }
    // A generous cap that still catches runaway scripts.
    engine.set_max_steps(200_000_000);
    // A deadlock here is a bug in the workload script, not a recoverable
    // condition — surface the rank → gate diagnostic and abort.
    let report = engine.run().unwrap_or_else(|e| panic!("{e}"));
    WorkloadRun {
        kind,
        scale,
        report,
        world: engine.into_world(),
    }
}

/// Scale a count, keeping at least `min`.
pub fn scaled(n: u64, scale: f64, min: u64) -> u64 {
    ((n as f64 * scale).round() as u64).max(min)
}

/// Scale a node count within the cluster's limits.
pub fn scaled_nodes(n: u32, scale: f64) -> u32 {
    ((n as f64 * scale.min(1.0)).round() as u32).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_clamps_to_minimum() {
        assert_eq!(scaled(1000, 0.5, 1), 500);
        assert_eq!(scaled(3, 0.001, 1), 1);
        assert_eq!(scaled(3, 0.001, 2), 2);
    }

    #[test]
    fn scaled_nodes_never_exceeds_full() {
        assert_eq!(scaled_nodes(32, 1.0), 32);
        assert_eq!(scaled_nodes(32, 2.0), 32);
        assert_eq!(scaled_nodes(32, 0.05), 2);
        assert_eq!(scaled_nodes(32, 0.0001), 1);
    }

    #[test]
    fn workload_names_match_paper_headers() {
        let names: Vec<&str> = WorkloadKind::paper_six().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["CM1", "HACC (FPP)", "Cosmoflow", "JAG", "Montage MPI", "Montage Pegasus"]
        );
    }
}
