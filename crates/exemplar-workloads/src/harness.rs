//! Shared machinery for running workload skeletons through the engine,
//! including the crash-recovery supervisor that relaunches a killed job
//! from its last durable checkpoint.

use hpc_cluster::engine::{Engine, EngineReport, RankScript, RunHalt};
use hpc_cluster::mpi::MpiCostModel;
use hpc_cluster::topology::{ClusterSpec, RankId};
use io_layers::world::IoWorld;
use recorder_sim::record::{Layer, OpKind};
use recorder_sim::ColumnarTrace;
use sim_core::{Dur, SimTime};
use storage_sim::faults::{CrashEvent, CrashScope};

/// The six exemplar workloads (plus the IOR calibrator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// CM1 atmospheric simulation.
    Cm1,
    /// HACC-IO checkpoint/restart kernel (file per process).
    Hacc,
    /// CosmoFlow deep-learning input pipeline.
    Cosmoflow,
    /// JAG ICF surrogate model.
    Jag,
    /// Montage mosaic workflow, MPI flavor.
    MontageMpi,
    /// Montage mosaic workflow, Pegasus flavor.
    MontagePegasus,
    /// IOR-like synthetic calibrator.
    Ior,
}

impl WorkloadKind {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Cm1 => "CM1",
            WorkloadKind::Hacc => "HACC (FPP)",
            WorkloadKind::Cosmoflow => "Cosmoflow",
            WorkloadKind::Jag => "JAG",
            WorkloadKind::MontageMpi => "Montage MPI",
            WorkloadKind::MontagePegasus => "Montage Pegasus",
            WorkloadKind::Ior => "IOR",
        }
    }

    /// All six paper workloads, in the tables' column order.
    pub fn paper_six() -> [WorkloadKind; 6] {
        [
            WorkloadKind::Cm1,
            WorkloadKind::Hacc,
            WorkloadKind::Cosmoflow,
            WorkloadKind::Jag,
            WorkloadKind::MontageMpi,
            WorkloadKind::MontagePegasus,
        ]
    }
}

/// A completed workload execution: the run report plus the world holding
/// the captured trace and storage counters.
pub struct WorkloadRun {
    /// Which workload ran.
    pub kind: WorkloadKind,
    /// Scale factor it ran at (1.0 = paper scale).
    pub scale: f64,
    /// Engine report (makespan = job runtime).
    pub report: EngineReport,
    /// The world: trace, storage, allocation.
    pub world: IoWorld,
}

impl WorkloadRun {
    /// The job runtime.
    pub fn runtime(&self) -> Dur {
        self.report.makespan.since(SimTime::ZERO)
    }

    /// Owned copy of the captured columns. The tracer captures straight
    /// into columnar storage, so this is a per-column memcpy — no row
    /// materialization or transpose. Prefer [`Self::columnar_view`] when a
    /// borrow suffices.
    pub fn columnar(&self) -> ColumnarTrace {
        self.world.tracer.to_columnar()
    }

    /// Zero-copy borrow of the captured columns.
    pub fn columnar_view(&self) -> &ColumnarTrace {
        self.world.tracer.columnar()
    }
}

/// Drive a prepared world + scripts to completion.
pub fn execute(
    kind: WorkloadKind,
    scale: f64,
    world: IoWorld,
    scripts: Vec<Box<dyn RankScript<IoWorld>>>,
    comms: Vec<hpc_cluster::mpi::Communicator>,
) -> WorkloadRun {
    let cost = MpiCostModel::from_node(&ClusterSpec::lassen().node);
    let mut engine = Engine::new(world, scripts, cost);
    for c in comms {
        engine.add_comm(c);
    }
    // A generous cap that still catches runaway scripts.
    engine.set_max_steps(200_000_000);
    // A deadlock here is a bug in the workload script, not a recoverable
    // condition — surface the rank → gate diagnostic and abort.
    let report = engine.run().unwrap_or_else(|e| panic!("{e}"));
    WorkloadRun {
        kind,
        scale,
        report,
        world: engine.into_world(),
    }
}

/// Wall-clock charged between a crash and the relaunched job's first event:
/// scheduler requeue plus application relaunch. Fixed so recovery latency is
/// deterministic.
pub fn restart_delay() -> Dur {
    Dur::from_secs(30)
}

/// Resolve a crash scope to the rank whose death kills the job (MPI
/// semantics: one fatal rank aborts every rank). `None` means the event
/// does not land inside this job's allocation and is a no-op.
fn crash_victim(world: &IoWorld, scope: CrashScope) -> Option<RankId> {
    let n = world.alloc.total_ranks();
    match scope {
        CrashScope::Rank(r) if r < n => Some(RankId(r)),
        CrashScope::Rank(_) => None,
        CrashScope::Node(nd) => (0..n).map(RankId).find(|&r| world.node_of(r).0 == nd),
    }
}

/// Count of durable checkpoints in the captured trace plus the instant the
/// most recent one became durable. A crashed epoch's in-flight checkpoint
/// never appears here: its `Checkpoint` marker is only recorded at close.
fn checkpoint_state(world: &IoWorld) -> (u64, Option<SimTime>) {
    let c = world.tracer.columnar();
    let mut count = 0u64;
    let mut last_end = None;
    for i in 0..c.op.len() {
        if c.op[i] == OpKind::Checkpoint {
            count += 1;
            last_end = Some(SimTime::from_nanos(c.end[i]));
        }
    }
    (count, last_end)
}

/// Drive a workload to completion under a crash plan, restarting the job
/// from its last durable checkpoint after every kill.
///
/// `make_scripts(ckpts_done, epoch)` builds the rank scripts for one launch:
/// `ckpts_done` is the number of durable checkpoints visible in the trace
/// (the resume point) and `epoch` the zero-based launch attempt. Each crash
/// appends a `Crash` record spanning the work lost (last durable checkpoint
/// → instant of death) and a `RestartEpoch` record spanning the recovery
/// latency, then relaunches on the surviving world: the parallel file
/// system — and the trace — persist across job launches, while every
/// per-process descriptor and stdio stream table is torn down with the
/// dead processes.
///
/// With no crash events this is exactly [`execute`]: one launch at
/// `SimTime::ZERO`, bit-identical output.
pub fn execute_with_recovery(
    kind: WorkloadKind,
    scale: f64,
    world: IoWorld,
    crashes: &[CrashEvent],
    make_scripts: impl Fn(u64, u32) -> Vec<Box<dyn RankScript<IoWorld>>>,
) -> WorkloadRun {
    let mut events = crashes.to_vec();
    events.sort_by_key(|e| (e.at, e.scope.order_key()));
    let mut world = world;
    let mut next_event = 0usize;
    let mut epoch: u32 = 0;
    let mut launch_at = SimTime::ZERO;
    loop {
        // Arm the earliest crash that can still hit this launch. Events in
        // the past (inside a dead epoch or a recovery window) and events
        // outside the allocation are consumed without effect.
        let mut armed: Option<(RankId, SimTime)> = None;
        while next_event < events.len() {
            let ev = events[next_event];
            if ev.at < launch_at {
                next_event += 1;
                continue;
            }
            match crash_victim(&world, ev.scope) {
                Some(victim) => {
                    armed = Some((victim, ev.at));
                    break;
                }
                None => next_event += 1,
            }
        }
        let (ckpts_done, _) = checkpoint_state(&world);
        let scripts = make_scripts(ckpts_done, epoch);
        let cost = MpiCostModel::from_node(&ClusterSpec::lassen().node);
        let mut engine = Engine::new_at(world, scripts, cost, launch_at);
        engine.set_max_steps(200_000_000);
        if let Some((victim, at)) = armed {
            engine.set_crash(victim, at);
        }
        match engine.run_checked() {
            Ok(report) => {
                return WorkloadRun {
                    kind,
                    scale,
                    report,
                    world: engine.into_world(),
                }
            }
            Err(RunHalt::Deadlock(d)) => panic!("{d}"),
            Err(RunHalt::Crashed { rank, at }) => {
                next_event += 1;
                world = engine.into_world();
                // Work lost: everything since the last durable checkpoint,
                // *including* checkpoints the crashed epoch itself made
                // durable, clamped to this launch (earlier epochs' work is
                // already checkpointed or already counted lost).
                let (_, last_ckpt_end) = checkpoint_state(&world);
                let lost_from = last_ckpt_end
                    .map_or(launch_at, |c| c.max(launch_at))
                    .min(at);
                world.trace_io(rank, Layer::App, OpKind::Crash, lost_from, at, None, 0, 0);
                let relaunch = at + restart_delay();
                world.trace_io(
                    rank,
                    Layer::App,
                    OpKind::RestartEpoch,
                    at,
                    relaunch,
                    None,
                    0,
                    0,
                );
                // The processes died with the job; open descriptors and
                // buffered stdio streams do not survive into the next epoch.
                for p in &mut world.procs {
                    p.fds.clear();
                }
                for s in &mut world.stdio_streams {
                    *s = io_layers::stdio::StreamTable::default();
                }
                launch_at = relaunch;
                epoch += 1;
            }
        }
    }
}

/// Scale a count, keeping at least `min`.
pub fn scaled(n: u64, scale: f64, min: u64) -> u64 {
    ((n as f64 * scale).round() as u64).max(min)
}

/// Scale a node count within the cluster's limits.
pub fn scaled_nodes(n: u32, scale: f64) -> u32 {
    ((n as f64 * scale.min(1.0)).round() as u32).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_clamps_to_minimum() {
        assert_eq!(scaled(1000, 0.5, 1), 500);
        assert_eq!(scaled(3, 0.001, 1), 1);
        assert_eq!(scaled(3, 0.001, 2), 2);
    }

    #[test]
    fn scaled_nodes_never_exceeds_full() {
        assert_eq!(scaled_nodes(32, 1.0), 32);
        assert_eq!(scaled_nodes(32, 2.0), 32);
        assert_eq!(scaled_nodes(32, 0.05), 2);
        assert_eq!(scaled_nodes(32, 0.0001), 1);
    }

    #[test]
    fn workload_names_match_paper_headers() {
        let names: Vec<&str> = WorkloadKind::paper_six().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "CM1",
                "HACC (FPP)",
                "Cosmoflow",
                "JAG",
                "Montage MPI",
                "Montage Pegasus"
            ]
        );
    }
}
