//! Montage with Pegasus — the nine-kernel planned workflow executed by a
//! pegasus-mpi-cluster worker pool (paper §III-B6, §IV-A6, Figure 6).
//!
//! Pegasus plans the abstract mosaic workflow into a concrete DAG
//! (dependencies inferred from file producer/consumer relations — see
//! `workflow-engine`), and pegasus-mpi-cluster executes it over the job's
//! MPI ranks: workers claim ready tasks, run their I/O, and completions
//! release dependents. mDiff dominates (≈60 % of the 138 GB moved, 5209 of
//! 6039 tasks), the first seconds are an I/O burst from mProject/mDiff
//! parallelism, and small-transfer intermediate access dominates time.

use crate::harness::{execute, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{GateId, Outcome, RankScript, StepEffect};
use hpc_cluster::topology::RankId;
use io_layers::fits::{self, FitsHeader};
use io_layers::stdio;
use io_layers::world::IoWorld;
use sim_core::units::{KIB, MIB};
use sim_core::{Dur, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use storage_sim::file::Segment;
use storage_sim::{FaultPlan, InterferenceSchedule};
use workflow_engine::dag::{Dag, Task, TaskId};
use workflow_engine::queue::WorkQueue;

/// Montage-Pegasus parameters.
#[derive(Debug, Clone)]
pub struct PegasusParams {
    /// Nodes in the job.
    pub nodes: u32,
    /// Worker ranks per node.
    pub ranks_per_node: u32,
    /// Projected images (mProject/mBackground tasks; ~800).
    pub n_images: u32,
    /// Overlap pairs (mDiff/mFitPlane tasks; ~5209 at paper scale).
    pub n_diffs: u32,
    /// Mosaic tiles (mAdd/mViewer tasks; the 5°×5° patches).
    pub n_tiles: u32,
    /// Raw input files per mProject task (4778 inputs / ~800 images ≈ 6).
    pub inputs_per_image: u32,
    /// Bytes per raw input file.
    pub input_bytes: u64,
    /// Projected image bytes.
    pub proj_bytes: u64,
    /// Bytes each mDiff reads from each of its two projected images.
    pub diff_read_bytes: u64,
    /// Mosaic bytes per tile (written by mAdd, read by mViewer).
    pub mosaic_bytes: u64,
    /// Final image bytes per tile (written by mViewer; 1.5 GB at scale).
    pub image_out_bytes: u64,
    /// CPU time per task.
    pub task_compute: Dur,
    /// Where intermediates live (PFS baseline).
    pub workdir: String,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl PegasusParams {
    /// Paper configuration: 1038 s job, 21 % I/O, 138 GB moved, 6039 tasks.
    pub fn paper() -> Self {
        PegasusParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 40,
            n_images: 800,
            n_diffs: 5209,
            n_tiles: 4,
            inputs_per_image: 6,
            input_bytes: 1 * MIB,
            proj_bytes: 17 * MIB,
            diff_read_bytes: 8 * MIB,
            mosaic_bytes: 1024 * MIB,
            image_out_bytes: 1536 * MIB,
            task_compute: Dur::from_secs_f64(1.5),
            workdir: "/p/gpfs1/pegasus/work".to_string(),
        }
    }

    /// Scaled-down variant.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        PegasusParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p
                .ranks_per_node
                .min(scaled(p.ranks_per_node as u64, scale.max(0.1), 2) as u32),
            // Counts and per-task sizes both scale as sqrt(scale) so every
            // kernel's *byte total* scales linearly and the paper's byte
            // ratios (mDiff ≈ 60 %) hold at any scale.
            n_images: scaled(p.n_images as u64, scale.sqrt(), 4) as u32,
            n_diffs: scaled(p.n_diffs as u64, scale.sqrt(), 8) as u32,
            n_tiles: p.n_tiles,
            inputs_per_image: p.inputs_per_image,
            input_bytes: scaled(p.input_bytes, scale.sqrt(), 16 * KIB),
            proj_bytes: scaled(p.proj_bytes, scale.sqrt(), 64 * KIB),
            diff_read_bytes: scaled(p.diff_read_bytes, scale.sqrt(), 64 * KIB),
            mosaic_bytes: scaled(p.mosaic_bytes, scale, 1 * MIB),
            image_out_bytes: scaled(p.image_out_bytes, scale, 1 * MIB),
            task_compute: Dur::from_secs_f64(p.task_compute.as_secs_f64() * scale.max(0.05)),
            workdir: p.workdir,
        }
    }
}

/// Build the nine-kernel DAG with file-inferred dependencies.
pub fn build_dag(p: &PegasusParams) -> Dag {
    let mut g = Dag::new();
    let wd = &p.workdir;
    let t = |name: String, app: &str, inputs: Vec<String>, outputs: Vec<String>| Task {
        name,
        app: app.to_string(),
        inputs,
        outputs,
    };
    // mProject: raw inputs → projected image.
    for i in 0..p.n_images {
        let inputs = (0..p.inputs_per_image)
            .map(|k| format!("{wd}/raw/raw_{i:04}_{k}.fits"))
            .collect();
        g.add(t(
            format!("mProject_{i:04}"),
            "mProject",
            inputs,
            vec![format!("{wd}/proj_{i:04}.fits")],
        ));
    }
    // mImgTbl over projected images.
    g.add(t(
        "mImgTbl_proj".to_string(),
        "mImgTbl",
        (0..p.n_images)
            .map(|i| format!("{wd}/proj_{i:04}.fits"))
            .collect(),
        vec![format!("{wd}/pimages.tbl")],
    ));
    // mDiff: pairs of projected images → difference fit.
    for d in 0..p.n_diffs {
        let a = d % p.n_images;
        let b = (d + 1 + d / p.n_images) % p.n_images;
        g.add(t(
            format!("mDiff_{d:05}"),
            "mDiff",
            vec![
                format!("{wd}/proj_{a:04}.fits"),
                format!("{wd}/proj_{b:04}.fits"),
            ],
            vec![format!("{wd}/diff_{d:05}.fits")],
        ));
    }
    // mFitPlane per diff.
    for d in 0..p.n_diffs {
        g.add(t(
            format!("mFitPlane_{d:05}"),
            "mFitPlane",
            vec![format!("{wd}/diff_{d:05}.fits")],
            vec![format!("{wd}/fit_{d:05}.txt")],
        ));
    }
    // mConcatFit over all fits.
    g.add(t(
        "mConcatFit".to_string(),
        "mConcatFit",
        (0..p.n_diffs)
            .map(|d| format!("{wd}/fit_{d:05}.txt"))
            .collect(),
        vec![format!("{wd}/fits.tbl")],
    ));
    // mBgModel.
    g.add(t(
        "mBgModel".to_string(),
        "mBgModel",
        vec![format!("{wd}/fits.tbl"), format!("{wd}/pimages.tbl")],
        vec![format!("{wd}/corrections.tbl")],
    ));
    // mBackground per image.
    for i in 0..p.n_images {
        g.add(t(
            format!("mBackground_{i:04}"),
            "mBackground",
            vec![
                format!("{wd}/proj_{i:04}.fits"),
                format!("{wd}/corrections.tbl"),
            ],
            vec![format!("{wd}/corr_{i:04}.fits")],
        ));
    }
    // Per tile: mImgTbl, mAdd, mViewer.
    for tile in 0..p.n_tiles {
        let members: Vec<u32> = (0..p.n_images).filter(|i| i % p.n_tiles == tile).collect();
        let corr: Vec<String> = members
            .iter()
            .map(|i| format!("{wd}/corr_{i:04}.fits"))
            .collect();
        let mut tbl_in = corr.clone();
        tbl_in.push(format!("{wd}/corrections.tbl"));
        g.add(t(
            format!("mImgTbl_tile{tile}"),
            "mImgTbl",
            tbl_in,
            vec![format!("{wd}/tile_{tile}.tbl")],
        ));
        let mut add_in = corr;
        add_in.push(format!("{wd}/tile_{tile}.tbl"));
        g.add(t(
            format!("mAdd_tile{tile}"),
            "mAdd",
            add_in,
            vec![format!("{wd}/mosaic_{tile}.fits")],
        ));
        g.add(t(
            format!("mViewer_tile{tile}"),
            "mViewer",
            vec![format!("{wd}/mosaic_{tile}.fits")],
            vec![format!("{wd}/image_{tile}.png")],
        ));
    }
    g.infer_edges_from_files();
    g
}

/// Stage raw input files.
fn stage_inputs(world: &mut IoWorld, p: &PegasusParams) {
    let store = world.storage.pfs_mut().store_mut();
    for i in 0..p.n_images {
        for k in 0..p.inputs_per_image {
            let path = format!("{}/raw/raw_{i:04}_{k}.fits", p.workdir);
            let key = store.create(&path, false).expect("stage raw");
            store
                .write(
                    key,
                    0,
                    Segment::Pattern {
                        seed: (i as u64) << 8 | k as u64,
                        len: p.input_bytes,
                    },
                )
                .expect("stage raw body");
        }
    }
}

const GATE_BASE: u64 = 1 << 32;

enum WState {
    Idle,
    /// Task claimed; burning its CPU time before the I/O step.
    Computing(TaskId),
    Finishing(TaskId),
}

struct PegasusWorker {
    p: PegasusParams,
    q: Rc<RefCell<WorkQueue>>,
    state: WState,
}

impl PegasusWorker {
    /// Run one task's I/O; returns its completion time.
    fn exec_task(&self, w: &mut IoWorld, rank: RankId, tid: TaskId, now: SimTime) -> SimTime {
        let (app, name) = {
            let q = self.q.borrow();
            let task = q.dag().task(tid);
            (task.app.clone(), task.name.clone())
        };
        w.set_app(rank, &app);
        let p = &self.p;
        let wd = &p.workdir;
        let t = now;
        match app.as_str() {
            "mProject" => {
                let i: u32 = name[9..].parse().expect("task index");
                let mut t = t;
                for k in 0..p.inputs_per_image {
                    let (fs, t2) = stdio::fopen_buffered(
                        w,
                        rank,
                        &format!("{wd}/raw/raw_{i:04}_{k}.fits"),
                        "r",
                        64 * KIB,
                        t,
                    );
                    let fs = fs.expect("raw staged");
                    let (_, t3) = stdio::fread(w, rank, fs, p.input_bytes, t2);
                    let (_, t4) = stdio::fclose(w, rank, fs, t3);
                    t = t4;
                }
                // Projected output written as a real FITS image.
                let axes = ((p.proj_bytes / 2) as f64).sqrt() as u64;
                let hdr = FitsHeader {
                    bitpix: 16,
                    naxes: vec![axes.max(8), axes.max(8)],
                };
                let (res, t2) = fits::save(
                    w,
                    rank,
                    &format!("{wd}/proj_{i:04}.fits"),
                    &hdr,
                    i as u64,
                    t,
                );
                res.expect("proj save");
                t2
            }
            "mDiff" => {
                let d: u32 = name[6..].parse().expect("task index");
                let a = d % p.n_images;
                let b = (d + 1 + d / p.n_images) % p.n_images;
                let mut t = t;
                for img in [a, b] {
                    let (fs, t2) = stdio::fopen_buffered(
                        w,
                        rank,
                        &format!("{wd}/proj_{img:04}.fits"),
                        "r",
                        64 * KIB,
                        t,
                    );
                    let fs = fs.expect("proj exists");
                    let (_, t3) = stdio::fread(w, rank, fs, p.diff_read_bytes, t2);
                    let (_, t4) = stdio::fclose(w, rank, fs, t3);
                    t = t4;
                }
                let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/diff_{d:05}.fits"), "w", t);
                let fs = fs.expect("diff create");
                let (_, t3) = stdio::fwrite_pattern(w, rank, fs, 96 * KIB, d as u64, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                t4
            }
            "mFitPlane" => {
                let d: u32 = name[10..].parse().expect("task index");
                let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/diff_{d:05}.fits"), "r", t);
                let fs = fs.expect("diff exists");
                let (_, t3) = stdio::fread(w, rank, fs, 96 * KIB, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                let (fs, t5) = stdio::fopen(w, rank, &format!("{wd}/fit_{d:05}.txt"), "w", t4);
                let fs = fs.expect("fit create");
                let (_, t6) = stdio::fwrite_pattern(w, rank, fs, 1 * KIB, d as u64, t5);
                let (_, t7) = stdio::fclose(w, rank, fs, t6);
                t7
            }
            "mConcatFit" => {
                let mut t = t;
                for d in 0..p.n_diffs {
                    let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/fit_{d:05}.txt"), "r", t);
                    let fs = fs.expect("fit exists");
                    let (_, t3) = stdio::fread(w, rank, fs, 1 * KIB, t2);
                    let (_, t4) = stdio::fclose(w, rank, fs, t3);
                    t = t4;
                }
                let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/fits.tbl"), "w", t);
                let fs = fs.expect("tbl create");
                let (_, t3) = stdio::fwrite_pattern(w, rank, fs, 5 * MIB, 0xF1, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                t4
            }
            "mBgModel" => {
                let mut t = t;
                for f in ["fits.tbl", "pimages.tbl"] {
                    let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/{f}"), "r", t);
                    let fs = fs.expect("tbl exists");
                    let (_, t3) = stdio::fread(w, rank, fs, 5 * MIB, t2);
                    let (_, t4) = stdio::fclose(w, rank, fs, t3);
                    t = t4;
                }
                let (fs, t2) = stdio::fopen(w, rank, &format!("{wd}/corrections.tbl"), "w", t);
                let fs = fs.expect("corrections create");
                let (_, t3) = stdio::fwrite_pattern(w, rank, fs, 1 * MIB, 0xB6, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                t4
            }
            "mBackground" => {
                let i: u32 = name[12..].parse().expect("task index");
                let (fs, t2) = stdio::fopen_buffered(
                    w,
                    rank,
                    &format!("{wd}/proj_{i:04}.fits"),
                    "r",
                    64 * KIB,
                    t,
                );
                let fs = fs.expect("proj exists");
                let (_, t3) = stdio::fread(w, rank, fs, p.proj_bytes, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                let (fs, t5) = stdio::fopen(w, rank, &format!("{wd}/corrections.tbl"), "r", t4);
                let fs = fs.expect("corrections exist");
                let (_, t6) = stdio::fread(w, rank, fs, 1 * MIB, t5);
                let (_, t7) = stdio::fclose(w, rank, fs, t6);
                let (fs, t8) = stdio::fopen(w, rank, &format!("{wd}/corr_{i:04}.fits"), "w", t7);
                let fs = fs.expect("corr create");
                let (_, t9) = stdio::fwrite_pattern(w, rank, fs, p.proj_bytes, i as u64, t8);
                let (_, t10) = stdio::fclose(w, rank, fs, t9);
                t10
            }
            "mImgTbl" => {
                // Header stats over inputs, small table out.
                let out = {
                    let q = self.q.borrow();
                    q.dag().task(tid).outputs[0].clone()
                };
                let mut t = t;
                let inputs = {
                    let q = self.q.borrow();
                    q.dag().task(tid).inputs.clone()
                };
                for f in inputs.iter().take(64) {
                    let (_, t2) = io_layers::posix::stat(w, rank, f, t);
                    t = t2;
                }
                let (fs, t2) = stdio::fopen(w, rank, &out, "w", t);
                let fs = fs.expect("tbl create");
                let (_, t3) = stdio::fwrite_pattern(w, rank, fs, 64 * KIB, 0x7B1, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                t4
            }
            "mAdd" => {
                let tile: u32 = name[9..].parse().expect("tile index");
                let members: Vec<u32> = (0..p.n_images).filter(|i| i % p.n_tiles == tile).collect();
                let mut t = t;
                // Read a strip of every corrected image.
                let strip = (p.mosaic_bytes / members.len().max(1) as u64).min(p.proj_bytes);
                for i in &members {
                    let (fs, t2) = stdio::fopen_buffered(
                        w,
                        rank,
                        &format!("{wd}/corr_{i:04}.fits"),
                        "r",
                        64 * KIB,
                        t,
                    );
                    let fs = fs.expect("corr exists");
                    let (_, t3) = stdio::fread(w, rank, fs, strip, t2);
                    let (_, t4) = stdio::fclose(w, rank, fs, t3);
                    t = t4;
                }
                let (fs, t2) = stdio::fopen_buffered(
                    w,
                    rank,
                    &format!("{wd}/mosaic_{tile}.fits"),
                    "w",
                    64 * KIB,
                    t,
                );
                let fs = fs.expect("mosaic create");
                let mut t = t2;
                let mut off = 0u64;
                while off < p.mosaic_bytes {
                    let this = (p.mosaic_bytes - off).min(4 * MIB);
                    let (res, t3) = stdio::fwrite_pattern(w, rank, fs, this, tile as u64, t);
                    res.expect("mosaic write");
                    t = t3;
                    off += this;
                }
                let (_, t3) = stdio::fclose(w, rank, fs, t);
                t3
            }
            "mViewer" => {
                let tile: u32 = name[12..].parse().expect("tile index");
                let (fs, t2) = stdio::fopen_buffered(
                    w,
                    rank,
                    &format!("{wd}/mosaic_{tile}.fits"),
                    "r",
                    64 * KIB,
                    t,
                );
                let fs = fs.expect("mosaic exists");
                let (_, t3) = stdio::fread(w, rank, fs, p.mosaic_bytes, t2);
                let (_, t4) = stdio::fclose(w, rank, fs, t3);
                // Two large output requests (>16 MiB each in the paper).
                let (fs, t5) = stdio::fopen_buffered(
                    w,
                    rank,
                    &format!("{wd}/image_{tile}.png"),
                    "w",
                    64 * KIB,
                    t4,
                );
                let fs = fs.expect("image create");
                let half = p.image_out_bytes / 2;
                let (_, t6) = stdio::fwrite_pattern(w, rank, fs, half, 0x1111, t5);
                let (_, t7) =
                    stdio::fwrite_pattern(w, rank, fs, p.image_out_bytes - half, 0x2222, t6);
                let (_, t8) = stdio::fclose(w, rank, fs, t7);
                t8
            }
            other => panic!("unknown kernel {other}"),
        }
    }
}

impl RankScript<IoWorld> for PegasusWorker {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        loop {
            match self.state {
                WState::Finishing(tid) => {
                    let (newly, all_done, gate) = {
                        let mut q = self.q.borrow_mut();
                        let newly = q.complete(tid);
                        let bumped = !newly.is_empty() || q.all_done();
                        let gate = bumped.then(|| q.gate_to_open_after_complete());
                        (newly, q.all_done(), gate)
                    };
                    let _ = (newly, all_done);
                    self.state = WState::Idle;
                    if let Some(g) = gate {
                        // Wake idlers, then continue claiming in this step.
                        let mut eff = StepEffect::busy_until(now);
                        eff.open_gates.push(GateId(g));
                        return eff;
                    }
                    continue;
                }
                WState::Computing(tid) => {
                    let t_end = self.exec_task(w, rank, tid, now);
                    self.state = WState::Finishing(tid);
                    return StepEffect::busy_until(t_end);
                }
                WState::Idle => {
                    let claim = self.q.borrow_mut().try_claim();
                    match claim {
                        Some(tid) => {
                            // CPU time first, in its own step, so the I/O
                            // arrives at shared queues in causal order.
                            let t = w.compute(rank, self.p.task_compute, now);
                            self.state = WState::Computing(tid);
                            return StepEffect::busy_until(t);
                        }
                        None => {
                            let (done, gate) = {
                                let q = self.q.borrow();
                                (q.all_done(), q.wake_gate())
                            };
                            if done {
                                return StepEffect::done();
                            }
                            return StepEffect {
                                outcome: Outcome::WaitGate(GateId(gate)),
                                open_gates: vec![],
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Run Montage-Pegasus at the given scale.
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = PegasusParams::scaled(scale);
    run_with(p, scale, seed)
}

/// Run with explicit parameters.
pub fn run_with(p: PegasusParams, scale: f64, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(12 * 3600), seed);
    // Pre-size the capture columns: each DAG task opens/reads/writes/closes
    // its staged files — mProject consumes inputs_per_image raw files,
    // mDiff touches two projected images, mAdd/mViewer stream per tile.
    world.tracer.reserve(
        (p.n_images as u64 * (p.inputs_per_image as u64 + 2) * 4
            + p.n_diffs as u64 * 8
            + p.n_tiles as u64 * 12) as usize,
    );
    stage_inputs(&mut world, &p);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "pegasus-mpi-cluster");
    }
    let dag = build_dag(&p);
    let q = Rc::new(RefCell::new(WorkQueue::new(dag, GATE_BASE)));
    let n = world.alloc.total_ranks();
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..n)
        .map(|_| {
            Box::new(PegasusWorker {
                p: p.clone(),
                q: Rc::clone(&q),
                state: WState::Idle,
            }) as Box<dyn RankScript<IoWorld>>
        })
        .collect();
    execute(WorkloadKind::MontagePegasus, scale, world, scripts, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::OpKind;

    fn tiny() -> WorkloadRun {
        run(0.01, 3)
    }

    #[test]
    fn dag_has_nine_kernels_and_is_acyclic() {
        let p = PegasusParams::scaled(0.01);
        let g = build_dag(&p);
        assert!(g.is_acyclic());
        let apps = g.app_names();
        assert_eq!(apps.len(), 9);
        for k in [
            "mProject",
            "mImgTbl",
            "mDiff",
            "mFitPlane",
            "mConcatFit",
            "mBgModel",
            "mBackground",
            "mAdd",
            "mViewer",
        ] {
            assert!(apps.contains(&k), "{k} missing");
        }
    }

    #[test]
    fn all_tasks_complete() {
        let p = PegasusParams::scaled(0.01);
        let n_tasks = build_dag(&p).len();
        let run = tiny();
        // The final outputs exist on the PFS.
        for tile in 0..p.n_tiles {
            let path = format!("{}/image_{tile}.png", p.workdir);
            assert!(
                run.world.storage.pfs().store().lookup(&path).is_some(),
                "final image {path} missing ({n_tasks} tasks)"
            );
        }
    }

    #[test]
    fn mdiff_dominates_io_bytes() {
        let run = tiny();
        let c = run.columnar();
        let data =
            c.select(|i| c.op[i].is_data() && c.layer[i] == recorder_sim::record::Layer::Stdio);
        let by_app = c.group_by_app(&data);
        let bytes_of = |name: &str| {
            c.app_names
                .iter()
                .position(|n| n == name)
                .and_then(|id| by_app.get(&(id as u16)))
                .map(|g| g.bytes)
                .unwrap_or(0)
        };
        let mdiff = bytes_of("mDiff");
        let total: u64 = by_app.values().map(|g| g.bytes).sum();
        let frac = mdiff as f64 / total as f64;
        // Paper: 60 % of I/O is mDiff reading data.
        assert!(frac > 0.3, "mDiff fraction {frac}");
    }

    #[test]
    fn dependencies_execute_in_order() {
        let run = tiny();
        let c = run.columnar();
        // mViewer activity must start after the first mAdd write completes.
        let app_id = |name: &str| c.app_names.iter().position(|n| n == name).unwrap() as u16;
        let madd = app_id("mAdd");
        let mviewer = app_id("mViewer");
        let madd_writes = c.select(|i| c.app[i] == madd && c.op[i] == OpKind::Write);
        let mviewer_reads = c.select(|i| c.app[i] == mviewer && c.op[i] == OpKind::Read);
        assert!(!madd_writes.is_empty() && !mviewer_reads.is_empty());
        let first_viewer = mviewer_reads
            .iter()
            .map(|&i| c.start[i as usize])
            .min()
            .unwrap();
        let first_madd_write = madd_writes
            .iter()
            .map(|&i| c.start[i as usize])
            .min()
            .unwrap();
        assert!(first_viewer > first_madd_write);
    }

    #[test]
    fn early_burst_then_tail() {
        // The paper observes most I/O happens early (mProject/mDiff wave).
        let run = tiny();
        let c = run.columnar();
        let data = c.select(|i| c.op[i].is_data());
        let t_end = c.t_max().as_nanos().max(1);
        let first_half_bytes: u64 = data
            .iter()
            .filter(|&&i| c.start[i as usize] < t_end / 2)
            .map(|&i| c.bytes[i as usize])
            .sum();
        let total = c.sum_bytes(&data).max(1);
        assert!(
            first_half_bytes as f64 / total as f64 > 0.4,
            "I/O should be front-loaded: {first_half_bytes}/{total}"
        );
    }
}
