//! CosmoFlow — deep-learning input pipeline over HDF5/MPI-IO (paper
//! §III-B3, §IV-A3, Figure 3, and the Figure 7 use case).
//!
//! The dataset is ~50 K HDF5 files of 32 MiB, unchunked. Each file is read
//! collectively by a 4-rank group through MPI-IO with 1 MiB transfers. The
//! groups *span nodes* (data-parallel training shards batches across all
//! GPUs), so the small superblock/header reads and the per-access header
//! validations of unchunked-over-MPI-IO land on a **shared file touched
//! from multiple nodes** — thrashing lock tokens and stacking up metadata
//! service time until 90 %+ of I/O time is metadata, which is exactly the
//! paper's finding. GPU compute dominates wall time (12 % I/O), and rank 0
//! writes periodic small checkpoints.
//!
//! The optimized variant (Figure 7) is in `vani-core::reconfig`: preload to
//! node-local shm and read locally.

use crate::harness::{execute_with_recovery, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{RankScript, StepEffect};
use hpc_cluster::topology::RankId;
use io_layers::hdf5::{self, H5Options};
use io_layers::posix::{self, OpenFlags};
use io_layers::world::IoWorld;
use sim_core::units::{KIB, MIB};
use sim_core::{Dur, SimTime};
use storage_sim::{FaultPlan, InterferenceSchedule};

/// CosmoFlow parameters.
#[derive(Debug, Clone)]
pub struct CosmoflowParams {
    /// Nodes in the job.
    pub nodes: u32,
    /// Ranks per node (4: one per GPU).
    pub ranks_per_node: u32,
    /// Number of HDF5 sample files (49 664 at paper scale).
    pub n_files: u32,
    /// Bytes per file (32 MiB: 512³ voxels × 4 channels × int16 / 16).
    pub file_bytes: u64,
    /// MPI-IO transfer size (1 MiB).
    pub xfer: u64,
    /// Ranks reading each file together.
    pub group_size: u32,
    /// GPU compute per file per rank (training time share).
    pub gpu_per_file: Dur,
    /// Checkpoint bytes written periodically by rank 0 (20 MiB total).
    pub ckpt_total: u64,
    /// Checkpoint transfer size (40 KiB).
    pub ckpt_xfer: u64,
    /// Number of checkpoints over the run.
    pub n_ckpts: u32,
    /// Where the dataset lives; the Figure 7 optimization repoints this at
    /// node-local shm after preloading.
    pub data_dir: String,
    /// When reading from shm, files are node-local and read without MPI-IO.
    pub local_reads: bool,
    /// Run the Figure 7 optimization: preload the dataset into node-local
    /// shm with a parallel copy job (MPIFileUtils-style), assign files to
    /// their home node, and read locally without MPI-IO.
    pub preload_to_shm: bool,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl CosmoflowParams {
    /// Paper configuration: 32 nodes × 4 ranks, 1.5 TiB dataset, 3567 s job.
    pub fn paper() -> Self {
        CosmoflowParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 4,
            n_files: 49_664,
            file_bytes: 32 * MIB,
            xfer: 1 * MIB,
            group_size: 4,
            gpu_per_file: Dur::from_secs_f64(8.0), // ~3100 s compute / 388 files per rank-group share
            ckpt_total: 20 * MIB,
            ckpt_xfer: 40 * KIB,
            n_ckpts: 10,
            data_dir: "/p/gpfs1/cosmoflow/2019_05_4parE".to_string(),
            local_reads: false,
            preload_to_shm: false,
        }
    }

    /// Scaled-down variant.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        CosmoflowParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p.ranks_per_node,
            n_files: scaled(p.n_files as u64, scale, 8) as u32,
            file_bytes: scaled(p.file_bytes, scale.sqrt().max(0.2), 2 * MIB),
            xfer: p.xfer,
            group_size: p.group_size,
            gpu_per_file: Dur::from_secs_f64(p.gpu_per_file.as_secs_f64() * scale.max(0.02)),
            ckpt_total: scaled(p.ckpt_total, scale, 256 * KIB),
            ckpt_xfer: p.ckpt_xfer,
            n_ckpts: scaled(p.n_ckpts as u64, scale.max(0.2), 2) as u32,
            data_dir: p.data_dir,
            local_reads: false,
            preload_to_shm: false,
        }
    }

    /// File path of sample `i`.
    pub fn file_path(&self, i: u32) -> String {
        format!("{}/univ_{i:06}.h5", self.data_dir)
    }

    /// PFS path of sample `i` (preload source).
    pub fn pfs_file_path(&self, i: u32) -> String {
        format!("/p/gpfs1/cosmoflow/2019_05_4parE/univ_{i:06}.h5", i = i)
    }

    /// Shm path of sample `i` (preload destination).
    pub fn shm_file_path(&self, i: u32) -> String {
        format!("/dev/shm/cosmoflow/univ_{i:06}.h5", i = i)
    }
}

/// Stage the dataset into the PFS (pattern-backed, cheap).
pub fn stage_dataset(world: &mut IoWorld, p: &CosmoflowParams) {
    let store = world.storage.pfs_mut().store_mut();
    let voxels = (p.file_bytes / 2).max(1); // int16 elements
                                            // Dark-matter density voxels are gamma-distributed (Table VI).
    let prefix = sim_core::stats::synth_bytes(sim_core::stats::DistributionFit::Gamma, 0xC0, 16384);
    for i in 0..p.n_files {
        hdf5::materialize(
            store,
            &p.file_path(i),
            &[("universe", &[voxels, 1, 1], 2, None)],
            0xC0 + i as u64,
        )
        .expect("stage cosmoflow file");
        let key = store.lookup(&p.file_path(i)).expect("just staged");
        store
            .write(
                key,
                1024,
                storage_sim::file::Segment::Bytes(std::sync::Arc::new(prefix.clone())),
            )
            .expect("stage value prefix");
    }
}

/// The ranks that read file `f` together. Baseline: the group spans nodes
/// (data-parallel batches shard across all GPUs). Optimized (`local_reads`):
/// the group is exactly the ranks of the file's home node — the paper's
/// "limit the aggregation of files using MPI-IO to a node".
fn group_of(p: &CosmoflowParams, total_ranks: u32, f: u32) -> Vec<u32> {
    if p.local_reads {
        let nodes = (total_ranks / p.ranks_per_node).max(1);
        let node = f % nodes;
        return (0..p.group_size.min(p.ranks_per_node))
            .map(|k| node * p.ranks_per_node + k)
            .collect();
    }
    let stride = (total_ranks / p.group_size).max(1);
    (0..p.group_size)
        .map(|k| (f + k * stride) % total_ranks)
        .collect()
}

enum Phase {
    Preload {
        idx: u32,
    },
    PreloadRead {
        idx: u32,
        fd: io_layers::posix::Fd,
        left: u64,
    },
    PreloadInstall {
        idx: u32,
        fd: io_layers::posix::Fd,
    },
    PreloadBarrier,
    NextFile {
        idx: u32,
    },
    FileRead {
        idx: u32,
        off: u64,
        end_off: u64,
    },
    FileClose {
        idx: u32,
    },
    Gpu {
        idx: u32,
    },
    Ckpt {
        n: u32,
        off: u64,
    },
    Done,
}

struct CfScript {
    p: CosmoflowParams,
    total_ranks: u32,
    /// Files this rank participates in (precomputed).
    my_files: Vec<u32>,
    phase: Phase,
    files_done: u32,
    next_ckpt_at: u32,
    resume_idx: u32,
    ckpt_fd: Option<io_layers::posix::Fd>,
    /// Start of the in-flight checkpoint write sequence (rank 0 only);
    /// closes the `Checkpoint` span when the model file goes durable.
    ckpt_begin: SimTime,
    h5: Option<hdf5::H5File>,
    /// Files this rank copies PFS → shm before training (optimized mode).
    preload_files: Vec<u32>,
}

impl RankScript<IoWorld> for CfScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        loop {
            match self.phase {
                Phase::Preload { idx } => {
                    // One op per engine step so shared-queue arrivals stay
                    // in causal order across ranks.
                    let files = &self.preload_files;
                    if idx as usize >= files.len() {
                        self.phase = Phase::PreloadBarrier;
                        continue;
                    }
                    let f = files[idx as usize];
                    let src = self.p.pfs_file_path(f);
                    let (fd, t) = posix::open(w, rank, &src, OpenFlags::read_only(), now);
                    let fd = fd.expect("preload source staged");
                    self.phase = Phase::PreloadRead {
                        idx,
                        fd,
                        left: self.p.file_bytes + 4096,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::PreloadRead { idx, fd, left } => {
                    if left == 0 {
                        self.phase = Phase::PreloadInstall { idx, fd };
                        continue;
                    }
                    // MPIFileUtils-style bulk sweep: 16 MiB per request.
                    let this = left.min(16 * MIB);
                    let (res, t) = posix::read(w, rank, fd, this, now);
                    let n = res.expect("preload read");
                    let left2 = if n < this { 0 } else { left - this };
                    self.phase = Phase::PreloadRead {
                        idx,
                        fd,
                        left: left2,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::PreloadInstall { idx, fd } => {
                    let f = self.preload_files[idx as usize];
                    let src = self.p.pfs_file_path(f);
                    let dst = self.p.shm_file_path(f);
                    let (_, t) = posix::close(w, rank, fd, now);
                    // Install the identical content into this node's shm and
                    // charge the shm channel for the copy.
                    let node = w.node_of(rank);
                    let snap = {
                        let store = w.storage.pfs().store();
                        let key = store.lookup(&src).expect("preload source");
                        store.snapshot(key).expect("snapshot")
                    };
                    let bytes = snap.size();
                    w.storage.locals_mut()[0]
                        .store_mut(node)
                        .insert_snapshot(&dst, snap)
                        .expect("shm capacity fits 1/N of the dataset");
                    let t2 = w.storage.locals_mut()[0].touch(node, bytes, t);
                    let dst_id = w.tracer.file_id(&dst);
                    let t3 = w.trace_io(
                        rank,
                        recorder_sim::record::Layer::Posix,
                        recorder_sim::record::OpKind::Write,
                        t,
                        t2,
                        Some(dst_id),
                        0,
                        bytes,
                    );
                    self.phase = Phase::Preload { idx: idx + 1 };
                    return StepEffect::busy_until(t3);
                }
                Phase::PreloadBarrier => {
                    self.phase = Phase::NextFile { idx: 0 };
                    return StepEffect {
                        outcome: hpc_cluster::engine::Outcome::Collective {
                            comm: hpc_cluster::mpi::CommId::WORLD,
                            kind: hpc_cluster::mpi::CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    };
                }
                Phase::NextFile { idx } => {
                    if idx as usize >= self.my_files.len() {
                        // Final checkpoint by rank 0, then done.
                        if rank.0 == 0 && self.files_done > 0 && self.next_ckpt_at != u32::MAX {
                            self.next_ckpt_at = u32::MAX;
                            self.resume_idx = idx;
                            self.phase = Phase::Ckpt {
                                n: self.p.n_ckpts.max(1) - 1,
                                off: 0,
                            };
                            continue;
                        }
                        self.phase = Phase::Done;
                        continue;
                    }
                    let f = self.my_files[idx as usize];
                    let path = self.p.file_path(f);
                    // My slice of the file.
                    let share = self.p.file_bytes / self.p.group_size as u64;
                    let my_pos = group_of(&self.p, self.total_ranks, f)
                        .iter()
                        .position(|&r| r == rank.0)
                        .expect("rank is in its own group") as u64;
                    let opts = H5Options {
                        use_mpiio: !self.p.local_reads,
                        chunk_cache_bytes: 4096,
                    };
                    // Open in this step; reads and close follow in later
                    // steps so the group's accesses to the shared file
                    // interleave (which is what thrashes lock tokens).
                    let (h5, t) = hdf5::open(w, rank, &path, opts, now);
                    let h5 = match h5 {
                        Ok(h) => h,
                        Err(e) => panic!("cosmoflow open {path}: {e}"),
                    };
                    self.h5 = Some(h5);
                    let off = my_pos * share;
                    self.phase = Phase::FileRead {
                        idx,
                        off,
                        end_off: off + share,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::FileRead { idx, off, end_off } => {
                    if off >= end_off {
                        self.phase = Phase::FileClose { idx };
                        continue;
                    }
                    let this = (end_off - off).min(self.p.xfer);
                    let h5 = self.h5.as_mut().expect("file open");
                    let (res, t) = h5.read(w, rank, "universe", off, this, now);
                    res.expect("cosmoflow read");
                    self.phase = Phase::FileRead {
                        idx,
                        off: off + this,
                        end_off,
                    };
                    return StepEffect::busy_until(t);
                }
                Phase::FileClose { idx } => {
                    let h5 = self.h5.take().expect("file open");
                    let (_, t) = h5.close(w, rank, now);
                    self.files_done += 1;
                    self.phase = Phase::Gpu { idx };
                    return StepEffect::busy_until(t);
                }
                Phase::Gpu { idx } => {
                    let t = w.gpu_compute(rank, self.p.gpu_per_file, now);
                    // Periodic checkpoint from rank 0.
                    let per = (self.my_files.len() as u32 / self.p.n_ckpts.max(1)).max(1);
                    if rank.0 == 0
                        && self.files_done >= self.next_ckpt_at
                        && self.next_ckpt_at != u32::MAX
                    {
                        self.next_ckpt_at += per;
                        let n = self.files_done / per;
                        self.resume_idx = idx + 1;
                        self.phase = Phase::Ckpt { n, off: 0 };
                    } else {
                        self.phase = Phase::NextFile { idx: idx + 1 };
                    }
                    return StepEffect::busy_until(t);
                }
                Phase::Ckpt { n, off } => {
                    let per_ckpt =
                        (self.p.ckpt_total / self.p.n_ckpts.max(1) as u64).max(self.p.ckpt_xfer);
                    if off == 0 {
                        self.ckpt_begin = now;
                        let path = format!("/p/gpfs1/cosmoflow/ckpt/model_{n:03}.ckpt");
                        let (fd, t) = posix::open(w, rank, &path, OpenFlags::write_create(), now);
                        let fd = fd.expect("ckpt create");
                        // Remember fd via the fd table: we just keep writing
                        // through it below by reopening state in off.
                        self.ckpt_fd = Some(fd);
                        self.phase = Phase::Ckpt { n, off: 1 };
                        return StepEffect::busy_until(t);
                    }
                    let fd = self.ckpt_fd.expect("ckpt fd set");
                    let written = (off - 1) * self.p.ckpt_xfer;
                    if written >= per_ckpt {
                        let (_, t) = posix::close(w, rank, fd, now);
                        // The model file is durable: mark the checkpoint the
                        // harness restarts from (span = open → close).
                        use recorder_sim::record::{Layer, OpKind};
                        w.trace_io(
                            rank,
                            Layer::App,
                            OpKind::Checkpoint,
                            self.ckpt_begin,
                            t,
                            None,
                            0,
                            0,
                        );
                        self.ckpt_fd = None;
                        self.phase = Phase::NextFile {
                            idx: self.resume_idx,
                        };
                        return StepEffect::busy_until(t);
                    }
                    let (res, t) = posix::write_pattern(w, rank, fd, self.p.ckpt_xfer, 0xCF, now);
                    res.expect("ckpt write");
                    self.phase = Phase::Ckpt { n, off: off + 1 };
                    return StepEffect::busy_until(t);
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

impl CfScript {
    /// Build a script resuming from durable checkpoint `start_ckpt` (0 = cold
    /// start). Training position rolls back to where that checkpoint fired;
    /// everything after it is re-run. `first_launch` gates the shm preload:
    /// relaunches skip it because node-local shm survives a job crash.
    fn resuming(
        p: CosmoflowParams,
        total_ranks: u32,
        rank: u32,
        start_ckpt: u32,
        first_launch: bool,
    ) -> Self {
        let my_files: Vec<u32> = (0..p.n_files)
            .filter(|&f| group_of(&p, total_ranks, f).contains(&rank))
            .collect();
        let preload_files: Vec<u32> = if p.preload_to_shm && first_launch {
            let nodes = (total_ranks / p.ranks_per_node).max(1);
            let node = rank / p.ranks_per_node;
            let local = rank % p.ranks_per_node;
            (0..p.n_files)
                .filter(|&f| f % nodes == node && (f / nodes) % p.ranks_per_node == local)
                .collect()
        } else {
            Vec::new()
        };
        // Checkpoint k fires when files_done reaches 1 + (k-1)·per (the
        // trigger in `Phase::Gpu`); restarting from it rolls this rank's
        // file cursor back to that point.
        let per = (my_files.len() as u32 / p.n_ckpts.max(1)).max(1);
        let start_idx = if start_ckpt == 0 {
            0
        } else {
            (1 + (start_ckpt - 1) * per).min(my_files.len() as u32)
        };
        let start_phase = if p.preload_to_shm && first_launch {
            Phase::Preload { idx: 0 }
        } else {
            Phase::NextFile { idx: start_idx }
        };
        CfScript {
            p,
            total_ranks,
            my_files,
            preload_files,
            phase: start_phase,
            files_done: start_idx,
            next_ckpt_at: 1 + start_ckpt * per,
            resume_idx: start_idx,
            ckpt_fd: None,
            ckpt_begin: SimTime::ZERO,
            h5: None,
        }
    }
}

/// Run CosmoFlow at the given scale over the PFS (the baseline of Fig. 7).
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = CosmoflowParams::scaled(scale);
    run_with(p, scale, seed)
}

/// Run with explicit parameters (the Figure 7 harness varies `nodes`,
/// `data_dir`, and `local_reads`).
pub fn run_with(mut p: CosmoflowParams, scale: f64, seed: u64) -> WorkloadRun {
    if p.preload_to_shm {
        p.local_reads = true;
        p.data_dir = "/dev/shm/cosmoflow".to_string();
    }
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(6 * 3600), seed);
    // Pre-size the capture columns: every sample file is opened by its
    // rank group (header + validation metadata per reader) and streamed in
    // xfer-sized pieces; rank 0 adds periodic checkpoints. Preload runs
    // touch each file twice (PFS copy-out + local read).
    let per_file = p.group_size as u64 * 4 + p.file_bytes / p.xfer.max(1);
    let preload_factor = if p.preload_to_shm { 2 } else { 1 };
    world.tracer.reserve(
        (p.n_files as u64 * per_file * preload_factor
            + p.n_ckpts as u64 * (2 + p.ckpt_total / p.ckpt_xfer.max(1))) as usize,
    );
    if p.preload_to_shm {
        // The dataset pre-exists on the PFS; the job preloads it.
        let pfs_params = CosmoflowParams {
            data_dir: "/p/gpfs1/cosmoflow/2019_05_4parE".to_string(),
            ..p.clone()
        };
        stage_dataset(&mut world, &pfs_params);
    } else if !p.local_reads {
        stage_dataset(&mut world, &p);
    }
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "cosmoflow");
    }
    let n = world.alloc.total_ranks();
    let crashes = p.faults.crashes_sorted();
    execute_with_recovery(
        WorkloadKind::Cosmoflow,
        scale,
        world,
        &crashes,
        move |ckpts_done, epoch| {
            (0..n)
                .map(|r| {
                    Box::new(CfScript::resuming(
                        p.clone(),
                        n,
                        r,
                        ckpts_done as u32,
                        epoch == 0,
                    )) as Box<dyn RankScript<IoWorld>>
                })
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::{Layer, OpKind};

    fn tiny() -> WorkloadRun {
        run(0.002, 5)
    }

    #[test]
    fn every_file_is_shared_across_ranks() {
        let run = tiny();
        let c = run.columnar();
        let reads = c.select(|i| {
            c.op[i] == OpKind::Read && c.layer[i] == Layer::Posix && c.bytes[i] >= 64 * KIB
        });
        let by_file = c.group_by_file(&reads);
        for (&f, _) in by_file.iter() {
            let readers: std::collections::HashSet<u32> = reads
                .iter()
                .filter(|&&i| c.file[i as usize] == f)
                .map(|&i| c.rank[i as usize])
                .collect();
            assert!(readers.len() > 1, "file {f} should be read by a group");
        }
    }

    #[test]
    fn metadata_time_dominates_io_time() {
        let run = tiny();
        let c = run.columnar();
        // HighLevel layer: meta (open/stat/close) vs data (read/write) time.
        let hl_meta =
            c.sum_time(&c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i].is_meta()));
        let hl_data =
            c.sum_time(&c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i].is_data()));
        // Note: HighLevel read spans include the inner validation reads, so
        // compare meta records (open + per-access validation) directly.
        assert!(hl_meta.as_secs_f64() > 0.0, "metadata records must exist");
        let meta_ops = c.meta_ops(Some(Layer::HighLevel)).len();
        let data_ops = c.data_ops(Some(Layer::HighLevel)).len();
        assert!(
            meta_ops > data_ops,
            "HDF5-level metadata ops ({meta_ops}) should outnumber data ops ({data_ops})"
        );
        let _ = hl_data;
    }

    #[test]
    fn transfers_are_one_mib() {
        let run = tiny();
        let c = run.columnar();
        let hl_reads = c.select(|i| {
            c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read && c.bytes[i] > 0
        });
        assert!(!hl_reads.is_empty());
        let max = hl_reads.iter().map(|&i| c.bytes[i as usize]).max().unwrap();
        assert!(
            max <= 1 * MIB,
            "HDF5 reads capped at the 1 MiB transfer size"
        );
    }

    #[test]
    fn rank0_writes_checkpoints() {
        let run = tiny();
        let c = run.columnar();
        let writes = c.select(|i| c.op[i] == OpKind::Write && c.layer[i] == Layer::Posix);
        assert!(!writes.is_empty(), "checkpoints must be written");
        assert!(writes.iter().all(|&i| c.rank[i as usize] == 0));
        let max = writes.iter().map(|&i| c.bytes[i as usize]).max().unwrap();
        assert!(max <= 40 * KIB);
    }

    #[test]
    fn metadata_service_is_stormed() {
        // The baseline's pain: collective metadata — MDS operations (opens,
        // closes, per-access validations) far outnumber data operations.
        let mut p = CosmoflowParams::scaled(0.002);
        p.nodes = 4;
        p.n_files = 32;
        let run = run_with(p, 0.002, 5);
        let s = run.world.storage.pfs().stats();
        // Every file costs opens + closes + per-access validations on the
        // MDS: at least ~10 MDS round trips per 32 MiB file.
        assert!(
            s.meta_ops > 10 * 32,
            "MDS ops {} should reflect the per-file metadata storm",
            s.meta_ops
        );
    }

    #[test]
    fn crash_rolls_back_to_last_model_checkpoint() {
        let healthy = tiny();
        let mid = sim_core::SimTime::from_nanos(healthy.report.makespan.as_nanos() * 3 / 4);
        let crashed = || {
            let mut p = CosmoflowParams::scaled(0.002);
            p.faults = FaultPlan::none().with_rank_crash(1, mid);
            run_with(p, 0.002, 5)
        };
        let a = crashed();
        let c = a.columnar();
        assert_eq!(c.select(|i| c.op[i] == OpKind::Crash).len(), 1);
        assert_eq!(c.select(|i| c.op[i] == OpKind::RestartEpoch).len(), 1);
        assert!(a.report.makespan > healthy.report.makespan);
        // Rolled-back samples are read again: total bytes read can only grow.
        let read = |r: &WorkloadRun| {
            let c = r.columnar();
            c.sum_bytes(&c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read))
        };
        assert!(read(&a) >= read(&healthy));
        let b = crashed();
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.columnar(), b.columnar());
    }

    #[test]
    fn whole_dataset_is_read_once() {
        let run = tiny();
        let p = CosmoflowParams::scaled(0.002);
        let c = run.columnar();
        let hl_reads = c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read);
        let total = c.sum_bytes(&hl_reads);
        let expect = p.n_files as u64 * (p.file_bytes / p.group_size as u64) * p.group_size as u64;
        assert_eq!(total, expect);
    }
}
