//! JAG ICF — semi-analytic AI surrogate model (paper §III-B4, §IV-A4,
//! Figure 4).
//!
//! A single 200 MB NumPy dataset of 100 K small samples is consumed through
//! the STDIO interface: each rank opens the file once, reads its ~2 MB
//! worth of samples in sub-4 KiB accesses during the first epoch, caches
//! them in memory for the remaining epochs (framework-level dataset cache),
//! runs GPU compute per epoch, writes a small checkpoint per epoch, and
//! performs a validation read pass at the end (the second I/O phase of
//! Fig. 4c). 70 % of operations are metadata.

use crate::harness::{execute, scaled, scaled_nodes, WorkloadKind, WorkloadRun};
use hpc_cluster::engine::{RankScript, StepEffect};
use hpc_cluster::topology::RankId;
use io_layers::npy::{self, NpyHeader};
use io_layers::posix::{self, OpenFlags};
use io_layers::world::IoWorld;
use sim_core::units::KIB;
use sim_core::{Dur, SimTime};
use storage_sim::file::Segment;
use storage_sim::{FaultPlan, InterferenceSchedule};

/// JAG parameters.
#[derive(Debug, Clone)]
pub struct JagParams {
    /// Nodes in the job.
    pub nodes: u32,
    /// Ranks per node (4: one per GPU).
    pub ranks_per_node: u32,
    /// Samples in the dataset (100 K).
    pub n_samples: u64,
    /// Bytes per sample (~2 KB: scalars + time series slices).
    pub sample_bytes: u64,
    /// Training epochs (100).
    pub epochs: u32,
    /// GPU compute per epoch per rank.
    pub gpu_per_epoch: Dur,
    /// Checkpoint bytes per epoch (20 KB).
    pub ckpt_bytes: u64,
    /// Samples each rank validates at the end.
    pub validation_samples: u64,
    /// Fault-injection plan applied to the PFS for this run (empty = none).
    pub faults: FaultPlan,
    /// Competing-tenant load on the shared PFS (empty = dedicated machine).
    pub interference: InterferenceSchedule,
}

impl JagParams {
    /// Paper configuration: 128 ranks, 1289 s job, 13 % I/O.
    pub fn paper() -> Self {
        JagParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: 32,
            ranks_per_node: 4,
            n_samples: 100_000,
            sample_bytes: 2 * KIB,
            epochs: 100,
            gpu_per_epoch: Dur::from_secs_f64(10.0),
            ckpt_bytes: 20 * KIB,
            validation_samples: 200,
        }
    }

    /// Scaled-down variant.
    pub fn scaled(scale: f64) -> Self {
        let p = Self::paper();
        JagParams {
            faults: FaultPlan::none(),
            interference: InterferenceSchedule::none(),
            nodes: scaled_nodes(p.nodes, scale),
            ranks_per_node: p.ranks_per_node,
            n_samples: scaled(p.n_samples, scale, 64),
            sample_bytes: p.sample_bytes,
            epochs: scaled(p.epochs as u64, scale.max(0.05), 3) as u32,
            gpu_per_epoch: Dur::from_secs_f64(p.gpu_per_epoch.as_secs_f64() * scale.max(0.02)),
            ckpt_bytes: p.ckpt_bytes,
            validation_samples: scaled(p.validation_samples, scale, 8),
        }
    }

    /// Dataset path.
    pub fn dataset_path(&self) -> &'static str {
        "/p/gpfs1/jag/jag_samples.npy"
    }

    /// Elements per sample for a `<f4` dtype.
    fn elems_per_sample(&self) -> u64 {
        (self.sample_bytes / 4).max(1)
    }
}

/// Stage the npy dataset (real header + pattern payload).
pub fn stage_dataset(world: &mut IoWorld, p: &JagParams) {
    let header = NpyHeader {
        descr: "<f4".to_string(),
        shape: vec![p.n_samples, p.elems_per_sample()],
    };
    let enc = header.encode();
    let store = world.storage.pfs_mut().store_mut();
    let key = store
        .create(p.dataset_path(), false)
        .expect("stage jag dataset");
    let len = enc.len() as u64;
    store
        .write(key, 0, Segment::Bytes(std::sync::Arc::new(enc)))
        .expect("stage header");
    store
        .write(
            key,
            len,
            Segment::Pattern {
                seed: 0x1A6,
                len: header.nbytes(),
            },
        )
        .expect("stage payload");
    // JAG's implosion scalars are normally distributed (Table VI).
    let prefix =
        sim_core::stats::synth_bytes(sim_core::stats::DistributionFit::Normal, 0x1A6, 16384);
    store
        .write(key, 1024, Segment::Bytes(std::sync::Arc::new(prefix)))
        .expect("stage value prefix");
}

enum Phase {
    Open,
    FirstEpochRead { sample: u64 },
    EpochGpu { epoch: u32 },
    Ckpt { epoch: u32 },
    Validate { sample: u64 },
    Close,
    Done,
}

struct JagScript {
    p: JagParams,
    total_ranks: u32,
    phase: Phase,
    file: Option<npy::NpyFile>,
}

impl JagScript {
    /// Samples this rank consumes.
    fn my_range(&self, rank: RankId) -> (u64, u64) {
        let per = self.p.n_samples / self.total_ranks as u64;
        let start = rank.0 as u64 * per;
        (start, per.max(1))
    }
}

impl RankScript<IoWorld> for JagScript {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        loop {
            match self.phase {
                Phase::Open => {
                    let (f, t) = npy::open(w, rank, self.p.dataset_path(), now);
                    self.file = Some(f.expect("jag dataset staged"));
                    self.phase = Phase::FirstEpochRead { sample: 0 };
                    return StepEffect::busy_until(t);
                }
                Phase::FirstEpochRead { sample } => {
                    let (start, count) = self.my_range(rank);
                    if sample >= count {
                        self.phase = Phase::EpochGpu { epoch: 0 };
                        continue;
                    }
                    // Batch a handful of sample reads per engine step.
                    let f = self.file.as_ref().expect("opened");
                    let mut t = now;
                    let mut s = sample;
                    for _ in 0..8 {
                        if s >= count {
                            break;
                        }
                        let idx = (start + s) * self.p.elems_per_sample();
                        let (res, t2) = f.read_elements(w, rank, idx, self.p.elems_per_sample(), t);
                        res.expect("sample read");
                        t = t2;
                        s += 1;
                    }
                    self.phase = Phase::FirstEpochRead { sample: s };
                    return StepEffect::busy_until(t);
                }
                Phase::EpochGpu { epoch } => {
                    if epoch >= self.p.epochs {
                        self.phase = Phase::Validate { sample: 0 };
                        continue;
                    }
                    let t = w.gpu_compute(rank, self.p.gpu_per_epoch, now);
                    self.phase = Phase::Ckpt { epoch };
                    return StepEffect::busy_until(t);
                }
                Phase::Ckpt { epoch } => {
                    // Every rank writes its model shard checkpoint (small).
                    let path = format!("/p/gpfs1/jag/ckpt/e{epoch:03}_r{:04}.ckpt", rank.0);
                    let (fd, t) = posix::open(w, rank, &path, OpenFlags::write_create(), now);
                    let fd = fd.expect("ckpt open");
                    let mut t = t;
                    let mut left = self.p.ckpt_bytes;
                    while left > 0 {
                        let this = left.min(4 * KIB);
                        let (res, t2) = posix::write_pattern(w, rank, fd, this, 0x1A66, t);
                        res.expect("ckpt write");
                        left -= this;
                        t = t2;
                    }
                    let (_, t) = posix::close(w, rank, fd, t);
                    self.phase = Phase::EpochGpu { epoch: epoch + 1 };
                    return StepEffect::busy_until(t);
                }
                Phase::Validate { sample } => {
                    if sample >= self.p.validation_samples {
                        self.phase = Phase::Close;
                        continue;
                    }
                    let f = self.file.as_ref().expect("opened");
                    let (start, count) = self.my_range(rank);
                    let idx = (start + (sample % count.max(1))) * self.p.elems_per_sample();
                    let (res, t) = f.read_elements(w, rank, idx, self.p.elems_per_sample(), now);
                    res.expect("validation read");
                    self.phase = Phase::Validate { sample: sample + 1 };
                    return StepEffect::busy_until(t);
                }
                Phase::Close => {
                    let f = self.file.take().expect("opened");
                    let (_, t) = f.close(w, rank, now);
                    self.phase = Phase::Done;
                    return StepEffect::busy_until(t);
                }
                Phase::Done => return StepEffect::done(),
            }
        }
    }
}

/// Run JAG at the given scale.
pub fn run(scale: f64, seed: u64) -> WorkloadRun {
    let p = JagParams::scaled(scale);
    run_with(p, scale, seed)
}

/// Run JAG with explicit parameters.
pub fn run_with(p: JagParams, scale: f64, seed: u64) -> WorkloadRun {
    let mut world = IoWorld::lassen(p.nodes, p.ranks_per_node, Dur::from_secs(6 * 3600), seed);
    // Pre-size the capture columns: the first epoch reads every sample in
    // sub-4 KiB stdio accesses, each epoch checkpoints per rank, and the
    // validation pass re-reads a sample slice per rank.
    let ranks = (p.nodes * p.ranks_per_node) as u64;
    world.tracer.reserve(
        (p.n_samples * 2 + ranks * (4 + p.epochs as u64 * 2 + p.validation_samples)) as usize,
    );
    stage_dataset(&mut world, &p);
    world.storage.pfs_mut().set_fault_plan(p.faults.clone());
    world
        .storage
        .pfs_mut()
        .set_interference(p.interference.clone());
    for r in world.alloc.ranks().collect::<Vec<_>>() {
        world.set_app(r, "jag-icf");
    }
    let n = world.alloc.total_ranks();
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..n)
        .map(|_| {
            Box::new(JagScript {
                p: p.clone(),
                total_ranks: n,
                phase: Phase::Open,
                file: None,
            }) as Box<dyn RankScript<IoWorld>>
        })
        .collect();
    execute(WorkloadKind::Jag, scale, world, scripts, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder_sim::record::{Layer, OpKind};

    fn tiny() -> WorkloadRun {
        run(0.02, 9)
    }

    #[test]
    fn single_shared_dataset_file() {
        let run = tiny();
        let c = run.columnar();
        let reads = c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read);
        assert!(!reads.is_empty());
        // All ranks read; one dataset file.
        let readers: std::collections::HashSet<u32> =
            reads.iter().map(|&i| c.rank[i as usize]).collect();
        assert_eq!(readers.len(), run.world.alloc.total_ranks() as usize);
    }

    #[test]
    fn app_level_accesses_are_small() {
        let run = tiny();
        let c = run.columnar();
        let stdio_reads =
            c.select(|i| c.layer[i] == Layer::Stdio && c.op[i] == OpKind::Read && c.bytes[i] > 0);
        let max = stdio_reads
            .iter()
            .map(|&i| c.bytes[i as usize])
            .max()
            .unwrap();
        assert!(max <= 4 * KIB, "JAG accesses stay under 4 KiB, got {max}");
    }

    #[test]
    fn metadata_ops_dominate() {
        let run = tiny();
        let c = run.columnar();
        let io = c.select(|i| c.op[i].is_io() && matches!(c.layer[i], Layer::Stdio | Layer::Posix));
        let meta = io.iter().filter(|&&i| c.op[i as usize].is_meta()).count();
        let frac = meta as f64 / io.len() as f64;
        // Paper: ~70 % of operations are metadata.
        assert!(frac > 0.4, "metadata fraction {frac}");
    }

    #[test]
    fn two_read_phases_with_gpu_between() {
        let run = tiny();
        let c = run.columnar();
        let reads = c.select(|i| {
            c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read && c.rank[i] == 0
        });
        let gpu = c.select(|i| c.op[i] == OpKind::GpuCompute && c.rank[i] == 0);
        let first_gpu_start = gpu.iter().map(|&i| c.start[i as usize]).min().unwrap();
        let last_gpu_end = gpu.iter().map(|&i| c.end[i as usize]).max().unwrap();
        let before = reads
            .iter()
            .filter(|&&i| c.end[i as usize] <= first_gpu_start)
            .count();
        let after = reads
            .iter()
            .filter(|&&i| c.start[i as usize] >= last_gpu_end)
            .count();
        assert!(before > 0, "initial input phase exists");
        assert!(after > 0, "validation phase exists after training");
    }

    #[test]
    fn later_epochs_do_no_dataset_io() {
        let run = tiny();
        let c = run.columnar();
        // Dataset reads (HighLevel) happen only in the first epoch and the
        // validation pass — count must be bounded by samples + validation.
        let p = JagParams::scaled(0.02);
        let reads = c.select(|i| c.layer[i] == Layer::HighLevel && c.op[i] == OpKind::Read);
        let per_rank = reads.len() as u64 / run.world.alloc.total_ranks() as u64;
        let per = p.n_samples / run.world.alloc.total_ranks() as u64;
        assert!(per_rank <= per + p.validation_samples + 2);
    }
}
