//! Splittable deterministic random number generation.
//!
//! The core generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that any 64-bit seed — including 0 — yields a well-mixed
//! state. [`Rng::split`] derives an independent child stream from a parent,
//! which is how the suite gives every simulation component its own stream
//! without draw-order coupling.
//!
//! All samplers are implemented from first principles (no `rand`/
//! `rand_distr`): 53-bit uniform doubles, Lemire-style bounded integers,
//! polar Box–Muller normals, Marsaglia–Tsang gammas, and exp-of-normal
//! lognormals. The raw stream is pinned by regression vectors in the tests;
//! any change to the generator or the samplers is a breaking change to every
//! recorded trace and must bump those vectors deliberately.

/// SplitMix64 step: mixes a counter into a well-distributed 64-bit value.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic, splittable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed a generator. Any seed is fine; SplitMix64 expansion guarantees a
    /// non-degenerate (non-all-zero) state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream. The child is seeded from two
    /// draws of the parent, so successive splits yield distinct streams and
    /// the parent's subsequent output is unrelated to any child's.
    pub fn split(&mut self) -> Rng {
        let a = self.next_u64();
        let b = self.next_u64();
        let mut sm = a ^ b.rotate_left(32);
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Degenerate ranges return `lo`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if !(hi > lo) {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `hi <= lo`, matching the
    /// `gen_range` contract the suite was written against.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "uniform_u64: empty range [{lo}, {hi})");
        lo + self.bounded(hi - lo)
    }

    /// Unbiased integer in `[0, bound)` by rejection on the top of the
    /// range (Lemire's method without the 128-bit multiply fast path, to
    /// stay obviously correct).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Normal draw via the polar Box–Muller method. The spare deviate is
    /// discarded so one call consumes a self-contained slice of the stream.
    /// Non-finite or non-positive `std` falls back to the mean.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        if !std.is_finite() || std <= 0.0 {
            return mean;
        }
        mean + std * self.std_normal()
    }

    /// Standard normal deviate.
    fn std_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Gamma draw (shape/scale parameterization) via Marsaglia–Tsang;
    /// shapes below 1 use the boosting identity
    /// `Gamma(a) = Gamma(a + 1) * U^(1/a)`. Invalid parameters fall back to
    /// the distribution mean `shape * scale`.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        if !shape.is_finite() || !scale.is_finite() || shape <= 0.0 || scale <= 0.0 {
            return shape * scale;
        }
        if shape < 1.0 {
            let boost = self.next_f64().max(f64::MIN_POSITIVE).powf(1.0 / shape);
            return self.gamma_ge1(shape + 1.0) * boost * scale;
        }
        self.gamma_ge1(shape) * scale
    }

    /// Marsaglia–Tsang for shape >= 1, unit scale.
    fn gamma_ge1(&mut self, shape: f64) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.std_normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = self.next_f64();
            if u < 1.0 - 0.0331 * (x * x) * (x * x) {
                return d * v;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }

    /// Lognormal draw: `exp(N(mu, sigma))`. Non-finite or negative `sigma`
    /// falls back to the distribution median `exp(mu)`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        if !sigma.is_finite() || sigma < 0.0 {
            return mu.exp();
        }
        if sigma == 0.0 {
            return mu.exp();
        }
        self.normal(mu, sigma).exp()
    }

    /// Exponential draw with the given `rate` (mean `1 / rate`), via
    /// inversion of the CDF: `-ln(1 - U) / rate`. One uniform per draw, so
    /// the arrival-process streams consume a predictable slice of the raw
    /// stream. Non-finite or non-positive `rate` falls back to `0.0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if !rate.is_finite() || rate <= 0.0 {
            return 0.0;
        }
        // 1 - U is in (0, 1], so ln() is finite and the draw non-negative.
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Weibull draw with the given `shape` (k) and `scale` (λ), via
    /// inversion: `λ * (-ln(1 - U))^(1/k)`. Shape 1 reduces exactly to an
    /// exponential with mean `λ`; heavier shapes (< 1) model the long
    /// repair tails real node-outage logs show. One uniform per draw, so
    /// the fleet's node-fault stream consumes a predictable slice of the
    /// raw stream. Invalid parameters fall back to `scale`.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        if !shape.is_finite() || !scale.is_finite() || shape <= 0.0 || scale <= 0.0 {
            return scale;
        }
        // 1 - U is in (0, 1], so ln() is finite and the draw non-negative.
        scale * (-(1.0 - self.next_f64()).ln()).powf(1.0 / shape)
    }

    /// Bernoulli draw; `p` is clamped to `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned regression vectors for the raw stream: seed 0 and seed
    /// 0xdeadbeef. These freeze the SplitMix64 seeding + xoshiro256++ step;
    /// if they ever change, every recorded trace in the repo changes too.
    #[test]
    fn raw_stream_vectors() {
        let mut r = Rng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
        let mut r = Rng::new(0xdeadbeef);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                887788264254705374,
                3131310381243359458,
                13700943409776775970,
                6855428166950120087,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A second split is a different stream.
        let mut c3 = parent1.split();
        let overlap = (0..100).filter(|_| c1.next_u64() == c3.next_u64()).count();
        assert!(overlap < 3);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_is_unbiased_for_small_ranges() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.uniform_u64(0, 7) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 7.0;
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt());
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        // Gamma(shape=4, scale=2.5): mean 10, var 25.
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(4.0, 2.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
        assert!((var - 25.0).abs() < 1.5, "var {var}");
    }

    #[test]
    fn gamma_small_shape_has_right_mean() {
        let mut r = Rng::new(13);
        let n = 50_000;
        // Gamma(shape=0.5, scale=2): mean 1.
        let mean: f64 = (0..n).map(|_| r.gamma(0.5, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = Rng::new(15);
        let n = 50_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(1.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 1f64.exp()).abs() < 0.06, "median {median}");
    }

    /// Pinned sequences for the arrival-process samplers: the fleet
    /// scheduler's admission times derive from these streams, so any change
    /// to them reshuffles every recorded fleet manifest. Values are the
    /// first four draws at seed 7, printed to 12 significant digits.
    #[test]
    fn exponential_interarrival_sequence_is_pinned() {
        let mut r = Rng::new(7);
        let got: Vec<f64> = (0..4).map(|_| r.exponential(0.5)).collect();
        let want = [
            0.113903677016,
            0.377764110436,
            2.528692491256,
            1.114471612201,
        ];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "exponential drifted: {got:?}");
        }
    }

    #[test]
    fn lognormal_interarrival_sequence_is_pinned() {
        let mut r = Rng::new(7);
        let got: Vec<f64> = (0..4).map(|_| r.lognormal(0.0, 0.5)).collect();
        let want = [
            2.309470373536,
            1.308588511388,
            1.829356246411,
            1.178414990901,
        ];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "lognormal drifted: {got:?}");
        }
    }

    /// Pinned values of the *fourth* split stream of a parent generator:
    /// the fleet manifest splits pick/seed/gap/fault streams in that order,
    /// and node-fault timelines draw exclusively from the fourth. Freezing
    /// it here means adding the fault stream can never shift the first
    /// three (job templates, job seeds, submit times), and any change to
    /// split order is caught before it silently reshuffles recorded fleets.
    #[test]
    fn fourth_split_stream_is_pinned() {
        let mut master = Rng::new(7);
        let _pick = master.split();
        let _seed = master.split();
        let _gap = master.split();
        let mut fault = master.split();
        let got: Vec<u64> = (0..4).map(|_| fault.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                1093435321288409534,
                1037709814678826942,
                4938503143131017108,
                2272506289575213947,
            ]
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut a = Rng::new(31);
        let mut b = Rng::new(31);
        for _ in 0..100 {
            let w = a.weibull(1.0, 4.0);
            let e = b.exponential(0.25);
            assert!(
                (w - e).abs() < 1e-12,
                "shape-1 weibull must equal exponential"
            );
        }
    }

    #[test]
    fn weibull_mean_matches_closed_form() {
        // Mean = scale * Γ(1 + 1/shape); for shape 2 that is scale·√π/2.
        let mut r = Rng::new(33);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.weibull(2.0, 10.0)).sum::<f64>() / n as f64;
        let want = 10.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((mean - want).abs() < 0.1, "mean {mean} want {want}");
    }

    #[test]
    fn weibull_invalid_params_fall_back_to_scale() {
        let mut r = Rng::new(35);
        assert_eq!(r.weibull(0.0, 5.0), 5.0);
        assert_eq!(r.weibull(-1.0, 5.0), 5.0);
        assert_eq!(r.weibull(f64::NAN, 5.0), 5.0);
        assert_eq!(r.weibull(1.0, -2.0), -2.0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = Rng::new(23);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn exponential_invalid_rate_falls_back() {
        let mut r = Rng::new(25);
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-3.0), 0.0);
        assert_eq!(r.exponential(f64::NAN), 0.0);
    }

    #[test]
    fn invalid_params_fall_back() {
        let mut r = Rng::new(17);
        assert_eq!(r.normal(5.0, f64::NAN), 5.0);
        assert_eq!(r.normal(5.0, -1.0), 5.0);
        assert_eq!(r.gamma(-2.0, 3.0), -6.0);
        assert_eq!(r.lognormal(0.0, f64::NAN), 1.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng::new(19);
        assert!((0..100).all(|_| r.bernoulli(1.0)));
        assert!((0..100).all(|_| !r.bernoulli(0.0)));
        assert!((0..100).all(|_| !r.bernoulli(f64::NAN)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }
}
