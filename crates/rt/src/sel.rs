//! Predicate selections as bitmaps.
//!
//! Analysis queries used to materialize every selection as a `Vec<u32>` of
//! matching indices — 4 bytes per *match*, reallocated on every query. A
//! [`Selection`] stores the same information as one bit per *domain
//! element* (32× smaller for dense selections), is built by a deterministic
//! parallel scan, and supports the fold/iteration patterns the analysis
//! kernels need without ever expanding to an index list.
//!
//! Determinism: the bitmap content is a pure function of the predicate, and
//! every fold visits set bits in ascending index order with morsel
//! boundaries that depend only on the domain length — so results are
//! bit-identical across worker counts, matching the `par` module contract.

use crate::par;

/// A subset of the index space `0..len`, stored as a bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Bit `i % 64` of `words[i / 64]` is set iff index `i` is selected.
    words: Vec<u64>,
    /// Domain size (number of indices the predicate was evaluated on).
    domain: usize,
    /// Number of set bits.
    count: usize,
}

impl Selection {
    /// Evaluate `pred` over `0..len` in parallel and pack the results.
    /// Each 64-bit word is produced by exactly one worker, so there are no
    /// write conflicts and no locking on the hot path.
    pub fn from_pred<P>(len: usize, pred: P) -> Selection
    where
        P: Fn(usize) -> bool + Sync,
    {
        let nwords = len.div_ceil(64);
        let words = par::par_fold_shards(
            nwords,
            Vec::new,
            |acc: &mut Vec<u64>, range| {
                for w in range {
                    let mut word = 0u64;
                    let base = w * 64;
                    let top = (base + 64).min(len);
                    for i in base..top {
                        if pred(i) {
                            word |= 1u64 << (i - base);
                        }
                    }
                    acc.push(word);
                }
            },
            |a, mut b| a.append(&mut b),
        );
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Selection {
            words,
            domain: len,
            count,
        }
    }

    /// An empty selection over `0..len`.
    pub fn empty(len: usize) -> Selection {
        Selection {
            words: vec![0; len.div_ceil(64)],
            domain: len,
            count: 0,
        }
    }

    /// Number of selected indices.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of the underlying index space.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Whether no index is selected.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether index `i` is selected.
    pub fn contains(&self, i: usize) -> bool {
        i < self.domain && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Iterate the selected indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * 64;
            BitIter(word).map(move |b| base + b)
        })
    }

    /// Expand to the sorted index list (the legacy `Vec<u32>` shape).
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count);
        out.extend(self.iter().map(|i| i as u32));
        out
    }

    /// Morsel-driven parallel fold over the selected indices, ascending.
    /// Same determinism contract as [`par::par_fold_shards`]: morsels cover
    /// whole words, shard accumulators merge in morsel order.
    pub fn fold_shards<A, I, F, M>(&self, identity: I, fold: F, merge: M) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        M: Fn(&mut A, A),
    {
        par::par_fold_shards(
            self.words.len(),
            identity,
            |acc, range| {
                for w in range {
                    let base = w * 64;
                    for b in BitIter(self.words[w]) {
                        fold(acc, base + b);
                    }
                }
            },
            merge,
        )
    }
}

/// Iterator over the set-bit positions of one word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pred_matches_filter() {
        let sel = Selection::from_pred(10_000, |i| i % 7 == 0);
        let expect: Vec<u32> = (0..10_000u32).filter(|i| i % 7 == 0).collect();
        assert_eq!(sel.to_indices(), expect);
        assert_eq!(sel.count(), expect.len());
        assert_eq!(sel.domain(), 10_000);
        assert!(sel.contains(7));
        assert!(!sel.contains(8));
        assert!(!sel.contains(10_000)); // out of domain
    }

    #[test]
    fn bitmap_identical_across_worker_counts() {
        par::set_threads(1);
        let one = Selection::from_pred(100_000, |i| i % 3 == 1);
        par::set_threads(8);
        let eight = Selection::from_pred(100_000, |i| i % 3 == 1);
        par::set_threads(0);
        assert_eq!(one, eight);
    }

    #[test]
    fn fold_shards_visits_in_order() {
        let sel = Selection::from_pred(70_000, |i| i % 5 == 0);
        let seen = sel.fold_shards(
            Vec::new,
            |acc: &mut Vec<usize>, i| acc.push(i),
            |a, mut b| a.append(&mut b),
        );
        assert_eq!(seen, sel.iter().collect::<Vec<_>>());
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(seen.len(), sel.count());
    }

    #[test]
    fn non_multiple_of_64_domains_have_no_phantom_bits() {
        let sel = Selection::from_pred(130, |_| true);
        assert_eq!(sel.count(), 130);
        assert_eq!(sel.iter().last(), Some(129));
    }

    #[test]
    fn empty_selection() {
        let sel = Selection::empty(100);
        assert!(sel.is_empty());
        assert_eq!(sel.iter().count(), 0);
        let zero = Selection::from_pred(0, |_| true);
        assert_eq!(zero.count(), 0);
        assert_eq!(zero.to_indices(), Vec::<u32>::new());
    }
}
