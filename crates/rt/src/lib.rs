//! `vani-rt`: the suite's zero-dependency runtime layer.
//!
//! Everything the workspace used to pull from crates.io for its hot paths
//! lives here, hermetically:
//!
//! * [`par`] — a scoped-thread parallel executor (`par_map`, `par_chunks`,
//!   `par_reduce`, `par_group_by`) with deterministic, thread-count-independent
//!   chunking, replacing `rayon`.
//! * [`rng`] — a splittable xoshiro256++ deterministic RNG with uniform,
//!   normal, gamma, and lognormal samplers, replacing `rand`/`rand_distr`.
//! * [`json`] — a minimal JSON value type plus [`json::ToJson`]/
//!   [`json::FromJson`] traits with hand-written impls at the call sites,
//!   replacing `serde`/`serde_json`.
//! * [`sel`] — bitmap [`Selection`]s: predicate query results as one bit
//!   per index instead of a materialized `Vec<u32>`, with deterministic
//!   parallel construction and folds.
//! * [`stats`] — order statistics (interpolated percentiles, five-point
//!   [`stats::Quantiles`]) and Pearson correlation for the fleet-scale
//!   characterization reports.
//!
//! Design rule: nothing in this crate (or anywhere in the workspace) may
//! depend on a registry crate, so `cargo build --offline` works from a clean
//! checkout with no network and no vendored sources.

pub mod json;
pub mod par;
pub mod rng;
pub mod sel;
pub mod stats;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
pub use sel::Selection;
