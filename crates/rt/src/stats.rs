//! Order statistics and association measures for fleet-scale
//! characterization.
//!
//! The fleet reports render per-attribute distributions (p50/p90/p99 in the
//! IO500 submission-study style) and cross-attribute Pearson correlations
//! over thousands of job records. The helpers here are deliberately
//! sequential and allocation-light: sorting a few thousand doubles is
//! microseconds, and keeping the arithmetic order fixed makes every
//! rendered percentile and correlation bit-stable regardless of worker
//! count (callers sort once, then index — no data-dependent reductions).

use std::sync::atomic::{AtomicU64, Ordering};

/// A high-water-mark byte gauge: threads `add` what they allocate and `sub`
/// what they release, and the gauge remembers the largest concurrent total it
/// ever saw. The streaming analyzer charges its chunk scratch buffers against
/// a process-wide instance of this so benches (and CI) can assert that peak
/// resident trace bytes stay bounded regardless of trace length.
///
/// All operations are lock-free atomics. `peak` is maintained with a
/// fetch-max loop on every `add`, so it is exact under concurrency (never an
/// under-count of the true simultaneous maximum of the tracked total).
#[derive(Debug, Default)]
pub struct PeakGauge {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl PeakGauge {
    /// A fresh gauge at zero.
    pub const fn new() -> PeakGauge {
        PeakGauge {
            cur: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Charge `bytes` against the gauge, raising the peak if the new total
    /// exceeds it.
    pub fn add(&self, bytes: u64) {
        let now = self.cur.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `bytes` previously charged with [`add`](Self::add). Saturates
    /// at zero so a mismatched release can't wrap the counter.
    pub fn sub(&self, bytes: u64) {
        let mut cur = self.cur.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .cur
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.cur.load(Ordering::Relaxed)
    }

    /// Largest concurrent total observed since construction or the last
    /// [`reset`](Self::reset).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart peak tracking from the current level (live charges persist;
    /// the high-water mark collapses onto them).
    pub fn reset(&self) {
        self.peak
            .store(self.cur.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Linearly interpolated percentile of an **ascending-sorted** slice.
/// `p` is in `[0, 100]`; out-of-range values clamp. Empty input returns
/// `f64::NAN`. Interpolation follows the common "linear between closest
/// ranks" definition (numpy's default): rank `h = (n - 1) * p / 100`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let h = (sorted.len() - 1) as f64 * p / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Five-point summary plus mean of a sample, computed in one pass over a
/// sorted copy. The struct is plain data so reports can format it any way
/// they like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Sample size.
    pub n: usize,
    /// Smallest observation (NAN when empty).
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean, accumulated left-to-right in input order.
    pub mean: f64,
}

impl Quantiles {
    /// Summarize a sample. Sorting uses a total order (`total_cmp`), so
    /// NaNs — which indicate an upstream bug — sort to the end instead of
    /// panicking mid-report.
    pub fn of(xs: &[f64]) -> Quantiles {
        if xs.is_empty() {
            return Quantiles {
                n: 0,
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Quantiles {
            n: xs.len(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
        }
    }
}

/// Pearson product-moment correlation of two equally long samples.
/// Returns `f64::NAN` when either sample is degenerate (fewer than two
/// points, or zero variance) — the renderer prints those cells as "-".
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: sample lengths differ");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let (mut sxy, mut sxx, mut syy) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_gauge_tracks_high_water_mark() {
        let g = PeakGauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.current(), 150);
        assert_eq!(g.peak(), 150);
        g.sub(120);
        assert_eq!(g.current(), 30);
        assert_eq!(g.peak(), 150); // peak survives release
        g.add(40);
        assert_eq!(g.peak(), 150); // 70 < 150: no new high-water mark
        g.reset();
        assert_eq!(g.peak(), 70); // reset collapses peak onto live charges
        g.sub(1_000_000);
        assert_eq!(g.current(), 0); // saturating release
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 4.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 2.5);
        assert!((percentile_sorted(&xs, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile_sorted(&[], 50.0).is_nan());
        assert_eq!(percentile_sorted(&[7.0], 99.0), 7.0);
        let xs = [1.0, 5.0];
        assert_eq!(percentile_sorted(&xs, -10.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 250.0), 5.0);
        assert_eq!(percentile_sorted(&xs, f64::NAN), 1.0);
    }

    #[test]
    fn quantiles_summarize_uniform_ramp() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let q = Quantiles::of(&xs);
        assert_eq!(q.n, 101);
        assert_eq!(q.min, 0.0);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
        assert_eq!(q.mean, 50.0);
    }

    #[test]
    fn quantiles_of_empty_are_nan() {
        let q = Quantiles::of(&[]);
        assert_eq!(q.n, 0);
        assert!(q.p50.is_nan() && q.mean.is_nan());
    }

    #[test]
    fn pearson_detects_perfect_and_inverse_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_samples_are_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn pearson_is_symmetric_and_scale_free() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let ys = [2.0, 3.0, 1.0, 9.0, 4.0];
        let a = pearson(&xs, &ys);
        let b = pearson(&ys, &xs);
        assert!((a - b).abs() < 1e-12);
        let scaled: Vec<f64> = ys.iter().map(|y| y * 100.0 - 7.0).collect();
        assert!((pearson(&xs, &scaled) - a).abs() < 1e-12);
    }
}
