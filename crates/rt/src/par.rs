//! Scoped-thread data parallelism with deterministic results.
//!
//! The executor replaces `rayon` for the suite's analysis kernels. Work is
//! split into chunks whose boundaries depend only on the input length —
//! never on the worker count — and per-chunk results are combined in chunk
//! order on the calling thread. Consequently every entry point returns
//! **bit-identical** results whether it runs on one thread or many, which
//! is what lets the determinism suite compare a parallel run against the
//! sequential fallback.
//!
//! Worker count resolution, in priority order:
//! 1. compiled out entirely under `--cfg single_thread` (always sequential),
//! 2. [`set_threads`] (process-wide, mainly for tests),
//! 3. the `VANI_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A panic raised inside a parallel worker, caught by the executor and
/// re-thrown with its origin attached. Every entry point in this module
/// unwinds with a `Box<WorkerPanic>` payload when a task panics, so callers
/// that `catch_unwind` (or use [`try_par_map_owned`]) see *which* worker and
/// chunk failed and the original panic message — instead of a bare unwind
/// from an anonymous scoped thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker thread the panic fired on (0 on the sequential
    /// and small-input paths, which run on the calling thread).
    pub worker: usize,
    /// Index of the chunk whose task panicked. When several chunks panic in
    /// one run, the lowest-indexed one observed is reported.
    pub chunk: usize,
    /// The panic payload's message (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} panicked in chunk {}: {}",
            self.worker, self.chunk, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Extract a human-readable message from a panic payload: `&str` and
/// `String` payloads verbatim, a nested [`WorkerPanic`] by its display
/// form, anything else as a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(wp) = payload.downcast_ref::<WorkerPanic>() {
        wp.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Process-wide worker-count override (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count for subsequent calls (0 clears the override).
/// Intended for tests and the determinism harness.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads parallel calls will use.
pub fn num_threads() -> usize {
    if cfg!(single_thread) {
        return 1;
    }
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("VANI_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Inputs at or below this length are processed as a single chunk on the
/// calling thread by the auto-chunked entry points. Spawning scoped threads
/// costs on the order of tens of microseconds; at ~10 ns of work per item a
/// few thousand items don't amortize it, and small unit-test traces were
/// paying that overhead on every query. Chunk boundaries still depend only
/// on the input length, so results stay deterministic.
pub const SEQ_THRESHOLD: usize = 4096;

/// Chunk size used for an input of `len` items: small enough to balance
/// load across many workers, large enough to amortize dispatch. Depends
/// only on `len`, which is what makes results thread-count-independent.
fn chunk_size(len: usize) -> usize {
    (len / 64).clamp(256, 16_384).min(len.max(1))
}

/// [`run_chunked`] with automatic chunk sizing and the small-input
/// sequential fast path: inputs of at most [`SEQ_THRESHOLD`] items run as
/// one chunk on the calling thread, skipping thread spawn entirely.
fn run_chunked_auto<R, F>(len: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if len <= SEQ_THRESHOLD {
        return vec![run_caught(0, 0, 0..len, &work)];
    }
    run_chunked(len, chunk_size(len), work)
}

/// Run one chunk's task, converting a panic into a [`WorkerPanic`] unwind
/// so the origin (worker, chunk, message) survives to the caller.
fn run_caught<R, F>(worker: usize, chunk: usize, range: std::ops::Range<usize>, work: &F) -> R
where
    F: Fn(usize, std::ops::Range<usize>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| work(chunk, range))).unwrap_or_else(|payload| {
        resume_unwind(Box::new(WorkerPanic {
            worker,
            chunk,
            message: panic_message(&*payload),
        }))
    })
}

/// Run `work(chunk_index, start..end)` over every chunk of `csize` items
/// of `0..len` and return the per-chunk outputs in chunk order. The
/// scheduling backbone of every entry point below.
fn run_chunked<R, F>(len: usize, csize: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    debug_assert!(csize > 0);
    let nchunks = len.div_ceil(csize);
    let workers = num_threads().min(nchunks);
    if workers <= 1 {
        return (0..nchunks)
            .map(|c| run_caught(0, c, c * csize..((c + 1) * csize).min(len), &work))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..nchunks).map(|_| None).collect());
    // First worker panic observed, lowest chunk index winning: a panicking
    // worker stops claiming chunks, the rest drain the queue, and the run
    // re-raises the failure as a typed payload after the scope joins.
    let failure: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    let worker_loop = |w: usize| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        let range = c * csize..((c + 1) * csize).min(len);
        match catch_unwind(AssertUnwindSafe(|| work(c, range))) {
            Ok(out) => {
                results.lock().expect("no panics hold the results lock")[c] = Some(out);
            }
            Err(payload) => {
                let wp = WorkerPanic {
                    worker: w,
                    chunk: c,
                    message: panic_message(&*payload),
                };
                let mut slot = failure.lock().expect("no panics hold the failure lock");
                if slot.as_ref().map_or(true, |prev| wp.chunk < prev.chunk) {
                    *slot = Some(wp);
                }
                break;
            }
        }
    };
    std::thread::scope(|scope| {
        // The calling thread participates as worker 0 instead of parking in
        // the scope join, so a run at `workers` parallelism spawns only
        // `workers - 1` threads. Scenario sweeps dispatch a handful of
        // expensive tasks at a time; batching one worker onto the caller
        // removes a spawn/join round trip from every dispatch (the 2-worker
        // fan-out previously paid two spawns to use at most one extra core).
        for w in 1..workers {
            let worker_loop = &worker_loop;
            scope.spawn(move || worker_loop(w));
        }
        worker_loop(0);
    });
    if let Some(wp) = failure.into_inner().expect("scope joined all workers") {
        resume_unwind(Box::new(wp));
    }
    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every chunk ran"))
        .collect()
}

/// Parallel map: `f` applied to every item, outputs in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let per_chunk = run_chunked_auto(items.len(), |_, range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Parallel map over owned items (the `into_par_iter().map().collect()`
/// shape): consumes the vector, outputs in input order. Each item is its
/// own work unit, so this is the coarse task-parallel entry point — use it
/// for a handful of expensive jobs, not millions of cheap ones.
pub fn par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let per_chunk = run_chunked(slots.len(), 1, |_, range| {
        range
            .map(|i| {
                let item = slots[i]
                    .lock()
                    .expect("slot lock is uncontended")
                    .take()
                    .expect("each slot is consumed once");
                f(item)
            })
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(slots.len());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// [`par_map_owned`] with panic isolation: a panicking task comes back as
/// `Err(WorkerPanic)` instead of unwinding through the caller. Only the
/// first failure (lowest chunk index observed) is reported; the remaining
/// tasks still run to completion on their workers.
pub fn try_par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| par_map_owned(items, f))) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<WorkerPanic>() {
            Ok(wp) => Err(*wp),
            // Every executor path raises WorkerPanic; anything else came
            // from outside the worker loop and keeps unwinding.
            Err(other) => resume_unwind(other),
        },
    }
}

/// Parallel map over fixed-size chunks of the input: `f(chunk_index,
/// sub_slice)` for every chunk of `chunk` items (the last may be short).
/// Chunk boundaries here are caller-chosen, so outputs are deterministic by
/// construction.
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk > 0, "par_chunks: chunk size must be positive");
    run_chunked(items.len(), chunk, |c, range| f(c, &items[range]))
}

/// Parallel fold-then-combine. Each deterministic chunk is folded
/// left-to-right from `identity()`, and chunk accumulators are combined
/// left-to-right in chunk order, so the full reduction tree is a pure
/// function of `items.len()` — bit-identical on any worker count, even for
/// non-associative floating-point folds.
pub fn par_reduce<T, A, F, C>(
    items: &[T],
    identity: impl Fn() -> A + Sync,
    fold: F,
    combine: C,
) -> A
where
    T: Sync,
    A: Send,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let per_chunk = run_chunked_auto(items.len(), |_, range| {
        items[range].iter().fold(identity(), &fold)
    });
    per_chunk.into_iter().fold(identity(), combine)
}

/// Morsel-driven parallel fold over the index space `0..len`.
///
/// The index space is cut into deterministic morsels (chunks whose
/// boundaries depend only on `len`). Each morsel is folded into a fresh
/// shard accumulator from `identity()` by a worker, and shard accumulators
/// are merged **in morsel order** on the calling thread. The merge tree is
/// therefore a pure function of `len`: bit-identical results on any worker
/// count, even when `merge` is non-commutative or accumulates floats.
///
/// This is the kernel behind the analyzer's fused single-pass scan: the
/// accumulator can be an arbitrarily wide struct (histograms, hash tables,
/// index lists), so one traversal of the trace computes everything at once
/// instead of one scan per statistic.
pub fn par_fold_shards<A, I, F, M>(len: usize, identity: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, std::ops::Range<usize>) + Sync,
    M: Fn(&mut A, A),
{
    let shards = run_chunked_auto(len, |_, range| {
        let mut acc = identity();
        fold(&mut acc, range);
        acc
    });
    let mut out = identity();
    for shard in shards {
        merge(&mut out, shard);
    }
    out
}

/// [`par_fold_shards`] with a caller-chosen morsel size. The streaming
/// analyzer folds each decoded chunk with a morsel that divides the chunk's
/// row-group size, so the *global* sequence of (morsel, merge) operations is
/// the same whether records arrive as one giant trace or as a stream of
/// chunks — the keystone of the streaming == fused bit-identity contract.
/// Morsel boundaries depend only on `len` and `morsel`, and shard
/// accumulators merge in morsel order on the calling thread, exactly as in
/// [`par_fold_shards`].
pub fn par_fold_shards_sized<A, I, F, M>(
    len: usize,
    morsel: usize,
    identity: I,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, std::ops::Range<usize>) + Sync,
    M: Fn(&mut A, A),
{
    assert!(
        morsel > 0,
        "par_fold_shards_sized: morsel size must be positive"
    );
    let shards = run_chunked(len, morsel, |_, range| {
        let mut acc = identity();
        fold(&mut acc, range);
        acc
    });
    let mut out = identity();
    for shard in shards {
        merge(&mut out, shard);
    }
    out
}

/// Parallel filter over indices `0..len`: the sorted list of indices for
/// which `pred` holds. Output order equals sequential order because chunks
/// are concatenated in chunk order.
pub fn par_filter_indices<P>(len: usize, pred: P) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
{
    let per_chunk = run_chunked_auto(len, |_, range| {
        range
            .filter(|&i| pred(i))
            .map(|i| i as u32)
            .collect::<Vec<u32>>()
    });
    let mut out = Vec::new();
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Parallel group-by kernel: classify every item with `key`, fold items of
/// equal key with `fold`, merge per-chunk tables with `merge`. The merge
/// order is chunk order, so any non-commutative `merge` still produces
/// deterministic values.
pub fn par_group_by<T, K, A, KF, FF, MF>(items: &[T], key: KF, fold: FF, merge: MF) -> HashMap<K, A>
where
    T: Sync,
    K: Hash + Eq + Send,
    A: Default + Send,
    KF: Fn(&T) -> K + Sync,
    FF: Fn(&mut A, &T) + Sync,
    MF: Fn(&mut A, A),
{
    let per_chunk = run_chunked_auto(items.len(), |_, range| {
        let mut table: HashMap<K, A> = HashMap::new();
        for item in &items[range] {
            fold(table.entry(key(item)).or_default(), item);
        }
        table
    });
    let mut out: HashMap<K, A> = HashMap::new();
    for table in per_chunk {
        for (k, v) in table {
            match out.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` under a forced worker count, restoring the default after.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x * 3 + 1).collect();
        let par = with_threads(4, || par_map(&xs, |x| x * 3 + 1));
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_owned_consumes_in_order() {
        let xs: Vec<String> = (0..3000).map(|i| format!("v{i}")).collect();
        let expect: Vec<usize> = xs.iter().map(|s| s.len()).collect();
        let got = with_threads(3, || par_map_owned(xs, |s| s.len()));
        assert_eq!(got, expect);
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let xs: Vec<u32> = (0..2701).collect();
        let sums = with_threads(4, || par_chunks(&xs, 100, |_, c| c.iter().sum::<u32>()));
        assert_eq!(sums.len(), 28);
        assert_eq!(sums.iter().sum::<u32>(), xs.iter().sum::<u32>());
    }

    #[test]
    fn par_reduce_floats_bit_identical_across_thread_counts() {
        // Sums of many varied floats: the chunked tree must give the exact
        // same bits for 1 worker and 8 workers.
        let xs: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2654435761u64) % 1000) as f64 * 0.1)
            .collect();
        let one = with_threads(1, || {
            par_reduce(&xs, || 0.0f64, |a, &x| a + x, |a, b| a + b)
        });
        let eight = with_threads(8, || {
            par_reduce(&xs, || 0.0f64, |a, &x| a + x, |a, b| a + b)
        });
        assert_eq!(one.to_bits(), eight.to_bits());
    }

    #[test]
    fn par_filter_indices_matches_sequential() {
        let seq: Vec<u32> = (0..50_000u32).filter(|i| i % 7 == 0).collect();
        let par = with_threads(5, || par_filter_indices(50_000, |i| i % 7 == 0));
        assert_eq!(par, seq);
    }

    #[test]
    fn par_group_by_totals_match() {
        let xs: Vec<u64> = (0..30_000).collect();
        let groups = with_threads(4, || {
            par_group_by(
                &xs,
                |&x| (x % 13) as u32,
                |acc: &mut u64, &x| *acc += x,
                |acc, v| *acc += v,
            )
        });
        assert_eq!(groups.len(), 13);
        let total: u64 = groups.values().sum();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let xs: Vec<u64> = Vec::new();
        assert!(par_map(&xs, |x| *x).is_empty());
        assert!(par_filter_indices(0, |_| true).is_empty());
        assert_eq!(par_reduce(&xs, || 7u64, |a, _| a, |a, _| a), 7);
        assert!(par_group_by(&xs, |&x| x, |_: &mut u64, _| {}, |_, _| {}).is_empty());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_fold_shards_matches_sequential_fold() {
        // Wide accumulator: (sum, count, min) folded over ranges.
        let n = 100_000usize;
        let run = || {
            par_fold_shards(
                n,
                || (0u64, 0u64, u64::MAX),
                |acc, range| {
                    for i in range {
                        acc.0 += i as u64 * 3;
                        acc.1 += 1;
                        acc.2 = acc.2.min(i as u64 ^ 0x5a5a);
                    }
                },
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                    a.2 = a.2.min(b.2);
                },
            )
        };
        let seq = with_threads(1, run);
        let par8 = with_threads(8, run);
        assert_eq!(seq, par8);
        assert_eq!(seq.1, n as u64);
        assert_eq!(seq.0, (0..n as u64).map(|i| i * 3).sum());
    }

    #[test]
    fn par_fold_shards_merges_in_morsel_order() {
        // Non-commutative merge (concatenation): shard order must equal
        // morsel order, i.e. the result is exactly 0..n.
        let n = 50_000usize;
        let got = with_threads(8, || {
            par_fold_shards(
                n,
                Vec::new,
                |acc: &mut Vec<u32>, range| acc.extend(range.map(|i| i as u32)),
                |a, mut b| a.append(&mut b),
            )
        });
        assert_eq!(got, (0..n as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn par_fold_shards_sized_merges_in_morsel_order() {
        // Explicit morsel size, non-commutative merge: the concatenation must
        // equal 0..n for every worker count and any morsel size.
        for &(n, morsel) in &[
            (10_000usize, 256usize),
            (10_000, 8192),
            (5, 2),
            (4096, 4096),
        ] {
            let got = with_threads(8, || {
                par_fold_shards_sized(
                    n,
                    morsel,
                    Vec::new,
                    |acc: &mut Vec<u32>, range| acc.extend(range.map(|i| i as u32)),
                    |a, mut b| a.append(&mut b),
                )
            });
            assert_eq!(
                got,
                (0..n as u32).collect::<Vec<u32>>(),
                "n={n} morsel={morsel}"
            );
        }
    }

    #[test]
    fn par_fold_shards_empty_is_identity() {
        let got = par_fold_shards(0, || 41u32, |acc, _| *acc += 1, |a, b| *a += b);
        assert_eq!(got, 41); // no morsels: the identity comes back untouched
    }

    #[test]
    fn deliberate_panic_surfaces_as_typed_error() {
        // One task out of ten panics: the typed error names the chunk
        // (item index, csize = 1), a worker in range, and the payload text.
        let err = with_threads(4, || {
            let xs: Vec<u32> = (0..10).collect();
            try_par_map_owned(xs, |x| if x == 7 { panic!("boom at {x}") } else { x }).unwrap_err()
        });
        assert_eq!(err.chunk, 7);
        assert!(err.worker < 4, "worker index out of range: {}", err.worker);
        assert!(
            err.message.contains("boom at 7"),
            "payload lost: {}",
            err.message
        );
        let shown = err.to_string();
        assert!(
            shown.contains("worker") && shown.contains("chunk 7"),
            "{shown}"
        );
    }

    #[test]
    fn healthy_tasks_still_complete_via_try_entry_point() {
        let got = with_threads(3, || try_par_map_owned((0..100u64).collect(), |x| x * 2)).unwrap();
        assert_eq!(got, (0..100u64).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn threaded_kernels_unwind_with_worker_panic_payload() {
        // A panic inside a large par_map (threaded path) must carry the
        // typed payload, not a bare unwind.
        let payload = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                par_map(&(0..10_000u64).collect::<Vec<u64>>(), |&x| {
                    if x == 9_999 {
                        panic!("late failure")
                    }
                    x
                })
            }))
            .unwrap_err()
        });
        let wp = payload
            .downcast::<WorkerPanic>()
            .expect("typed WorkerPanic payload");
        assert!(wp.message.contains("late failure"), "{}", wp.message);
    }

    #[test]
    fn sequential_paths_also_type_their_panics() {
        // Small input → calling-thread fast path; worker is 0 by definition.
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map(&[1u32, 2, 3], |&x| if x == 2 { panic!("tiny") } else { x })
        }))
        .unwrap_err();
        let wp = payload
            .downcast::<WorkerPanic>()
            .expect("typed payload on fast path");
        assert_eq!(wp.worker, 0);
        assert!(wp.message.contains("tiny"));
    }

    #[test]
    fn small_inputs_run_on_calling_thread() {
        // Below SEQ_THRESHOLD the auto-chunked entry points must not spawn:
        // every closure call observes the caller's thread id.
        let caller = std::thread::current().id();
        let xs: Vec<u64> = (0..SEQ_THRESHOLD as u64).collect();
        let ids = with_threads(8, || par_map(&xs, |_| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == caller));
    }
}
