//! A minimal JSON codec: a value type, a strict parser, a writer, and the
//! [`ToJson`]/[`FromJson`] traits the suite's persisted types implement by
//! hand.
//!
//! Scope is deliberately narrow — this replaces `serde`/`serde_json` for
//! the handful of types that actually hit disk (traces, columnar tables,
//! H5SIM headers, cluster specs), not for arbitrary Rust data. Two points
//! of fidelity matter for those types and are guaranteed here:
//!
//! * integers are kept exact: numeric literals without a fraction or
//!   exponent parse into a 128-bit integer variant, so `u64` round-trips
//!   losslessly (a float-only value type would corrupt offsets past 2^53);
//! * object member order is preserved (insertion order on build, document
//!   order on parse), so emission is deterministic.

use std::collections::HashMap;
use std::fmt;

/// A parsed or built JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Decode failure: what went wrong and the byte offset it went wrong at
/// (offset 0 for structural errors raised above the parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input, when known.
    pub at: usize,
}

impl JsonError {
    /// A structural error (wrong shape/type), not tied to an input offset.
    pub fn shape(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            at: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a value to JSON text.
pub trait ToJson {
    /// Build the JSON tree for this value.
    fn to_json(&self) -> Json;
}

/// Deserialize a value from parsed JSON.
pub trait FromJson: Sized {
    /// Rebuild the value from a JSON tree.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parse a JSON document (must be a single value with only trailing
    /// whitespace after it).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
            msg: format!("invalid utf-8: {e}"),
            at: e.valid_up_to(),
        })?;
        Json::parse(text)
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                out.push_str(&n.to_string());
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, and always includes a '.' or 'e' marker
                    // when needed... except for integral values, where we
                    // add one so re-parsing keeps the Float variant.
                    let s = x.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (k, (name, value)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(name, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from `(name, value)` pairs.
    pub fn obj<'a>(members: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-member lookup, as a decode error when missing.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        self.get(name)
            .ok_or_else(|| JsonError::shape(format!("missing field `{name}`")))
    }

    /// Decode a required member.
    pub fn decode_field<T: FromJson>(&self, name: &str) -> Result<T, JsonError> {
        T::from_json(self.field(name)?).map_err(|e| JsonError {
            msg: format!("field `{name}`: {}", e.msg),
            at: e.at,
        })
    }

    /// The array items, or a shape error.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::shape(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The string contents, or a shape error.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// The numeric value as f64 (Int or Float), or a shape error.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(n) => Ok(*n as f64),
            Json::Float(x) => Ok(*x),
            other => Err(JsonError::shape(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The exact integer value, or a shape error (floats don't coerce).
    pub fn as_int(&self) -> Result<i128, JsonError> {
        match self {
            Json::Int(n) => Ok(*n),
            other => Err(JsonError::shape(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            at: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            // Fast path: run of plain bytes.
            while self.i < self.b.len() && self.b[self.i] != b'"' && self.b[self.i] != b'\\' {
                self.i += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.b[start..self.i])
                    .expect("input validated as utf-8 and split on ascii"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDC00-\uDFFF next.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("non-hex in \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                // Integers wider than i128 only occur in adversarial input;
                // fall back to f64 like other lenient parsers.
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.err(format!("bad number `{text}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Blanket impls for the primitives the persisted types are built from.
// ---------------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.as_f64()? as f32)
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let n = j.as_int()?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::shape(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for HashMap<String, T> {
    fn to_json(&self) -> Json {
        // Deterministic emission: members in sorted key order.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<T: FromJson> FromJson for HashMap<String, T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
                .collect(),
            other => Err(JsonError::shape(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

/// Serialize any [`ToJson`] value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize any [`ToJson`] value to JSON bytes.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string(value).into_bytes()
}

/// Parse and decode a [`FromJson`] value from JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Parse and decode a [`FromJson`] value from JSON bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    T::from_json(&Json::parse_bytes(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "4.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn u64_extremes_are_exact() {
        let v = u64::MAX;
        let text = to_string(&v);
        assert_eq!(text, "18446744073709551615");
        assert_eq!(from_str::<u64>(&text).unwrap(), v);
        let neg = to_string(&i64::MIN);
        assert_eq!(from_str::<i64>(&neg).unwrap(), i64::MIN);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 2.5e17, -0.0, 123456789.123456789] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        let text = to_string(&2.0f64);
        assert_eq!(text, "2.0");
        assert!(matches!(Json::parse(&text).unwrap(), Json::Float(_)));
    }

    #[test]
    fn nonfinite_floats_write_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ nul:\u{01} emoji:🎉";
        let text = to_string(s);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""Aé🎉""#).unwrap();
        assert_eq!(v, "Aé🎉");
    }

    #[test]
    fn arrays_and_objects_round_trip() {
        let text = r#"{"a":[1,2,3],"b":{"c":null,"d":[true,false]},"e":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(text).unwrap().render(), text);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } \n").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,2],"b":"x"}"#);
    }

    #[test]
    fn malformed_documents_error_with_position() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "tru",
            "01x",
            "[1] []",
            "",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.at <= bad.len(), "{bad}: {e}");
        }
    }

    #[test]
    fn vec_and_option_and_map_impls() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&xs);
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), xs);

        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        assert_eq!(to_string(&m), r#"{"a":1,"b":2}"#);
        assert_eq!(from_str::<HashMap<String, u64>>(&to_string(&m)).unwrap(), m);
    }

    #[test]
    fn out_of_range_ints_are_shape_errors() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u32>("2.5").is_err());
    }
}
