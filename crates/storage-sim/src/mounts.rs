//! The per-job storage system: a mount table routing paths to tiers.
//!
//! A compute node sees the shared parallel file system (every path not
//! claimed by a node-local mount) plus zero or more node-local tiers
//! (`/dev/shm`, `/tmp`). [`StorageSystem`] owns all tier simulators and
//! routes timed operations to the right one, the way the kernel's mount
//! table would.

use crate::err::IoErr;
use crate::file::{FileKey, Segment};
use crate::node_local::{NodeLocalConfig, NodeLocalFs};
use crate::path as vpath;
use crate::pfs::{GpfsConfig, GpfsSim};
use hpc_cluster::topology::NodeId;
use sim_core::{Dur, SimTime};

/// Which tier a path resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The shared parallel file system.
    Pfs,
    /// The `i`-th node-local tier in mount order.
    NodeLocal(u8),
}

/// A file handle valid across the whole system: tier plus per-tier key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle {
    /// The tier the file lives on.
    pub tier: Tier,
    /// The key within that tier's store.
    pub key: FileKey,
}

/// The complete storage system visible to a job.
pub struct StorageSystem {
    pfs: GpfsSim,
    pfs_mount: String,
    locals: Vec<NodeLocalFs>,
}

impl StorageSystem {
    /// Assemble a system: one PFS plus node-local tiers.
    pub fn new(pfs: GpfsSim, pfs_mount: &str, locals: Vec<NodeLocalFs>) -> Self {
        StorageSystem {
            pfs,
            pfs_mount: pfs_mount.to_string(),
            locals,
        }
    }

    /// A Lassen-like system for `n_nodes`: GPFS at `/p/gpfs1` plus tmpfs at
    /// `/dev/shm` sized from node memory.
    pub fn lassen(n_nodes: usize, seed: u64) -> Self {
        let node = hpc_cluster::topology::NodeSpec::lassen();
        let pfs = GpfsSim::new(
            GpfsConfig::lassen(),
            n_nodes,
            node.nic_bw,
            node.nic_latency,
            seed,
        );
        let shm = NodeLocalFs::new(NodeLocalConfig::lassen_shm(node.memory_bytes), n_nodes);
        StorageSystem::new(pfs, "/p/gpfs1", vec![shm])
    }

    /// The PFS mount point.
    pub fn pfs_mount(&self) -> &str {
        &self.pfs_mount
    }

    /// Resolve which tier a path belongs to.
    pub fn resolve(&self, path: &str) -> Tier {
        for (i, l) in self.locals.iter().enumerate() {
            if vpath::starts_with_dir(path, &l.config().mount) {
                return Tier::NodeLocal(i as u8);
            }
        }
        Tier::Pfs
    }

    /// Access the PFS simulator.
    pub fn pfs(&self) -> &GpfsSim {
        &self.pfs
    }

    /// Mutable PFS access (reconfiguration, preloading).
    pub fn pfs_mut(&mut self) -> &mut GpfsSim {
        &mut self.pfs
    }

    /// Node-local tiers in mount order.
    pub fn locals(&self) -> &[NodeLocalFs] {
        &self.locals
    }

    /// Mutable node-local access.
    pub fn locals_mut(&mut self) -> &mut [NodeLocalFs] {
        &mut self.locals
    }

    /// Open (optionally create) `path` from `node`.
    pub fn open(
        &mut self,
        node: NodeId,
        path: &str,
        create: bool,
        exclusive: bool,
        now: SimTime,
    ) -> Result<(FileHandle, SimTime), IoErr> {
        match self.resolve(path) {
            Tier::Pfs => {
                let (key, end) = self.pfs.open(node, path, create, exclusive, now)?;
                Ok((
                    FileHandle {
                        tier: Tier::Pfs,
                        key,
                    },
                    end,
                ))
            }
            Tier::NodeLocal(i) => {
                let (key, end) =
                    self.locals[i as usize].open(node, path, create, exclusive, now)?;
                Ok((
                    FileHandle {
                        tier: Tier::NodeLocal(i),
                        key,
                    },
                    end,
                ))
            }
        }
    }

    /// Close a handle.
    pub fn close(&mut self, node: NodeId, h: FileHandle, now: SimTime) -> SimTime {
        match h.tier {
            Tier::Pfs => self.pfs.close(node, h.key, now),
            Tier::NodeLocal(i) => self.locals[i as usize].close(node, h.key, now),
        }
    }

    /// Write a segment through a handle.
    pub fn write(
        &mut self,
        node: NodeId,
        h: FileHandle,
        offset: u64,
        seg: Segment,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        match h.tier {
            Tier::Pfs => self.pfs.write(node, h.key, offset, seg, now),
            Tier::NodeLocal(i) => self.locals[i as usize].write(node, h.key, offset, seg, now),
        }
    }

    /// Timing-only read through a handle.
    pub fn read_len(
        &mut self,
        node: NodeId,
        h: FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        match h.tier {
            Tier::Pfs => self.pfs.read_len(node, h.key, offset, len, now),
            Tier::NodeLocal(i) => self.locals[i as usize].read_len(node, h.key, offset, len, now),
        }
    }

    /// Materializing read through a handle.
    pub fn read_data(
        &mut self,
        node: NodeId,
        h: FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimTime), IoErr> {
        match h.tier {
            Tier::Pfs => self.pfs.read_data(node, h.key, offset, len, now),
            Tier::NodeLocal(i) => self.locals[i as usize].read_data(node, h.key, offset, len, now),
        }
    }

    /// Stat a path from a node.
    pub fn stat(
        &mut self,
        node: NodeId,
        path: &str,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        match self.resolve(path) {
            Tier::Pfs => self.pfs.stat(path, now),
            Tier::NodeLocal(i) => self.locals[i as usize].stat(node, path, now),
        }
    }

    /// Unlink a path from a node.
    pub fn unlink(&mut self, node: NodeId, path: &str, now: SimTime) -> Result<SimTime, IoErr> {
        match self.resolve(path) {
            Tier::Pfs => self.pfs.unlink(path, now),
            Tier::NodeLocal(i) => self.locals[i as usize].unlink(node, path, now),
        }
    }

    /// Fsync a handle.
    pub fn fsync(&mut self, _node: NodeId, h: FileHandle, now: SimTime) -> SimTime {
        match h.tier {
            Tier::Pfs => self.pfs.fsync(h.key, now),
            // Node-local tmpfs has nothing to sync.
            Tier::NodeLocal(_) => now + Dur::from_nanos(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> StorageSystem {
        StorageSystem::lassen(4, 11)
    }

    #[test]
    fn paths_route_to_the_right_tier() {
        let s = system();
        assert_eq!(s.resolve("/p/gpfs1/data/x.h5"), Tier::Pfs);
        assert_eq!(s.resolve("/dev/shm/x"), Tier::NodeLocal(0));
        assert_eq!(s.resolve("/home/user/file"), Tier::Pfs);
        assert_eq!(s.resolve("/dev/shmmy"), Tier::Pfs); // component-wise match
    }

    #[test]
    fn shm_handle_ops_do_not_touch_pfs() {
        let mut s = system();
        let (h, t) = s
            .open(NodeId(0), "/dev/shm/tmp.dat", true, false, SimTime::ZERO)
            .unwrap();
        assert_eq!(h.tier, Tier::NodeLocal(0));
        let meta_before = s.pfs().stats().meta_ops;
        let (_, t2) = s
            .write(NodeId(0), h, 0, Segment::Pattern { seed: 1, len: 4096 }, t)
            .unwrap();
        s.close(NodeId(0), h, t2);
        assert_eq!(s.pfs().stats().meta_ops, meta_before);
    }

    #[test]
    fn pfs_and_shm_same_basename_are_distinct_files() {
        let mut s = system();
        let (hp, t) = s
            .open(NodeId(0), "/p/gpfs1/f.bin", true, false, SimTime::ZERO)
            .unwrap();
        let (hs, t2) = s.open(NodeId(0), "/dev/shm/f.bin", true, false, t).unwrap();
        let (_, t3) = s
            .write(NodeId(0), hp, 0, Segment::Pattern { seed: 1, len: 100 }, t2)
            .unwrap();
        let (got_shm, _) = s.read_len(NodeId(0), hs, 0, 100, t3).unwrap();
        assert_eq!(got_shm, 0, "shm file must be empty");
    }

    #[test]
    fn fsync_cost_differs_by_tier() {
        let mut s = system();
        let (hp, t) = s
            .open(NodeId(0), "/p/gpfs1/f", true, false, SimTime::ZERO)
            .unwrap();
        let (hs, t1) = s.open(NodeId(0), "/dev/shm/f", true, false, t).unwrap();
        let (_, t2) = s
            .write(
                NodeId(0),
                hp,
                0,
                Segment::Pattern {
                    seed: 1,
                    len: 1 << 20,
                },
                t1,
            )
            .unwrap();
        let (_, t3) = s
            .write(
                NodeId(0),
                hs,
                0,
                Segment::Pattern {
                    seed: 1,
                    len: 1 << 20,
                },
                t2,
            )
            .unwrap();
        let pfs_sync = s.fsync(NodeId(0), hp, t3).since(t3);
        let shm_sync = s.fsync(NodeId(0), hs, t3).since(t3);
        assert!(pfs_sync > shm_sync * 10);
    }
}
