//! Node-local storage tiers: tmpfs (`/dev/shm`) and burst buffers.
//!
//! Each node owns an independent namespace — a file written to `/dev/shm`
//! on node 3 is invisible on node 5, exactly the property the paper's
//! Montage optimization exploits (intermediate files are produced and
//! consumed on the same node).
//!
//! Timing model: a per-node [`BandwidthChannel`] serializes access at the
//! tier's aggregate bandwidth with a per-op latency; there is no metadata
//! service, which is precisely why moving metadata-heavy workloads here wins
//! so dramatically in Figures 7 and 8.

use crate::err::IoErr;
use crate::file::{FileKey, FileStore, Segment};
use hpc_cluster::topology::NodeId;
use sim_core::units::GIB;
use sim_core::{BandwidthChannel, Dur, SimTime};

/// Parameters of a node-local tier.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLocalConfig {
    /// Mount point, e.g. "/dev/shm" or "/tmp".
    pub mount: String,
    /// Aggregate per-node bandwidth, bytes/second.
    pub bw: u64,
    /// Per-operation latency.
    pub latency: Dur,
    /// Per-node capacity in bytes.
    pub capacity: u64,
    /// Concurrent operations the controller sustains (reported in the
    /// node-local storage entity, Table VIII).
    pub parallel_ops: u32,
}

impl NodeLocalConfig {
    /// Lassen `/dev/shm`: 32 GiB/s, sub-µs latency, memory-backed
    /// (capacity bounded by node memory; Table VIII).
    pub fn lassen_shm(memory_bytes: u64) -> Self {
        NodeLocalConfig {
            mount: "/dev/shm".to_string(),
            bw: 32 * GIB,
            // Realistic VFS + tmpfs syscall path with first-touch page faults,
            // not raw memcpy: ~8 µs/op.
            latency: Dur::from_micros(8),
            capacity: memory_bytes / 2, // tmpfs default: half of RAM
            parallel_ops: 64,
        }
    }

    /// A local SSD burst-buffer tier at `/tmp`.
    pub fn local_ssd() -> Self {
        NodeLocalConfig {
            mount: "/tmp".to_string(),
            bw: 2 * GIB,
            latency: Dur::from_micros(20),
            capacity: 1536 * GIB,
            parallel_ops: 32,
        }
    }
}

/// One node's local file system instance.
#[derive(Debug)]
pub struct NodeLocalFs {
    cfg: NodeLocalConfig,
    stores: Vec<FileStore>,
    channels: Vec<BandwidthChannel>,
    ops: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl NodeLocalFs {
    /// Build the tier across `n_nodes` nodes.
    pub fn new(cfg: NodeLocalConfig, n_nodes: usize) -> Self {
        NodeLocalFs {
            stores: (0..n_nodes)
                .map(|_| FileStore::with_capacity(cfg.capacity))
                .collect(),
            channels: (0..n_nodes)
                .map(|_| BandwidthChannel::new(cfg.bw, cfg.latency))
                .collect(),
            ops: 0,
            bytes_read: 0,
            bytes_written: 0,
            cfg,
        }
    }

    /// The tier's configuration.
    pub fn config(&self) -> &NodeLocalConfig {
        &self.cfg
    }

    /// Total operations performed across nodes.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes read / written across nodes.
    pub fn bytes_moved(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// The namespace of one node.
    pub fn store(&self, node: NodeId) -> &FileStore {
        &self.stores[node.0 as usize]
    }

    /// Mutable namespace of one node (for preload passes).
    pub fn store_mut(&mut self, node: NodeId) -> &mut FileStore {
        &mut self.stores[node.0 as usize]
    }

    /// Charge the node's channel for `bytes` without touching any file —
    /// used by preload passes that install content via snapshots but still
    /// need the transfer time accounted.
    pub fn touch(&mut self, node: NodeId, bytes: u64, now: SimTime) -> SimTime {
        self.bytes_written += bytes;
        self.charge(node, bytes, now)
    }

    fn charge(&mut self, node: NodeId, bytes: u64, now: SimTime) -> SimTime {
        self.ops += 1;
        self.channels[node.0 as usize].transfer(now, bytes)
    }

    /// Open or create; node-local metadata is a memory operation — the only
    /// cost is the channel latency.
    pub fn open(
        &mut self,
        node: NodeId,
        path: &str,
        create: bool,
        exclusive: bool,
        now: SimTime,
    ) -> Result<(FileKey, SimTime), IoErr> {
        let end = self.charge(node, 0, now);
        let store = &mut self.stores[node.0 as usize];
        let key = if create {
            store.create(path, exclusive)?
        } else {
            store.lookup(path).ok_or(IoErr::NotFound)?
        };
        if store.get(key)?.is_dir {
            return Err(IoErr::IsDir);
        }
        Ok((key, end))
    }

    /// Close: free.
    pub fn close(&mut self, _node: NodeId, _key: FileKey, now: SimTime) -> SimTime {
        now
    }

    /// Stat.
    pub fn stat(
        &mut self,
        node: NodeId,
        path: &str,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        let end = self.charge(node, 0, now);
        let store = &self.stores[node.0 as usize];
        let key = store.lookup(path).ok_or(IoErr::NotFound)?;
        Ok((store.size_of(key)?, end))
    }

    /// Unlink.
    pub fn unlink(&mut self, node: NodeId, path: &str, now: SimTime) -> Result<SimTime, IoErr> {
        let end = self.charge(node, 0, now);
        self.stores[node.0 as usize].unlink(path)?;
        Ok(end)
    }

    /// Write a segment.
    pub fn write(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        seg: Segment,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        let bytes = seg.len();
        let n = self.stores[node.0 as usize].write(key, offset, seg)?;
        self.bytes_written += bytes;
        let end = self.charge(node, bytes, now);
        Ok((n, end))
    }

    /// Timing-only read.
    pub fn read_len(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        let got = self.stores[node.0 as usize].readable_len(key, offset, len)?;
        self.bytes_read += got;
        let end = self.charge(node, got, now);
        Ok((got, end))
    }

    /// Materializing read.
    pub fn read_data(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimTime), IoErr> {
        let data = self.stores[node.0 as usize].read(key, offset, len)?;
        self.bytes_read += data.len() as u64;
        let end = self.charge(node, data.len() as u64, now);
        Ok((data, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::{KIB, MIB};

    fn shm() -> NodeLocalFs {
        NodeLocalFs::new(NodeLocalConfig::lassen_shm(256 * GIB), 2)
    }

    #[test]
    fn namespaces_are_per_node() {
        let mut fs = shm();
        let (_, t) = fs
            .open(NodeId(0), "/dev/shm/x", true, false, SimTime::ZERO)
            .unwrap();
        // Node 1 cannot see node 0's file.
        assert_eq!(
            fs.open(NodeId(1), "/dev/shm/x", false, false, t)
                .unwrap_err(),
            IoErr::NotFound
        );
    }

    #[test]
    fn shm_is_orders_of_magnitude_faster_than_pfs_small_io() {
        let mut fs = shm();
        let (k, t) = fs
            .open(NodeId(0), "/dev/shm/f", true, false, SimTime::ZERO)
            .unwrap();
        let mut t = t;
        let start = t;
        for i in 0..1000u64 {
            let (_, e) = fs
                .write(
                    NodeId(0),
                    k,
                    i * 4096,
                    Segment::Pattern { seed: 1, len: 4096 },
                    t,
                )
                .unwrap();
            t = e;
        }
        let bw = t.since(start).bandwidth(1000 * 4096);
        // 4 KiB per ~8 µs ≈ 480 MiB/s — versus ~40 MiB/s for the same
        // access pattern on the PFS (an order of magnitude apart).
        assert!(bw > 256.0 * MIB as f64, "bw {bw}");
    }

    #[test]
    fn capacity_is_per_node() {
        let mut cfg = NodeLocalConfig::lassen_shm(256 * GIB);
        cfg.capacity = 1 * MIB;
        let mut fs = NodeLocalFs::new(cfg, 2);
        let (k, t) = fs
            .open(NodeId(0), "/dev/shm/f", true, false, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            fs.write(
                NodeId(0),
                k,
                0,
                Segment::Pattern {
                    seed: 1,
                    len: 2 * MIB
                },
                t
            )
            .unwrap_err(),
            IoErr::NoSpace
        );
        // Node 1 has its own budget.
        let (k1, t1) = fs.open(NodeId(1), "/dev/shm/f", true, false, t).unwrap();
        assert!(fs
            .write(
                NodeId(1),
                k1,
                0,
                Segment::Pattern {
                    seed: 1,
                    len: 512 * KIB
                },
                t1
            )
            .is_ok());
    }

    #[test]
    fn read_back_what_was_written() {
        let mut fs = shm();
        let (k, t) = fs
            .open(NodeId(0), "/dev/shm/d", true, false, SimTime::ZERO)
            .unwrap();
        let (_, t2) = fs
            .write(
                NodeId(0),
                k,
                0,
                Segment::Bytes(std::sync::Arc::new(b"payload".to_vec())),
                t,
            )
            .unwrap();
        let (data, _) = fs.read_data(NodeId(0), k, 0, 7, t2).unwrap();
        assert_eq!(data, b"payload");
    }

    #[test]
    fn stat_unlink_cycle() {
        let mut fs = shm();
        let (k, t) = fs
            .open(NodeId(0), "/dev/shm/s", true, false, SimTime::ZERO)
            .unwrap();
        let (_, t2) = fs
            .write(NodeId(0), k, 0, Segment::Pattern { seed: 9, len: 123 }, t)
            .unwrap();
        let (sz, t3) = fs.stat(NodeId(0), "/dev/shm/s", t2).unwrap();
        assert_eq!(sz, 123);
        let t4 = fs.unlink(NodeId(0), "/dev/shm/s", t3).unwrap();
        assert!(fs.stat(NodeId(0), "/dev/shm/s", t4).is_err());
    }
}
