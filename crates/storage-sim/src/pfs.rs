//! A GPFS-like parallel file system simulator.
//!
//! The model reproduces the mechanisms the paper's characterization hinges
//! on:
//!
//! * **Striped data servers** — requests are split into `block_size` stripes
//!   routed to a pool of NSD servers; large transfers parallelize across
//!   servers while small transfers are dominated by per-op overhead (CM1's
//!   4 KiB writes at ~64 MiB/s vs 64 GiB/s aggregate large reads).
//! * **Metadata servers with queueing** — every open/create/close/stat is a
//!   serviced request on a small MDS pool, so metadata storms (CosmoFlow's
//!   collective HDF5 opens) saturate and dominate I/O time.
//! * **Distributed lock tokens** — a data operation on a file opened by more
//!   than one node pays a token-transfer cost whenever the previous operation
//!   came from a different node. Single-writer files keep their token (CM1),
//!   file-per-process workloads never share (HACC), while interleaved shared
//!   access (CosmoFlow over MPI-IO) thrashes.
//! * **Per-node client write-behind cache** — small writes absorb at memory
//!   speed and drain asynchronously; reads of data just written on the same
//!   node hit the cache (Montage's transient 600–1300 MiB/s spikes).
//! * **Service-time jitter** — deterministic pseudo-random variation that
//!   spreads per-rank bandwidth the way HACC's Figure 2(c) shows.

use crate::err::IoErr;
use crate::faults::FaultPlan;
use crate::file::{FileKey, FileStore, Segment};
use crate::tenancy::InterferenceSchedule;
use hpc_cluster::topology::NodeId;
use sim_core::units::{GIB, MIB, TIB};
use sim_core::{BandwidthChannel, DetRng, Dur, ServerPool, ServerQueue, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tunable parameters of the parallel file system (the knobs the paper's
/// optimizer reconfigures live here and in the MPI-IO layer).
#[derive(Debug, Clone, PartialEq)]
pub struct GpfsConfig {
    /// Number of NSD data servers.
    pub n_data_servers: usize,
    /// Per-server streaming bandwidth, bytes/second.
    pub server_bw: u64,
    /// Fixed per-request service overhead at a data server.
    pub server_op_overhead: Dur,
    /// Stripe/block size: requests are split at this granularity. This is
    /// the "stripe size" knob of §IV-D3.
    pub block_size: u64,
    /// Number of metadata servers.
    pub n_meta_servers: usize,
    /// Service time of one metadata operation.
    pub meta_op_cost: Dur,
    /// Whether byte-range lock tokens are enforced (the ROMIO/GPFS
    /// "locking" knob of §IV-D3).
    pub lock_enabled: bool,
    /// Cost of transferring a file's lock token between nodes.
    pub lock_cost: Dur,
    /// Per-node client write-behind cache capacity; 0 disables caching.
    pub client_cache_bytes: u64,
    /// Client-side memory bandwidth for cache hits.
    pub client_mem_bw: u64,
    /// Fixed client/syscall overhead per operation.
    pub client_overhead: Dur,
    /// Total file-system capacity in bytes.
    pub capacity: u64,
    /// Multiplicative service-time jitter amplitude (0 = deterministic).
    pub jitter_amp: f64,
}

impl GpfsConfig {
    /// Calibrated to the paper's testbed (Table IX: 64 GiB/s with 32-node
    /// IOR, >2000 physical disks behind ~96 effective servers, 24 PiB).
    pub fn lassen() -> Self {
        GpfsConfig {
            n_data_servers: 96,
            server_bw: 700 * MIB,
            server_op_overhead: Dur::from_micros(45),
            block_size: 8 * MIB,
            n_meta_servers: 8,
            meta_op_cost: Dur::from_micros(40),
            lock_enabled: true,
            lock_cost: Dur::from_micros(400),
            client_cache_bytes: 256 * MIB,
            client_mem_bw: 8 * GIB,
            client_overhead: Dur::from_micros(12),
            capacity: 24 * 1024 * TIB,
            jitter_amp: 0.25,
        }
    }

    /// A small, fast-to-simulate configuration for unit tests.
    pub fn tiny() -> Self {
        GpfsConfig {
            n_data_servers: 4,
            server_bw: 100 * MIB,
            server_op_overhead: Dur::from_micros(50),
            block_size: 1 * MIB,
            n_meta_servers: 1,
            meta_op_cost: Dur::from_micros(50),
            lock_enabled: true,
            lock_cost: Dur::from_micros(200),
            client_cache_bytes: 4 * MIB,
            client_mem_bw: 4 * GIB,
            client_overhead: Dur::from_micros(10),
            capacity: 64 * GIB,
            jitter_amp: 0.0,
        }
    }
}

/// Aggregate counters the shared-storage entity (Table IX) reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PfsStats {
    /// Bytes read from servers (cache hits excluded).
    pub bytes_read: u64,
    /// Bytes written (including cached writes).
    pub bytes_written: u64,
    /// Data operations served.
    pub data_ops: u64,
    /// Metadata operations served.
    pub meta_ops: u64,
    /// Reads satisfied from the client cache.
    pub cache_hits: u64,
    /// Lock-token transfers performed.
    pub token_transfers: u64,
    /// Transient errors injected by the active fault plan.
    pub transient_errors: u64,
    /// Stripes rerouted away from servers in an outage window.
    pub rerouted_stripes: u64,
    /// Bytes carried by rerouted stripes.
    pub rerouted_bytes: u64,
    /// Metadata operations serviced under an MDS brownout.
    pub browned_meta_ops: u64,
    /// Data transfers whose stripes were stretched by competing tenants.
    pub contended_data_ops: u64,
    /// Metadata operations stretched by competing tenants.
    pub contended_meta_ops: u64,
    /// Total extra service time attributable to tenant contention, in
    /// nanoseconds (the "noisy neighbor tax" the fleet reports surface).
    pub tenant_delay_nanos: u64,
}

#[derive(Debug, Default)]
struct NodeCache {
    /// Bytes of each file resident in this node's cache.
    files: HashMap<FileKey, u64>,
    /// FIFO eviction order.
    order: VecDeque<FileKey>,
    used: u64,
}

impl NodeCache {
    fn insert(&mut self, key: FileKey, bytes: u64, cap: u64) {
        if cap == 0 || bytes > cap {
            return;
        }
        let entry = self.files.entry(key).or_insert_with(|| {
            self.order.push_back(key);
            0
        });
        *entry += bytes;
        self.used += bytes;
        while self.used > cap {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(b) = self.files.remove(&victim) {
                self.used -= b.min(self.used);
            }
        }
    }

    fn holds(&self, key: FileKey, bytes: u64) -> bool {
        self.files.get(&key).is_some_and(|&b| b >= bytes)
    }

    fn forget(&mut self, key: FileKey) {
        if let Some(b) = self.files.remove(&key) {
            self.used -= b.min(self.used);
        }
    }
}

/// The GPFS-like parallel file system.
pub struct GpfsSim {
    cfg: GpfsConfig,
    store: FileStore,
    data_servers: ServerPool,
    meta_servers: ServerPool,
    nics: Vec<BandwidthChannel>,
    lock_queues: HashMap<FileKey, ServerQueue>,
    /// Which node last wrote each (file, block): byte-range write tokens at
    /// block granularity.
    block_writer: HashMap<(FileKey, u64), NodeId>,
    /// Nodes that currently have each file open.
    openers: HashMap<FileKey, HashSet<NodeId>>,
    caches: Vec<NodeCache>,
    /// Per-node write-behind backlog: (flush completion, bytes) entries.
    pending_flush: Vec<VecDeque<(SimTime, u64)>>,
    /// Per-node running sum of backlog bytes.
    pending_bytes: Vec<u64>,
    /// Completion time of the last asynchronous flush per file.
    flush_horizon: HashMap<FileKey, SimTime>,
    rng: DetRng,
    /// Active fault schedule; `None` means the fault plane is fully inert
    /// (no extra RNG draws, bit-identical to pre-fault behavior).
    fault_plan: Option<FaultPlan>,
    /// Dedicated RNG stream for transient-error draws, so activating a
    /// plan never perturbs the service-jitter stream.
    fault_rng: DetRng,
    /// Competing-tenant load schedule; `None` means a dedicated machine
    /// (no extra draws, bit-identical to pre-tenancy behavior).
    interference: Option<InterferenceSchedule>,
    /// Bytes rerouted *away* from each server while it was down — the
    /// per-server outage impact the analyzer reports.
    rerouted_per_server: Vec<u64>,
    stats: PfsStats,
}

impl GpfsSim {
    /// Build the file system serving `n_nodes` clients whose NICs have the
    /// given bandwidth and latency.
    pub fn new(cfg: GpfsConfig, n_nodes: usize, nic_bw: u64, nic_latency: Dur, seed: u64) -> Self {
        GpfsSim {
            store: FileStore::with_capacity(cfg.capacity),
            data_servers: ServerPool::new(cfg.n_data_servers),
            meta_servers: ServerPool::new(cfg.n_meta_servers),
            nics: (0..n_nodes)
                .map(|_| BandwidthChannel::new(nic_bw, nic_latency))
                .collect(),
            lock_queues: HashMap::new(),
            block_writer: HashMap::new(),
            openers: HashMap::new(),
            caches: (0..n_nodes).map(|_| NodeCache::default()).collect(),
            pending_flush: (0..n_nodes).map(|_| VecDeque::new()).collect(),
            pending_bytes: vec![0; n_nodes],
            flush_horizon: HashMap::new(),
            rng: DetRng::for_component(seed, "gpfs"),
            fault_plan: None,
            fault_rng: DetRng::for_component(seed, "faults"),
            interference: None,
            rerouted_per_server: vec![0; cfg.n_data_servers],
            stats: PfsStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpfsConfig {
        &self.cfg
    }

    /// Replace the configuration (used by the optimizer's reconfiguration
    /// passes). Capacity changes take effect in the store — shrinking below
    /// the bytes already stored is rejected with `NoSpace`. Server pools
    /// are rebuilt when their counts change; queues are preserved otherwise.
    pub fn set_config(&mut self, cfg: GpfsConfig) -> Result<(), IoErr> {
        self.store.set_capacity(Some(cfg.capacity))?;
        if cfg.n_data_servers != self.cfg.n_data_servers {
            self.data_servers = ServerPool::new(cfg.n_data_servers);
            self.rerouted_per_server = vec![0; cfg.n_data_servers];
        }
        if cfg.n_meta_servers != self.cfg.n_meta_servers {
            self.meta_servers = ServerPool::new(cfg.n_meta_servers);
        }
        self.cfg = cfg;
        Ok(())
    }

    /// Install (or clear, with an empty plan) the fault schedule. An empty
    /// plan leaves the simulator bit-identical to one that never had a
    /// plan installed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
    }

    /// The active fault plan, if one is installed.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Install (or clear, with an empty schedule) the competing-tenant
    /// load schedule. An empty schedule leaves the simulator bit-identical
    /// to one that never had a schedule installed — this is what lets a
    /// single-tenant fleet reproduce dedicated-run results exactly.
    pub fn set_interference(&mut self, schedule: InterferenceSchedule) {
        self.interference = if schedule.is_empty() {
            None
        } else {
            Some(schedule)
        };
    }

    /// The active interference schedule, if one is installed.
    pub fn interference(&self) -> Option<&InterferenceSchedule> {
        self.interference.as_ref()
    }

    /// Bytes rerouted away from each NSD server while it was in an outage
    /// window (indexed by server; the per-server outage impact).
    pub fn rerouted_by_server(&self) -> &[u64] {
        &self.rerouted_per_server
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &PfsStats {
        &self.stats
    }

    /// The namespace, for assertions and dataset inspection.
    pub fn store(&self) -> &FileStore {
        &self.store
    }

    /// Mutable namespace access (used by preload passes that materialize
    /// datasets without simulating the producer application).
    pub fn store_mut(&mut self) -> &mut FileStore {
        &mut self.store
    }

    fn jittered(&mut self, d: Dur) -> Dur {
        if self.cfg.jitter_amp <= 0.0 {
            d
        } else {
            Dur::from_secs_f64(d.as_secs_f64() * self.rng.jitter(self.cfg.jitter_amp))
        }
    }

    /// Draw a transient data-path fault, if the active plan injects them.
    /// Runs before any store mutation so a retried write never lands twice.
    fn transient_data_fault(&mut self) -> Result<(), IoErr> {
        let rate = self.fault_plan.as_ref().map_or(0.0, |p| p.data_error_rate);
        if rate > 0.0 && self.fault_rng.chance(rate) {
            self.stats.transient_errors += 1;
            return Err(IoErr::TransientIo);
        }
        Ok(())
    }

    /// Draw a transient metadata-path fault, if the active plan injects them.
    fn transient_meta_fault(&mut self) -> Result<(), IoErr> {
        let rate = self.fault_plan.as_ref().map_or(0.0, |p| p.meta_error_rate);
        if rate > 0.0 && self.fault_rng.chance(rate) {
            self.stats.transient_errors += 1;
            return Err(IoErr::ServerUnavailable);
        }
        Ok(())
    }

    fn meta_service(&mut self, now: SimTime) -> SimTime {
        self.stats.meta_ops += 1;
        let mut svc = self.jittered(self.cfg.meta_op_cost);
        let slow = self
            .fault_plan
            .as_ref()
            .map_or(1.0, |p| p.mds_slowdown(now));
        if slow > 1.0 {
            svc = Dur::from_secs_f64(svc.as_secs_f64() * slow);
            self.stats.browned_meta_ops += 1;
        }
        let tenant = self
            .interference
            .as_ref()
            .map_or(1.0, |i| i.meta_factor(now));
        if tenant > 1.0 {
            let base = svc.as_secs_f64();
            svc = Dur::from_secs_f64(base * tenant);
            self.stats.contended_meta_ops += 1;
            self.stats.tenant_delay_nanos += (base * (tenant - 1.0) * 1e9) as u64;
        }
        let (_, end) = self.meta_servers.serve(now, svc);
        end
    }

    /// One bare metadata operation (directory scan, lookup miss, etc.).
    pub fn meta_op(&mut self, now: SimTime) -> SimTime {
        self.meta_service(now + self.cfg.client_overhead)
    }

    /// Open (optionally creating) a file. Costs one MDS op for the lookup
    /// plus one more when the file is created.
    pub fn open(
        &mut self,
        node: NodeId,
        path: &str,
        create: bool,
        exclusive: bool,
        now: SimTime,
    ) -> Result<(FileKey, SimTime), IoErr> {
        self.transient_meta_fault()?;
        let t = now + self.cfg.client_overhead;
        let t = self.meta_service(t);
        let existing = self.store.lookup(path);
        let key = match (existing, create) {
            (Some(k), _) if exclusive && create => {
                // Paid the lookup, then fail like a real MDS round-trip.
                let _ = k;
                return Err(IoErr::AlreadyExists);
            }
            (Some(k), _) => k,
            (None, true) => {
                let k = self.store.create(path, exclusive)?;
                let t_create = self.meta_service(t);
                return self.finish_open(node, k, t_create).map(|e| (k, e));
            }
            (None, false) => return Err(IoErr::NotFound),
        };
        if self.store.get(key)?.is_dir {
            return Err(IoErr::IsDir);
        }
        self.finish_open(node, key, t).map(|e| (key, e))
    }

    fn finish_open(&mut self, node: NodeId, key: FileKey, end: SimTime) -> Result<SimTime, IoErr> {
        self.openers.entry(key).or_default().insert(node);
        Ok(end)
    }

    /// Close a file: one MDS op. Write-behind flushes keep draining in the
    /// background (GPFS semantics); only `fsync` waits for them. Closing
    /// releases the node's cache tokens for the file, so a later reader —
    /// even on the same node — goes back to the servers (this is why the
    /// paper's intermediate-file re-reads averaged only ~5 MB/s per request
    /// while writes enjoyed write-behind at ~91 MB/s, Fig. 5c).
    pub fn close(&mut self, node: NodeId, key: FileKey, now: SimTime) -> SimTime {
        if let Some(set) = self.openers.get_mut(&key) {
            set.remove(&node);
        }
        self.caches[node.0 as usize].forget(key);
        self.meta_service(now + self.cfg.client_overhead)
    }

    /// Stat: one MDS op.
    pub fn stat(&mut self, path: &str, now: SimTime) -> Result<(u64, SimTime), IoErr> {
        self.transient_meta_fault()?;
        let end = self.meta_service(now + self.cfg.client_overhead);
        let key = self.store.lookup(path).ok_or(IoErr::NotFound)?;
        Ok((self.store.size_of(key)?, end))
    }

    /// Unlink: one MDS op.
    pub fn unlink(&mut self, path: &str, now: SimTime) -> Result<SimTime, IoErr> {
        self.transient_meta_fault()?;
        let end = self.meta_service(now + self.cfg.client_overhead);
        if let Some(key) = self.store.lookup(path) {
            self.block_writer.retain(|(k, _), _| *k != key);
            self.lock_queues.remove(&key);
            self.openers.remove(&key);
            for c in &mut self.caches {
                c.forget(key);
            }
        }
        self.store.unlink(path)?;
        Ok(end)
    }

    /// Whether the file is currently open on more than one node.
    fn is_shared(&self, key: FileKey) -> bool {
        self.openers.get(&key).is_some_and(|s| s.len() > 1)
    }

    /// Acquire byte-range lock tokens for a data op covering
    /// `[offset, offset+bytes)`. GPFS tokens are tracked at block
    /// granularity: a *write* to a block last written by another node, or a
    /// *read* of a block with a foreign dirty writer, transfers the token
    /// (serialized on the file's lock queue). Disjoint-region parallel
    /// writers therefore only conflict at block boundaries, while
    /// interleaved small shared accesses thrash.
    fn acquire_token(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        bytes: u64,
        is_write: bool,
        now: SimTime,
    ) -> SimTime {
        if !self.cfg.lock_enabled || !self.is_shared(key) || bytes == 0 {
            return now;
        }
        let block = self.cfg.block_size.max(1);
        let first = offset / block;
        let last = (offset + bytes - 1) / block;
        let mut transfers = 0u64;
        for b in first..=last {
            match self.block_writer.get(&(key, b)) {
                Some(&holder) if holder == node => {}
                Some(_) => {
                    // Foreign dirty block: revoke.
                    transfers += 1;
                    if is_write {
                        self.block_writer.insert((key, b), node);
                    } else {
                        self.block_writer.remove(&(key, b));
                    }
                }
                None => {
                    if is_write {
                        // First writer acquires the range: one transfer.
                        transfers += 1;
                        self.block_writer.insert((key, b), node);
                    }
                }
            }
        }
        if transfers == 0 {
            return now;
        }
        self.stats.token_transfers += transfers;
        let svc = self.jittered(self.cfg.lock_cost) * transfers;
        let q = self.lock_queues.entry(key).or_default();
        let (_, end) = q.serve(now, svc);
        end
    }

    /// Move `bytes` through the node's NIC and stripe them over the data
    /// servers; returns completion time. Under a fault plan, stripes whose
    /// home server is in an outage window are rerouted to the next
    /// surviving server (the survivors absorb the load through queueing
    /// contention); brownouts and straggler nodes inflate stripe service
    /// time. Fails with `ServerUnavailable` only when every server is down.
    fn stripe_transfer(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        bytes: u64,
        now: SimTime,
    ) -> Result<SimTime, IoErr> {
        let nic = &mut self.nics[node.0 as usize];
        let after_nic = nic.transfer(now, bytes);
        let n = self.cfg.n_data_servers.max(1);
        // Precompute the fault picture at arrival time: the outage set and
        // the combined brownout/straggler slowdown are constant across the
        // stripes of one transfer.
        let (slow, down) = match &self.fault_plan {
            Some(p) => (
                p.data_slowdown(after_nic) * p.node_slowdown(node.0),
                (0..n)
                    .map(|s| p.server_down(s as u32, after_nic))
                    .collect::<Vec<bool>>(),
            ),
            None => (1.0, Vec::new()),
        };
        if !down.is_empty() && down.iter().all(|&d| d) {
            return Err(IoErr::ServerUnavailable);
        }
        // Competing-tenant stretch, like the fault picture constant across
        // the stripes of one transfer (evaluated at arrival time).
        let tenant = self
            .interference
            .as_ref()
            .map_or(1.0, |i| i.data_factor(after_nic));
        if tenant > 1.0 {
            self.stats.contended_data_ops += 1;
        }
        let mut end = after_nic;
        let block = self.cfg.block_size.max(1);
        let mut off = offset;
        let mut left = bytes;
        while left > 0 {
            let in_block = (block - (off % block)).min(left);
            let stripe_idx = (key.0 + off / block) as usize;
            let svc = self.cfg.server_op_overhead + Dur::for_transfer(in_block, self.cfg.server_bw);
            let mut svc = self.jittered(svc);
            if slow > 1.0 {
                svc = Dur::from_secs_f64(svc.as_secs_f64() * slow);
            }
            if tenant > 1.0 {
                let base = svc.as_secs_f64();
                svc = Dur::from_secs_f64(base * tenant);
                self.stats.tenant_delay_nanos += (base * (tenant - 1.0) * 1e9) as u64;
            }
            let mut target = stripe_idx;
            if !down.is_empty() && down[target % n] {
                let home = target % n;
                let probe = (1..n)
                    .find(|&p| !down[(target + p) % n])
                    .expect("a live server exists");
                target += probe;
                self.rerouted_per_server[home] += in_block;
                self.stats.rerouted_stripes += 1;
                self.stats.rerouted_bytes += in_block;
            }
            let (_, stripe_end) = self.data_servers.serve_on(target, after_nic, svc);
            end = end.max(stripe_end);
            off += in_block;
            left -= in_block;
        }
        Ok(end)
    }

    /// Write a segment. Small writes absorb into the node's write-behind
    /// cache (memory speed) and drain asynchronously; writes larger than the
    /// cache go straight to the servers.
    pub fn write(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        seg: Segment,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        self.transient_data_fault()?;
        let bytes = seg.len();
        let n = self.store.write(key, offset, seg)?;
        self.stats.bytes_written += bytes;
        self.stats.data_ops += 1;
        let t0 = now + self.cfg.client_overhead;
        let locked = self.acquire_token(node, key, offset, bytes, true, t0);
        // Write-behind absorbs only while the node's flush backlog fits in
        // the cache; a saturated cache forces write-through (this is what
        // throttles HACC's 632 MiB/rank checkpoints down to server speed).
        let ni = node.0 as usize;
        while let Some(&(end, b)) = self.pending_flush[ni].front() {
            if end <= now {
                self.pending_flush[ni].pop_front();
                self.pending_bytes[ni] -= b.min(self.pending_bytes[ni]);
            } else {
                break;
            }
        }
        let cacheable = self.cfg.client_cache_bytes > 0
            && bytes <= self.cfg.client_cache_bytes
            && self.pending_bytes[ni] + bytes <= self.cfg.client_cache_bytes;
        if cacheable {
            // Absorb at memory speed; schedule the drain in the background.
            let absorb_end = locked + Dur::for_transfer(bytes, self.cfg.client_mem_bw);
            let flush_end = self.stripe_transfer(node, key, offset, bytes, absorb_end)?;
            let horizon = self.flush_horizon.entry(key).or_insert(SimTime::ZERO);
            *horizon = (*horizon).max(flush_end);
            self.pending_flush[ni].push_back((flush_end, bytes));
            self.pending_bytes[ni] += bytes;
            self.caches[node.0 as usize].insert(key, bytes, self.cfg.client_cache_bytes);
            Ok((n, absorb_end))
        } else {
            let end = self.stripe_transfer(node, key, offset, bytes, locked)?;
            Ok((n, end))
        }
    }

    /// Convenience: write a synthetic pattern of `len` bytes.
    pub fn write_pattern(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        len: u64,
        seed: u64,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        self.write(node, key, offset, Segment::Pattern { seed, len }, now)
    }

    fn read_timing(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        got: u64,
        now: SimTime,
    ) -> Result<SimTime, IoErr> {
        self.stats.data_ops += 1;
        let t0 = now + self.cfg.client_overhead;
        if got == 0 {
            return Ok(t0);
        }
        if self.caches[node.0 as usize].holds(key, got) {
            // Client cache hit: memory speed, no server involvement.
            self.stats.cache_hits += 1;
            return Ok(t0 + Dur::for_transfer(got, self.cfg.client_mem_bw));
        }
        self.stats.bytes_read += got;
        let locked = self.acquire_token(node, key, offset, got, false, t0);
        self.stripe_transfer(node, key, offset, got, locked)
    }

    /// Timing-only read: returns bytes available and completion time.
    pub fn read_len(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(u64, SimTime), IoErr> {
        self.transient_data_fault()?;
        let got = self.store.readable_len(key, offset, len)?;
        let end = self.read_timing(node, key, offset, got, now)?;
        Ok((got, end))
    }

    /// Materializing read.
    pub fn read_data(
        &mut self,
        node: NodeId,
        key: FileKey,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimTime), IoErr> {
        self.transient_data_fault()?;
        let data = self.store.read(key, offset, len)?;
        let end = self.read_timing(node, key, offset, data.len() as u64, now)?;
        Ok((data, end))
    }

    /// Wait for this file's outstanding write-behind flushes, then one MDS op.
    pub fn fsync(&mut self, key: FileKey, now: SimTime) -> SimTime {
        let start = now.max(
            self.flush_horizon
                .get(&key)
                .copied()
                .unwrap_or(SimTime::ZERO),
        );
        self.meta_service(start + self.cfg.client_overhead)
    }

    /// Observed aggregate data-server bandwidth ceiling, bytes/second.
    pub fn aggregate_bw(&self) -> u64 {
        self.cfg.server_bw * self.cfg.n_data_servers as u64
    }
}

/// Calibration helper: peak bandwidth of `n` servers at `bw` each. Used by
/// the Table IX harness to report "Max I/O BW" the way IOR would measure it.
pub fn peak_bandwidth(cfg: &GpfsConfig) -> u64 {
    cfg.server_bw * cfg.n_data_servers as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::KIB;

    fn sim(cfg: GpfsConfig) -> GpfsSim {
        GpfsSim::new(cfg, 4, 1 * GIB, Dur::from_micros(2), 7)
    }

    #[test]
    fn open_creates_and_costs_metadata() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, end) = fs
            .open(NodeId(0), "/p/gpfs1/a.bin", true, false, SimTime::ZERO)
            .unwrap();
        assert!(end > SimTime::ZERO);
        assert_eq!(fs.stats().meta_ops, 2); // lookup + create
        let (k2, _) = fs
            .open(NodeId(1), "/p/gpfs1/a.bin", false, false, end)
            .unwrap();
        assert_eq!(k, k2);
        assert_eq!(fs.stats().meta_ops, 3);
    }

    #[test]
    fn open_missing_fails_but_still_costs_lookup() {
        let mut fs = sim(GpfsConfig::tiny());
        let r = fs.open(NodeId(0), "/p/gpfs1/nope", false, false, SimTime::ZERO);
        assert_eq!(r.unwrap_err(), IoErr::NotFound);
        assert_eq!(fs.stats().meta_ops, 1);
    }

    #[test]
    fn small_write_absorbs_into_cache_and_read_hits() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let (n, wend) = fs.write_pattern(NodeId(0), k, 0, 64 * KIB, 1, t).unwrap();
        assert_eq!(n, 64 * KIB);
        // Cached write is much faster than a synchronous 64 KiB PFS write:
        // memory absorb ≈ 16 µs vs server path ≈ 50 µs + transfer.
        let absorb = wend.since(t);
        assert!(absorb < Dur::from_micros(200), "absorb took {absorb}");
        // Same-node read hits the cache.
        let hits_before = fs.stats().cache_hits;
        let (_, rend) = fs.read_len(NodeId(0), k, 0, 64 * KIB, wend).unwrap();
        assert_eq!(fs.stats().cache_hits, hits_before + 1);
        assert!(rend.since(wend) < Dur::from_micros(100));
        // Remote read misses it and pays the server path.
        let (_, rend2) = fs.read_len(NodeId(1), k, 0, 64 * KIB, wend).unwrap();
        assert!(rend2.since(wend) > Dur::from_micros(100));
    }

    #[test]
    fn large_write_bypasses_cache_and_stripes() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 1 * MIB;
        let mut fs = sim(cfg);
        let (k, t) = fs
            .open(NodeId(0), "/big", true, false, SimTime::ZERO)
            .unwrap();
        // 8 MiB write at 1 MiB blocks: 8 stripes over 4 servers → 2 rounds.
        let (_, end) = fs.write_pattern(NodeId(0), k, 0, 8 * MIB, 1, t).unwrap();
        let elapsed = end.since(t).as_secs_f64();
        // Server-side: 2 sequential MiB per server at 100 MiB/s ≈ 20 ms,
        // NIC: 8 MiB at 1 GiB/s ≈ 8 ms (pipelined before servers).
        assert!(elapsed > 0.015, "too fast: {elapsed}");
        assert!(elapsed < 0.1, "too slow: {elapsed}");
    }

    #[test]
    fn small_ops_are_overhead_dominated() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0; // force synchronous writes
        let mut fs = sim(cfg);
        let (k, mut t) = fs
            .open(NodeId(0), "/log", true, false, SimTime::ZERO)
            .unwrap();
        let start = t;
        for i in 0..100u64 {
            let (_, end) = fs
                .write_pattern(NodeId(0), k, i * 4096, 4096, 1, t)
                .unwrap();
            t = end;
        }
        let bw = t.since(start).bandwidth(100 * 4096);
        // 4 KiB per ~100 µs ≈ 40 MiB/s: far below the 400 MiB/s aggregate.
        assert!(bw < 80.0 * MIB as f64, "bw {bw}");
    }

    #[test]
    fn token_transfers_only_on_cross_node_sharing() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let mut fs = sim(cfg);
        let (k, t0) = fs
            .open(NodeId(0), "/shared", true, false, SimTime::ZERO)
            .unwrap();
        let (_, t1) = fs.open(NodeId(1), "/shared", false, false, t0).unwrap();
        // Node 0 writes repeatedly: one transfer (initial grab), then none.
        let (_, t2) = fs.write_pattern(NodeId(0), k, 0, 4096, 1, t1).unwrap();
        let (_, t3) = fs.write_pattern(NodeId(0), k, 4096, 4096, 1, t2).unwrap();
        assert_eq!(fs.stats().token_transfers, 1);
        // Node 1 touches it: token moves.
        let (_, t4) = fs.read_len(NodeId(1), k, 0, 4096, t3).unwrap();
        assert_eq!(fs.stats().token_transfers, 2);
        // Ping-pong: every alternation transfers.
        let (_, t5) = fs.write_pattern(NodeId(0), k, 0, 4096, 1, t4).unwrap();
        let _ = fs.read_len(NodeId(1), k, 0, 4096, t5).unwrap();
        assert_eq!(fs.stats().token_transfers, 4);
    }

    #[test]
    fn unshared_files_never_pay_tokens() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, t) = fs
            .open(NodeId(2), "/fpp.2", true, false, SimTime::ZERO)
            .unwrap();
        let mut t = t;
        for i in 0..10 {
            let (_, end) = fs
                .write_pattern(NodeId(2), k, i * 4096, 4096, 1, t)
                .unwrap();
            t = end;
        }
        assert_eq!(fs.stats().token_transfers, 0);
    }

    #[test]
    fn fsync_waits_for_background_flush() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let (_, wend) = fs.write_pattern(NodeId(0), k, 0, 2 * MIB, 1, t).unwrap();
        let synced = fs.fsync(k, wend);
        // The flush of 2 MiB at ~100 MiB/s takes ≈ 20 ms beyond the absorb.
        assert!(synced.since(wend) > Dur::from_millis(5));
    }

    #[test]
    fn capacity_exhaustion_surfaces_nospace() {
        let mut cfg = GpfsConfig::tiny();
        cfg.capacity = 10 * MIB;
        let mut fs = sim(cfg);
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let r = fs.write_pattern(NodeId(0), k, 0, 11 * MIB, 1, t);
        assert_eq!(r.unwrap_err(), IoErr::NoSpace);
    }

    #[test]
    fn parallel_clients_beat_one_client() {
        // Aggregate bandwidth grows when ranks on different nodes write
        // different files concurrently (arrivals at t=0 from four nodes).
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let mut fs = sim(cfg.clone());
        let mut keys = Vec::new();
        let mut t_open = SimTime::ZERO;
        for n in 0..4u32 {
            let (k, te) = fs
                .open(NodeId(n), &format!("/f{n}"), true, false, SimTime::ZERO)
                .unwrap();
            keys.push(k);
            t_open = t_open.max(te);
        }
        let mut ends = Vec::new();
        for (n, &k) in keys.iter().enumerate() {
            let (_, e) = fs
                .write_pattern(NodeId(n as u32), k, 0, 4 * MIB, 1, t_open)
                .unwrap();
            ends.push(e);
        }
        let par_end = ends.iter().max().unwrap().since(t_open).as_secs_f64();

        // Sequential on one node:
        let mut fs2 = sim(cfg);
        let (k, t) = fs2
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let mut t = t;
        for i in 0..4 {
            let (_, e) = fs2
                .write_pattern(NodeId(0), k, i * 4 * MIB, 4 * MIB, 1, t)
                .unwrap();
            t = e;
        }
        let seq_end = t.since(t_open).as_secs_f64();
        assert!(
            par_end < seq_end * 0.85,
            "parallel {par_end} not faster than sequential {seq_end}"
        );
    }

    #[test]
    fn stat_and_unlink_round_trip() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, t) = fs
            .open(NodeId(0), "/s", true, false, SimTime::ZERO)
            .unwrap();
        let (_, t2) = fs.write_pattern(NodeId(0), k, 0, 1000, 1, t).unwrap();
        let (size, t3) = fs.stat("/s", t2).unwrap();
        assert_eq!(size, 1000);
        let t4 = fs.unlink("/s", t3).unwrap();
        assert_eq!(fs.stat("/s", t4).map(|x| x.0), Err(IoErr::NotFound));
    }

    #[test]
    fn set_config_applies_capacity() {
        let mut fs = sim(GpfsConfig::tiny());
        let mut cfg = fs.config().clone();
        cfg.capacity = 10 * MIB;
        fs.set_config(cfg).unwrap();
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let r = fs.write_pattern(NodeId(0), k, 0, 11 * MIB, 1, t);
        assert_eq!(r.unwrap_err(), IoErr::NoSpace);
    }

    #[test]
    fn set_config_rejects_shrink_below_stored() {
        let mut fs = sim(GpfsConfig::tiny());
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        fs.write_pattern(NodeId(0), k, 0, 8 * MIB, 1, t).unwrap();
        let mut cfg = fs.config().clone();
        cfg.capacity = 1 * MIB;
        assert_eq!(fs.set_config(cfg), Err(IoErr::NoSpace));
    }

    #[test]
    fn nsd_outage_reroutes_to_survivors() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let mut fs = sim(cfg);
        fs.set_fault_plan(crate::faults::FaultPlan::none().with_nsd_outage(
            0,
            SimTime::ZERO,
            SimTime::from_secs(1000),
        ));
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        // 4 MiB over 1 MiB blocks on 4 servers: normally one stripe per
        // server; with server 0 down its stripe lands elsewhere.
        let (_, _end) = fs.write_pattern(NodeId(0), k, 0, 4 * MIB, 1, t).unwrap();
        assert!(fs.stats().rerouted_stripes >= 1);
        assert!(fs.rerouted_by_server()[0] >= 1 * MIB);
        assert_eq!(fs.rerouted_by_server()[1], 0);
    }

    #[test]
    fn outage_slows_aggregate_but_completes() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let mut healthy = sim(cfg.clone());
        let mut degraded = sim(cfg);
        degraded.set_fault_plan(crate::faults::FaultPlan::none().with_nsd_outage(
            1,
            SimTime::ZERO,
            SimTime::from_secs(1000),
        ));
        let run = |fs: &mut GpfsSim| {
            let (k, t) = fs
                .open(NodeId(0), "/f", true, false, SimTime::ZERO)
                .unwrap();
            let (_, end) = fs.write_pattern(NodeId(0), k, 0, 16 * MIB, 1, t).unwrap();
            end.since(t).as_secs_f64()
        };
        let t_ok = run(&mut healthy);
        let t_deg = run(&mut degraded);
        // One of four servers down: survivors absorb its share, so the
        // transfer slows by roughly its share plus contention (≥ 1/4 here
        // since the rerouted stripes serialize behind a survivor).
        assert!(t_deg > t_ok * 1.15, "degraded {t_deg} vs healthy {t_ok}");
    }

    #[test]
    fn all_servers_down_is_typed_unavailable() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let mut fs = sim(cfg);
        let mut plan = crate::faults::FaultPlan::none();
        for s in 0..4 {
            plan = plan.with_nsd_outage(s, SimTime::ZERO, SimTime::from_secs(1000));
        }
        fs.set_fault_plan(plan);
        let (k, t) = fs
            .open(NodeId(0), "/f", true, false, SimTime::ZERO)
            .unwrap();
        let r = fs.write_pattern(NodeId(0), k, 0, 1 * MIB, 1, t);
        assert_eq!(r.unwrap_err(), IoErr::ServerUnavailable);
    }

    #[test]
    fn mds_brownout_lengthens_metadata() {
        let mut healthy = sim(GpfsConfig::tiny());
        let mut browned = sim(GpfsConfig::tiny());
        browned.set_fault_plan(crate::faults::FaultPlan::none().with_mds_brownout(
            SimTime::ZERO,
            SimTime::from_secs(1000),
            10.0,
        ));
        let t_ok = healthy
            .open(NodeId(0), "/a", true, false, SimTime::ZERO)
            .unwrap()
            .1;
        let t_slow = browned
            .open(NodeId(0), "/a", true, false, SimTime::ZERO)
            .unwrap()
            .1;
        assert!(t_slow.as_nanos() > t_ok.as_nanos() * 5);
        assert_eq!(browned.stats().browned_meta_ops, 2);
    }

    #[test]
    fn transient_errors_are_seeded_and_typed() {
        let collect = |seed: u64| {
            let mut fs = GpfsSim::new(GpfsConfig::tiny(), 4, 1 * GIB, Dur::from_micros(2), seed);
            fs.set_fault_plan(crate::faults::FaultPlan::none().with_error_rates(0.3, 0.3));
            let mut outcomes = Vec::new();
            let (k, mut t) = loop {
                match fs.open(NodeId(0), "/f", true, false, SimTime::ZERO) {
                    Ok(x) => break x,
                    Err(e) => {
                        assert_eq!(e, IoErr::ServerUnavailable);
                        outcomes.push(false);
                    }
                }
            };
            for i in 0..32u64 {
                match fs.write_pattern(NodeId(0), k, i * 4096, 4096, 1, t) {
                    Ok((_, end)) => {
                        outcomes.push(true);
                        t = end;
                    }
                    Err(e) => {
                        assert_eq!(e, IoErr::TransientIo);
                        outcomes.push(false);
                    }
                }
            }
            (outcomes, fs.stats().transient_errors)
        };
        let (a, ea) = collect(42);
        let (b, eb) = collect(42);
        let (c, _) = collect(43);
        assert_eq!(a, b, "same seed must fault identically");
        assert_eq!(ea, eb);
        assert!(
            ea > 0,
            "a 30% rate over 33 attempts should fault at least once"
        );
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn empty_interference_is_bit_identical_to_none() {
        let run = |install_empty: bool| {
            let mut fs = sim(GpfsConfig::lassen());
            if install_empty {
                fs.set_interference(InterferenceSchedule::none());
            }
            let (k, t) = fs
                .open(NodeId(0), "/f", true, false, SimTime::ZERO)
                .unwrap();
            let (_, e1) = fs.write_pattern(NodeId(0), k, 0, 32 * MIB, 1, t).unwrap();
            let (_, e2) = fs.read_len(NodeId(1), k, 0, 32 * MIB, e1).unwrap();
            (e1, e2, fs.stats().clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn zero_load_windows_clear_the_schedule() {
        let mut fs = sim(GpfsConfig::tiny());
        fs.set_interference(InterferenceSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(100),
            0.0,
            0.0,
        ));
        assert!(fs.interference().is_none());
    }

    #[test]
    fn tenant_load_slows_data_and_meta_paths() {
        let mut cfg = GpfsConfig::tiny();
        cfg.client_cache_bytes = 0;
        let run = |schedule: Option<InterferenceSchedule>| {
            let mut fs = sim(cfg.clone());
            if let Some(s) = schedule {
                fs.set_interference(s);
            }
            let (k, t) = fs
                .open(NodeId(0), "/f", true, false, SimTime::ZERO)
                .unwrap();
            let (_, end) = fs.write_pattern(NodeId(0), k, 0, 8 * MIB, 1, t).unwrap();
            (end.since(SimTime::ZERO).as_secs_f64(), fs.stats().clone())
        };
        let (t_alone, s_alone) = run(None);
        let loaded = InterferenceSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(1000),
            1.0,
            1.0,
        );
        let (t_shared, s_shared) = run(Some(loaded));
        // Doubled competing demand halves the effective rate, so the
        // server-dominated transfer takes noticeably longer.
        assert!(
            t_shared > t_alone * 1.5,
            "shared {t_shared} vs alone {t_alone}"
        );
        assert_eq!(s_alone.contended_data_ops, 0);
        assert_eq!(s_alone.tenant_delay_nanos, 0);
        assert!(s_shared.contended_data_ops >= 1);
        assert!(s_shared.contended_meta_ops >= 2); // open lookup + create
        assert!(s_shared.tenant_delay_nanos > 0);
    }

    #[test]
    fn interference_outside_its_window_is_inert() {
        let cfg = GpfsConfig::tiny();
        let run = |schedule: Option<InterferenceSchedule>| {
            let mut fs = sim(cfg.clone());
            if let Some(s) = schedule {
                fs.set_interference(s);
            }
            let (k, t) = fs
                .open(NodeId(0), "/f", true, false, SimTime::ZERO)
                .unwrap();
            let (_, e1) = fs.write_pattern(NodeId(0), k, 0, 2 * MIB, 1, t).unwrap();
            (e1, fs.stats().clone())
        };
        // A window far in the future never covers any op of this short run.
        let future = InterferenceSchedule::none().with_window(
            SimTime::from_secs(1_000_000),
            SimTime::from_secs(2_000_000),
            4.0,
            4.0,
        );
        assert_eq!(run(None), run(Some(future)));
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let run = |install_empty: bool| {
            let mut fs = sim(GpfsConfig::lassen());
            if install_empty {
                fs.set_fault_plan(crate::faults::FaultPlan::none());
            }
            let (k, t) = fs
                .open(NodeId(0), "/f", true, false, SimTime::ZERO)
                .unwrap();
            let (_, e1) = fs.write_pattern(NodeId(0), k, 0, 32 * MIB, 1, t).unwrap();
            let (_, e2) = fs.read_len(NodeId(1), k, 0, 32 * MIB, e1).unwrap();
            (e1, e2, fs.stats().clone())
        };
        assert_eq!(run(false), run(true));
    }
}
