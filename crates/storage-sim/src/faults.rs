//! Deterministic fault-injection plans for the parallel file system.
//!
//! A [`FaultPlan`] is pure data: it *schedules* degradations — NSD server
//! outages, NSD/MDS brownout windows, straggler client nodes, and seeded
//! transient-error rates — but injects nothing by itself. The PFS service
//! model consults the plan at each operation and applies the degradations
//! inside its existing queueing math, so a faulted run is exactly as
//! deterministic as an unfaulted one: every random draw comes from a
//! dedicated `DetRng` stream (`"faults"`) that is only advanced while a
//! plan with nonzero error rates is active. An empty plan is therefore
//! bit-identical to no plan at all.
//!
//! Plans round-trip through `rt::json`, so a sweep harness can persist the
//! exact fault schedule next to the traces it produced.

use sim_core::SimTime;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// A full outage of one NSD data server over `[from, until)`. Stripes that
/// would route to the server are absorbed by the surviving servers (at the
/// cost of queueing contention); if every server is down the operation
/// fails with [`crate::IoErr::ServerUnavailable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Index of the NSD server (modulo the pool size).
    pub server: u32,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl OutageWindow {
    /// Whether the window covers instant `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A brownout: service within `[from, until)` is degraded by a
/// multiplicative `slowdown` (≥ 1). Applied to NSD stripe service or MDS
/// operation cost depending on which list the window sits in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Service-time multiplier while the window is active (≥ 1).
    pub slowdown: f64,
}

impl BrownoutWindow {
    /// Whether the window covers instant `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A straggler client node: all of its PFS data transfers are slowed by a
/// constant factor for the whole run (degraded NIC, failing HBA, noisy
/// neighbor — the per-node bandwidth outliers of the paper's Fig. 2c made
/// persistent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Client node index.
    pub node: u32,
    /// Service-time multiplier for the node's transfers (≥ 1).
    pub slowdown: f64,
}

/// What a [`CrashEvent`] takes out: a single rank's process, or a whole
/// client node (every rank it hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashScope {
    /// One rank dies (OOM kill, segfault, corrupted process image).
    Rank(u32),
    /// A whole node dies (kernel panic, power loss); the harness resolves
    /// the node index to its hosted ranks.
    Node(u32),
}

impl CrashScope {
    /// Deterministic tie-break key for events at the same instant:
    /// rank crashes before node crashes, then by index.
    pub fn order_key(&self) -> (u8, u32) {
        match *self {
            CrashScope::Rank(r) => (0, r),
            CrashScope::Node(n) => (1, n),
        }
    }
}

/// A fatal crash at a simulated instant. MPI semantics apply: any rank
/// dying kills the whole job, and the harness restarts it from the last
/// durable checkpoint (the scope only attributes the failure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// What dies.
    pub scope: CrashScope,
    /// When it dies.
    pub at: SimTime,
}

/// The complete fault schedule for one run. Pure data; see the module docs
/// for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Full NSD server outages.
    pub nsd_outages: Vec<OutageWindow>,
    /// NSD brownouts (degraded stripe service rate).
    pub nsd_brownouts: Vec<BrownoutWindow>,
    /// MDS brownouts (lengthened metadata queueing).
    pub mds_brownouts: Vec<BrownoutWindow>,
    /// Permanently slow client nodes.
    pub stragglers: Vec<Straggler>,
    /// Probability that one data operation attempt fails with
    /// [`crate::IoErr::TransientIo`] before touching the store.
    pub data_error_rate: f64,
    /// Probability that one metadata operation attempt fails with
    /// [`crate::IoErr::ServerUnavailable`] before touching the store.
    pub meta_error_rate: f64,
    /// Fatal rank/node crashes (each kills the job once; the harness
    /// restarts from the last durable checkpoint).
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no degradation at all.
    pub fn is_empty(&self) -> bool {
        self.nsd_outages.is_empty()
            && self.nsd_brownouts.is_empty()
            && self.mds_brownouts.is_empty()
            && self.stragglers.is_empty()
            && self.data_error_rate <= 0.0
            && self.meta_error_rate <= 0.0
            && self.crashes.is_empty()
    }

    /// Builder: add an NSD server outage window.
    pub fn with_nsd_outage(mut self, server: u32, from: SimTime, until: SimTime) -> Self {
        self.nsd_outages.push(OutageWindow {
            server,
            from,
            until,
        });
        self
    }

    /// Builder: add an NSD brownout window.
    pub fn with_nsd_brownout(mut self, from: SimTime, until: SimTime, slowdown: f64) -> Self {
        self.nsd_brownouts.push(BrownoutWindow {
            from,
            until,
            slowdown,
        });
        self
    }

    /// Builder: add an MDS brownout window.
    pub fn with_mds_brownout(mut self, from: SimTime, until: SimTime, slowdown: f64) -> Self {
        self.mds_brownouts.push(BrownoutWindow {
            from,
            until,
            slowdown,
        });
        self
    }

    /// Builder: mark a client node as a straggler.
    pub fn with_straggler(mut self, node: u32, slowdown: f64) -> Self {
        self.stragglers.push(Straggler { node, slowdown });
        self
    }

    /// Builder: set transient error rates for data and metadata attempts.
    pub fn with_error_rates(mut self, data: f64, meta: f64) -> Self {
        self.data_error_rate = data;
        self.meta_error_rate = meta;
        self
    }

    /// Builder: schedule a single-rank crash at `at`.
    pub fn with_rank_crash(mut self, rank: u32, at: SimTime) -> Self {
        self.crashes.push(CrashEvent {
            scope: CrashScope::Rank(rank),
            at,
        });
        self
    }

    /// Builder: schedule a whole-node crash at `at`.
    pub fn with_node_crash(mut self, node: u32, at: SimTime) -> Self {
        self.crashes.push(CrashEvent {
            scope: CrashScope::Node(node),
            at,
        });
        self
    }

    /// Crash events in deterministic firing order: by instant, ties broken
    /// rank-before-node then by index. The order is a pure function of the
    /// plan, so restart sequences cannot depend on registration order.
    pub fn crashes_sorted(&self) -> Vec<CrashEvent> {
        let mut c = self.crashes.clone();
        c.sort_by_key(|e| (e.at, e.scope.order_key()));
        c
    }

    /// Whether NSD server `server` (already reduced modulo the pool size)
    /// is inside an outage window at `t`.
    pub fn server_down(&self, server: u32, t: SimTime) -> bool {
        self.nsd_outages
            .iter()
            .any(|o| o.server == server && o.covers(t))
    }

    /// Combined NSD service slowdown at `t` (product of active brownouts;
    /// 1.0 when none are active).
    pub fn data_slowdown(&self, t: SimTime) -> f64 {
        self.nsd_brownouts
            .iter()
            .filter(|b| b.covers(t))
            .fold(1.0, |acc, b| acc * b.slowdown.max(1.0))
    }

    /// Combined MDS service slowdown at `t`.
    pub fn mds_slowdown(&self, t: SimTime) -> f64 {
        self.mds_brownouts
            .iter()
            .filter(|b| b.covers(t))
            .fold(1.0, |acc, b| acc * b.slowdown.max(1.0))
    }

    /// Slowdown factor for client node `node` (1.0 when not a straggler).
    pub fn node_slowdown(&self, node: u32) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .fold(1.0, |acc, s| acc * s.slowdown.max(1.0))
    }
}

impl ToJson for OutageWindow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("server", self.server.to_json()),
            ("from", self.from.to_json()),
            ("until", self.until.to_json()),
        ])
    }
}

impl FromJson for OutageWindow {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(OutageWindow {
            server: j.decode_field("server")?,
            from: j.decode_field("from")?,
            until: j.decode_field("until")?,
        })
    }
}

impl ToJson for BrownoutWindow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", self.from.to_json()),
            ("until", self.until.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl FromJson for BrownoutWindow {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(BrownoutWindow {
            from: j.decode_field("from")?,
            until: j.decode_field("until")?,
            slowdown: j.decode_field("slowdown")?,
        })
    }
}

impl ToJson for Straggler {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", self.node.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl FromJson for Straggler {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Straggler {
            node: j.decode_field("node")?,
            slowdown: j.decode_field("slowdown")?,
        })
    }
}

impl ToJson for CrashEvent {
    fn to_json(&self) -> Json {
        let (kind, index) = match self.scope {
            CrashScope::Rank(r) => ("rank", r),
            CrashScope::Node(n) => ("node", n),
        };
        Json::obj([
            ("kind", kind.to_json()),
            ("index", index.to_json()),
            ("at", self.at.to_json()),
        ])
    }
}

impl FromJson for CrashEvent {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let kind: String = j.decode_field("kind")?;
        let index: u32 = j.decode_field("index")?;
        let scope = match kind.as_str() {
            "rank" => CrashScope::Rank(index),
            "node" => CrashScope::Node(index),
            other => return Err(JsonError::shape(format!("unknown crash scope `{other}`"))),
        };
        Ok(CrashEvent {
            scope,
            at: j.decode_field("at")?,
        })
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nsd_outages", self.nsd_outages.to_json()),
            ("nsd_brownouts", self.nsd_brownouts.to_json()),
            ("mds_brownouts", self.mds_brownouts.to_json()),
            ("stragglers", self.stragglers.to_json()),
            ("data_error_rate", self.data_error_rate.to_json()),
            ("meta_error_rate", self.meta_error_rate.to_json()),
            ("crashes", self.crashes.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(FaultPlan {
            nsd_outages: j.decode_field("nsd_outages")?,
            nsd_brownouts: j.decode_field("nsd_brownouts")?,
            mds_brownouts: j.decode_field("mds_brownouts")?,
            stragglers: j.decode_field("stragglers")?,
            data_error_rate: j.decode_field("data_error_rate")?,
            meta_error_rate: j.decode_field("meta_error_rate")?,
            crashes: j.decode_field("crashes")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.server_down(0, t(1)));
        assert_eq!(p.data_slowdown(t(1)), 1.0);
        assert_eq!(p.mds_slowdown(t(1)), 1.0);
        assert_eq!(p.node_slowdown(3), 1.0);
    }

    #[test]
    fn windows_are_half_open() {
        let p = FaultPlan::none()
            .with_nsd_outage(2, t(10), t(20))
            .with_mds_brownout(t(5), t(15), 4.0);
        assert!(!p.is_empty());
        assert!(!p.server_down(2, t(9)));
        assert!(p.server_down(2, t(10)));
        assert!(p.server_down(2, t(19)));
        assert!(!p.server_down(2, t(20)));
        assert!(!p.server_down(1, t(15)));
        assert_eq!(p.mds_slowdown(t(4)), 1.0);
        assert_eq!(p.mds_slowdown(t(5)), 4.0);
        assert_eq!(p.mds_slowdown(t(15)), 1.0);
    }

    #[test]
    fn overlapping_brownouts_compound() {
        let p = FaultPlan::none()
            .with_nsd_brownout(t(0), t(100), 2.0)
            .with_nsd_brownout(t(50), t(100), 3.0);
        assert_eq!(p.data_slowdown(t(10)), 2.0);
        assert_eq!(p.data_slowdown(t(60)), 6.0);
        // Slowdowns below 1 never speed service up.
        let q = FaultPlan::none().with_nsd_brownout(t(0), t(10), 0.25);
        assert_eq!(q.data_slowdown(t(5)), 1.0);
    }

    #[test]
    fn crash_events_fire_in_deterministic_order() {
        let p = FaultPlan::none()
            .with_node_crash(3, t(10))
            .with_rank_crash(9, t(10))
            .with_rank_crash(2, t(5));
        assert!(!p.is_empty());
        let order = p.crashes_sorted();
        assert_eq!(order[0].scope, CrashScope::Rank(2));
        assert_eq!(
            order[1].scope,
            CrashScope::Rank(9),
            "rank crash sorts before node crash"
        );
        assert_eq!(order[2].scope, CrashScope::Node(3));
        // Registration order must not leak into firing order.
        let q = FaultPlan::none()
            .with_rank_crash(2, t(5))
            .with_rank_crash(9, t(10))
            .with_node_crash(3, t(10));
        assert_eq!(q.crashes_sorted(), order);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = FaultPlan::none()
            .with_nsd_outage(7, t(1), t(9))
            .with_nsd_brownout(t(2), t(3), 1.5)
            .with_mds_brownout(t(4), t(8), 16.0)
            .with_straggler(5, 3.0)
            .with_rank_crash(11, t(6))
            .with_node_crash(2, t(7))
            .with_error_rates(0.01, 0.002);
        let text = p.to_json().render();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    /// Seeded randomized round-trip: arbitrary plans survive JSON exactly
    /// (all fields are u32/u64-nanos/f64; f64 renders round-trip bit-exact
    /// through the rt codec).
    #[test]
    fn randomized_plans_round_trip() {
        let mut r = vani_rt::Rng::new(0xfa17_0001);
        for _ in 0..64 {
            let mut p = FaultPlan::none();
            for _ in 0..r.uniform_u64(0, 4) {
                let from = r.uniform_u64(0, 1_000_000);
                let len = r.uniform_u64(1, 1_000_000);
                p = p.with_nsd_outage(
                    r.uniform_u64(0, 96) as u32,
                    SimTime::from_nanos(from),
                    SimTime::from_nanos(from + len),
                );
            }
            for _ in 0..r.uniform_u64(0, 4) {
                let from = r.uniform_u64(0, 1_000_000);
                let len = r.uniform_u64(1, 1_000_000);
                p = p.with_nsd_brownout(
                    SimTime::from_nanos(from),
                    SimTime::from_nanos(from + len),
                    r.uniform_f64(1.0, 32.0),
                );
            }
            for _ in 0..r.uniform_u64(0, 4) {
                let from = r.uniform_u64(0, 1_000_000);
                let len = r.uniform_u64(1, 1_000_000);
                p = p.with_mds_brownout(
                    SimTime::from_nanos(from),
                    SimTime::from_nanos(from + len),
                    r.uniform_f64(1.0, 32.0),
                );
            }
            for _ in 0..r.uniform_u64(0, 3) {
                p = p.with_straggler(r.uniform_u64(0, 32) as u32, r.uniform_f64(1.0, 8.0));
            }
            for _ in 0..r.uniform_u64(0, 3) {
                let at = SimTime::from_nanos(r.uniform_u64(0, 1_000_000));
                p = if r.uniform_u64(0, 2) == 0 {
                    p.with_rank_crash(r.uniform_u64(0, 512) as u32, at)
                } else {
                    p.with_node_crash(r.uniform_u64(0, 64) as u32, at)
                };
            }
            if r.uniform_u64(0, 2) == 1 {
                p = p.with_error_rates(r.uniform_f64(0.0, 0.2), r.uniform_f64(0.0, 0.2));
            }
            let text = p.to_json().render();
            let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, p, "plan diverged after JSON round-trip: {text}");
        }
    }
}
