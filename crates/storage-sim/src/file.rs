//! Inodes, sparse content, and the flat namespace.
//!
//! File content is a sparse map of [`Segment`]s. A segment is either
//! byte-backed (real data, used by format layers that must round-trip
//! headers) or pattern-backed (a deterministic synthetic fill used for the
//! multi-gigabyte checkpoint bodies the workloads move, which would be
//! wasteful to materialize). Reads can either materialize bytes or just
//! report how many bytes of the range exist — the timing paths use the
//! latter.

use crate::err::IoErr;
use crate::path as vpath;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Stable identifier of a file within one [`FileStore`] (an inode number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileKey(pub u64);

/// The source of one contiguous run of file content.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Real bytes.
    Bytes(Arc<Vec<u8>>),
    /// A deterministic synthetic fill of `len` bytes derived from `seed`.
    Pattern {
        /// Seed for the fill function.
        seed: u64,
        /// Length in bytes.
        len: u64,
    },
}

impl Segment {
    /// Length of the segment in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Segment::Bytes(b) => b.len() as u64,
            Segment::Pattern { len, .. } => *len,
        }
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte at `off` within the segment.
    fn byte_at(&self, off: u64) -> u8 {
        match self {
            Segment::Bytes(b) => b[off as usize],
            Segment::Pattern { seed, .. } => pattern_byte(*seed, off),
        }
    }
}

/// The deterministic synthetic fill: mixes seed and offset so different
/// files and offsets produce different bytes, reproducibly.
pub fn pattern_byte(seed: u64, off: u64) -> u8 {
    let x = (seed ^ off).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (x >> 56) as u8
}

/// A file's content: non-overlapping segments keyed by start offset, plus a
/// logical size (which may exceed the last segment — sparse tail reads as
/// zeros, like POSIX).
#[derive(Debug, Clone, Default)]
pub struct SegmentMap {
    segs: BTreeMap<u64, Segment>,
    size: u64,
}

impl SegmentMap {
    /// Logical file size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Write a segment at `offset`, truncating/splitting whatever overlaps.
    pub fn write(&mut self, offset: u64, seg: Segment) {
        let len = seg.len();
        if len == 0 {
            return;
        }
        let end = offset + len;
        // Split a segment that starts before `offset` and overlaps it.
        if let Some((&s_off, s)) = self.segs.range(..offset).next_back() {
            let s_end = s_off + s.len();
            if s_end > offset {
                let keep = self.slice_of(s, s_off, s_off, offset);
                let tail = if s_end > end {
                    Some((end, self.slice_of(s, s_off, end, s_end)))
                } else {
                    None
                };
                self.segs.insert(s_off, keep);
                if let Some((t_off, t)) = tail {
                    self.segs.insert(t_off, t);
                }
            }
        }
        // Remove or trim segments starting inside [offset, end).
        let inside: Vec<u64> = self.segs.range(offset..end).map(|(&o, _)| o).collect();
        for o in inside {
            let s = self.segs.remove(&o).expect("key just listed");
            let s_end = o + s.len();
            if s_end > end {
                let tail = self.slice_of(&s, o, end, s_end);
                self.segs.insert(end, tail);
            }
        }
        self.segs.insert(offset, seg);
        self.size = self.size.max(end);
    }

    /// Extract `[from, to)` of a segment whose own start is `seg_off`.
    fn slice_of(&self, seg: &Segment, seg_off: u64, from: u64, to: u64) -> Segment {
        debug_assert!(from >= seg_off && to >= from);
        match seg {
            Segment::Bytes(b) => {
                let lo = (from - seg_off) as usize;
                let hi = (to - seg_off) as usize;
                Segment::Bytes(Arc::new(b[lo..hi].to_vec()))
            }
            Segment::Pattern { seed, .. } => Segment::Pattern {
                // Shift the seed so pattern bytes stay consistent with their
                // absolute position in the original segment.
                seed: seed ^ (from - seg_off).wrapping_mul(0x9E37_79B9),
                len: to - from,
            },
        }
    }

    /// Materialize `len` bytes at `offset`. Bytes past EOF are not returned;
    /// holes within the file read as zeros.
    pub fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        let end = (offset + len).min(self.size);
        if end <= offset {
            return Vec::new();
        }
        let mut out = vec![0u8; (end - offset) as usize];
        // Walk segments overlapping [offset, end).
        let first = self
            .segs
            .range(..=offset)
            .next_back()
            .map(|(&o, _)| o)
            .unwrap_or(0);
        for (&s_off, s) in self.segs.range(first..end) {
            let s_end = s_off + s.len();
            if s_end <= offset {
                continue;
            }
            let lo = s_off.max(offset);
            let hi = s_end.min(end);
            for abs in lo..hi {
                out[(abs - offset) as usize] = s.byte_at(abs - s_off);
            }
        }
        out
    }

    /// How many bytes of `[offset, offset+len)` lie within the file —
    /// the timing-only read used for bulk synthetic data.
    pub fn readable_len(&self, offset: u64, len: u64) -> u64 {
        let end = (offset + len).min(self.size);
        end.saturating_sub(offset)
    }

    /// Truncate to `new_size`.
    pub fn truncate(&mut self, new_size: u64) {
        let beyond: Vec<u64> = self.segs.range(new_size..).map(|(&o, _)| o).collect();
        for o in beyond {
            self.segs.remove(&o);
        }
        if let Some((&s_off, s)) = self.segs.range(..new_size).next_back() {
            let s_end = s_off + s.len();
            if s_end > new_size {
                let head = self.slice_of(s, s_off, s_off, new_size);
                self.segs.insert(s_off, head);
            }
        }
        self.size = new_size;
    }
}

/// Metadata and content of one file.
#[derive(Debug, Clone)]
pub struct FileNode {
    /// Normalized absolute path.
    pub path: String,
    /// Content map.
    pub data: SegmentMap,
    /// Whether this node is a directory.
    pub is_dir: bool,
}

/// A flat namespace of files and directories, the common core of every tier.
///
/// Parent directories are created implicitly (the job scripts in the paper
/// all `mkdir -p` their output trees before running).
#[derive(Debug, Default, Clone)]
pub struct FileStore {
    nodes: Vec<Option<FileNode>>,
    by_path: HashMap<String, FileKey>,
    bytes_stored: u64,
    capacity: Option<u64>,
}

impl FileStore {
    /// New store with unlimited capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// New store with a byte capacity (exceeding it yields `NoSpace`).
    pub fn with_capacity(capacity: u64) -> Self {
        FileStore {
            capacity: Some(capacity),
            ..Default::default()
        }
    }

    /// Bytes currently stored (sum of file sizes).
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Configured capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Change the capacity after construction. Shrinking below the bytes
    /// already stored is rejected with `NoSpace` (the store never discards
    /// data to satisfy a reconfiguration).
    pub fn set_capacity(&mut self, capacity: Option<u64>) -> Result<(), IoErr> {
        if let Some(c) = capacity {
            if self.bytes_stored > c {
                return Err(IoErr::NoSpace);
            }
        }
        self.capacity = capacity;
        Ok(())
    }

    /// Number of live files (not directories).
    pub fn file_count(&self) -> usize {
        self.nodes.iter().flatten().filter(|n| !n.is_dir).count()
    }

    /// Look up a path.
    pub fn lookup(&self, path: &str) -> Option<FileKey> {
        let p = vpath::normalize(path).ok()?;
        self.by_path.get(&p).copied()
    }

    /// Create a file (or return the existing one when `exclusive` is false).
    pub fn create(&mut self, path: &str, exclusive: bool) -> Result<FileKey, IoErr> {
        let p = vpath::normalize(path)?;
        if let Some(&k) = self.by_path.get(&p) {
            let node = self.get(k)?;
            if node.is_dir {
                return Err(IoErr::IsDir);
            }
            if exclusive {
                return Err(IoErr::AlreadyExists);
            }
            return Ok(k);
        }
        self.mkdirs(vpath::parent(&p))?;
        let key = FileKey(self.nodes.len() as u64);
        self.nodes.push(Some(FileNode {
            path: p.clone(),
            data: SegmentMap::default(),
            is_dir: false,
        }));
        self.by_path.insert(p, key);
        Ok(key)
    }

    /// Create a directory chain.
    pub fn mkdirs(&mut self, path: &str) -> Result<(), IoErr> {
        let p = vpath::normalize(path)?;
        if p == "/" {
            return Ok(());
        }
        // Create ancestors first.
        self.mkdirs(vpath::parent(&p))?;
        match self.by_path.get(&p) {
            Some(&k) => {
                if !self.get(k)?.is_dir {
                    return Err(IoErr::NotDir);
                }
            }
            None => {
                let key = FileKey(self.nodes.len() as u64);
                self.nodes.push(Some(FileNode {
                    path: p.clone(),
                    data: SegmentMap::default(),
                    is_dir: true,
                }));
                self.by_path.insert(p, key);
            }
        }
        Ok(())
    }

    /// Access a node.
    pub fn get(&self, key: FileKey) -> Result<&FileNode, IoErr> {
        self.nodes
            .get(key.0 as usize)
            .and_then(|n| n.as_ref())
            .ok_or(IoErr::NotFound)
    }

    fn get_mut(&mut self, key: FileKey) -> Result<&mut FileNode, IoErr> {
        self.nodes
            .get_mut(key.0 as usize)
            .and_then(|n| n.as_mut())
            .ok_or(IoErr::NotFound)
    }

    /// File size.
    pub fn size_of(&self, key: FileKey) -> Result<u64, IoErr> {
        Ok(self.get(key)?.data.size())
    }

    /// Write a segment; enforces capacity on growth.
    pub fn write(&mut self, key: FileKey, offset: u64, seg: Segment) -> Result<u64, IoErr> {
        let cap = self.capacity;
        let stored = self.bytes_stored;
        let node = self.get_mut(key)?;
        if node.is_dir {
            return Err(IoErr::IsDir);
        }
        let old = node.data.size();
        let new_end = offset + seg.len();
        let growth = new_end.saturating_sub(old);
        if let Some(c) = cap {
            if stored + growth > c {
                return Err(IoErr::NoSpace);
            }
        }
        let n = seg.len();
        node.data.write(offset, seg);
        self.bytes_stored += growth;
        Ok(n)
    }

    /// Materializing read.
    pub fn read(&self, key: FileKey, offset: u64, len: u64) -> Result<Vec<u8>, IoErr> {
        let node = self.get(key)?;
        if node.is_dir {
            return Err(IoErr::IsDir);
        }
        Ok(node.data.read(offset, len))
    }

    /// Timing-only read: bytes available in the range.
    pub fn readable_len(&self, key: FileKey, offset: u64, len: u64) -> Result<u64, IoErr> {
        let node = self.get(key)?;
        if node.is_dir {
            return Err(IoErr::IsDir);
        }
        Ok(node.data.readable_len(offset, len))
    }

    /// Truncate a file.
    pub fn truncate(&mut self, key: FileKey, new_size: u64) -> Result<(), IoErr> {
        let node = self.get_mut(key)?;
        if node.is_dir {
            return Err(IoErr::IsDir);
        }
        let old = node.data.size();
        node.data.truncate(new_size);
        self.bytes_stored = self.bytes_stored + new_size.saturating_sub(old)
            - old.saturating_sub(new_size).min(self.bytes_stored);
        Ok(())
    }

    /// Remove a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), IoErr> {
        let p = vpath::normalize(path)?;
        let key = *self.by_path.get(&p).ok_or(IoErr::NotFound)?;
        let node = self.get(key)?;
        if node.is_dir {
            return Err(IoErr::IsDir);
        }
        self.bytes_stored -= node.data.size().min(self.bytes_stored);
        self.by_path.remove(&p);
        self.nodes[key.0 as usize] = None;
        Ok(())
    }

    /// Snapshot a file's content map (cheap: segments are `Arc`-backed).
    pub fn snapshot(&self, key: FileKey) -> Result<SegmentMap, IoErr> {
        Ok(self.get(key)?.data.clone())
    }

    /// Create (or replace) a file with a pre-built content map. Used by
    /// preload passes that copy datasets between tiers without
    /// materializing bytes.
    pub fn insert_snapshot(&mut self, path: &str, data: SegmentMap) -> Result<FileKey, IoErr> {
        let key = self.create(path, false)?;
        let old = self.get(key)?.data.size();
        let new = data.size();
        if let Some(c) = self.capacity {
            if self.bytes_stored - old.min(self.bytes_stored) + new > c {
                return Err(IoErr::NoSpace);
            }
        }
        self.bytes_stored = self.bytes_stored - old.min(self.bytes_stored) + new;
        self.get_mut(key)?.data = data;
        Ok(key)
    }

    /// All file paths under a directory prefix (recursive), sorted.
    pub fn list(&self, dir: &str) -> Vec<String> {
        let Ok(d) = vpath::normalize(dir) else {
            return Vec::new();
        };
        let mut out: Vec<String> = self
            .nodes
            .iter()
            .flatten()
            .filter(|n| !n.is_dir && vpath::starts_with_dir(&n.path, &d))
            .map(|n| n.path.clone())
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = FileStore::new();
        let k = fs.create("/p/gpfs1/data.bin", false).unwrap();
        fs.write(k, 0, Segment::Bytes(Arc::new(b"hello world".to_vec())))
            .unwrap();
        assert_eq!(fs.read(k, 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read(k, 6, 100).unwrap(), b"world");
        assert_eq!(fs.size_of(k).unwrap(), 11);
    }

    #[test]
    fn overwrite_splits_segments() {
        let mut fs = FileStore::new();
        let k = fs.create("/f", false).unwrap();
        fs.write(k, 0, Segment::Bytes(Arc::new(vec![b'a'; 10])))
            .unwrap();
        fs.write(k, 3, Segment::Bytes(Arc::new(vec![b'b'; 4])))
            .unwrap();
        assert_eq!(fs.read(k, 0, 10).unwrap(), b"aaabbbbaaa");
    }

    #[test]
    fn sparse_holes_read_as_zeros() {
        let mut fs = FileStore::new();
        let k = fs.create("/f", false).unwrap();
        fs.write(k, 8, Segment::Bytes(Arc::new(vec![1, 2])))
            .unwrap();
        let data = fs.read(k, 0, 10).unwrap();
        assert_eq!(&data[..8], &[0u8; 8]);
        assert_eq!(&data[8..], &[1, 2]);
    }

    #[test]
    fn pattern_segments_are_deterministic() {
        let mut fs = FileStore::new();
        let k = fs.create("/big", false).unwrap();
        fs.write(
            k,
            0,
            Segment::Pattern {
                seed: 42,
                len: 1 << 20,
            },
        )
        .unwrap();
        let a = fs.read(k, 1000, 64).unwrap();
        let b = fs.read(k, 1000, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(fs.readable_len(k, 0, 2 << 20).unwrap(), 1 << 20);
        // Not all zero — the pattern has content.
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn exclusive_create_fails_on_existing() {
        let mut fs = FileStore::new();
        fs.create("/x", false).unwrap();
        assert_eq!(fs.create("/x", true), Err(IoErr::AlreadyExists));
        assert!(fs.create("/x", false).is_ok());
    }

    #[test]
    fn capacity_enforced() {
        let mut fs = FileStore::with_capacity(100);
        let k = fs.create("/f", false).unwrap();
        fs.write(k, 0, Segment::Pattern { seed: 1, len: 80 })
            .unwrap();
        assert_eq!(
            fs.write(k, 80, Segment::Pattern { seed: 1, len: 40 }),
            Err(IoErr::NoSpace)
        );
        // Overwrite within the file is fine — no growth.
        assert!(fs
            .write(k, 0, Segment::Pattern { seed: 2, len: 80 })
            .is_ok());
    }

    #[test]
    fn unlink_frees_space() {
        let mut fs = FileStore::with_capacity(100);
        let k = fs.create("/f", false).unwrap();
        fs.write(k, 0, Segment::Pattern { seed: 1, len: 100 })
            .unwrap();
        fs.unlink("/f").unwrap();
        assert_eq!(fs.bytes_stored(), 0);
        assert_eq!(fs.lookup("/f"), None);
        let k2 = fs.create("/g", false).unwrap();
        assert!(fs
            .write(k2, 0, Segment::Pattern { seed: 1, len: 100 })
            .is_ok());
    }

    #[test]
    fn list_is_recursive_and_sorted() {
        let mut fs = FileStore::new();
        fs.create("/a/b/1", false).unwrap();
        fs.create("/a/2", false).unwrap();
        fs.create("/c/3", false).unwrap();
        assert_eq!(
            fs.list("/a"),
            vec!["/a/2".to_string(), "/a/b/1".to_string()]
        );
        assert_eq!(fs.list("/"), vec!["/a/2", "/a/b/1", "/c/3"]);
    }

    #[test]
    fn file_over_directory_conflicts() {
        let mut fs = FileStore::new();
        fs.create("/a/b/c", false).unwrap();
        // "/a/b" is a directory; creating a file there must fail.
        assert_eq!(fs.create("/a/b", false), Err(IoErr::IsDir));
        // And a directory over the file "/a/b/c" must fail.
        assert_eq!(fs.mkdirs("/a/b/c"), Err(IoErr::NotDir));
    }

    #[test]
    fn truncate_shrinks_and_zero_extends() {
        let mut fs = FileStore::new();
        let k = fs.create("/f", false).unwrap();
        fs.write(k, 0, Segment::Bytes(Arc::new(b"abcdefgh".to_vec())))
            .unwrap();
        fs.truncate(k, 3).unwrap();
        assert_eq!(fs.size_of(k).unwrap(), 3);
        assert_eq!(fs.read(k, 0, 10).unwrap(), b"abc");
        fs.truncate(k, 6).unwrap();
        assert_eq!(fs.read(k, 0, 10).unwrap(), &[b'a', b'b', b'c', 0, 0, 0]);
    }

    // Deterministic randomized sweeps (seeded `vani_rt::Rng`) — converted
    // from the original proptest suites.

    /// Random write sequences: SegmentMap agrees with a Vec<u8> model.
    #[test]
    fn randomized_segment_map_matches_vec_model() {
        let mut r = vani_rt::Rng::new(0xf11e_0001);
        for _ in 0..64 {
            let nwrites = r.uniform_u64(1, 40) as usize;
            let writes: Vec<(u64, Vec<u8>)> = (0..nwrites)
                .map(|_| {
                    let off = r.uniform_u64(0, 256);
                    let len = r.uniform_u64(1, 64) as usize;
                    let data: Vec<u8> = (0..len).map(|_| r.uniform_u64(0, 256) as u8).collect();
                    (off, data)
                })
                .collect();
            let mut sm = SegmentMap::default();
            let mut model: Vec<u8> = Vec::new();
            for (off, data) in &writes {
                let end = *off as usize + data.len();
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[*off as usize..end].copy_from_slice(data);
                sm.write(*off, Segment::Bytes(Arc::new(data.clone())));
            }
            assert_eq!(sm.size(), model.len() as u64);
            assert_eq!(sm.read(0, model.len() as u64 + 32), model);
        }
    }

    /// readable_len never exceeds the requested length or the file size.
    #[test]
    fn randomized_readable_len_bounds() {
        let mut r = vani_rt::Rng::new(0xf11e_0002);
        for _ in 0..256 {
            let off = r.uniform_u64(0, 10_000);
            let len = r.uniform_u64(0, 10_000);
            let size = r.uniform_u64(0, 10_000);
            let mut sm = SegmentMap::default();
            if size > 0 {
                sm.write(0, Segment::Pattern { seed: 3, len: size });
            }
            let rl = sm.readable_len(off, len);
            assert!(rl <= len);
            assert!(off + rl <= size.max(off));
        }
    }
}
