//! Error codes surfaced by the simulated storage stack, mirroring the POSIX
//! failures real HPC I/O middleware must handle.

use std::fmt;

/// A storage error. The variants map 1:1 onto the `errno` values the real
/// interfaces would return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErr {
    /// `ENOENT`: path does not exist.
    NotFound,
    /// `EEXIST`: exclusive create of an existing path.
    AlreadyExists,
    /// `ENOSPC`: the tier's capacity is exhausted.
    NoSpace,
    /// `EBADF`: operation on a closed or invalid descriptor.
    BadFd,
    /// `EISDIR`: data operation on a directory.
    IsDir,
    /// `ENOTDIR`: path component is not a directory.
    NotDir,
    /// `EINVAL`: malformed path or argument.
    Invalid,
    /// `EMFILE`: per-process descriptor table is full.
    TooManyOpenFiles,
    /// `EROFS` / permission: write to a read-only open.
    ReadOnly,
    /// `ENODEV`: path resolves to no mounted tier on this node.
    NoSuchTier,
}

impl fmt::Display for IoErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoErr::NotFound => "no such file or directory",
            IoErr::AlreadyExists => "file exists",
            IoErr::NoSpace => "no space left on device",
            IoErr::BadFd => "bad file descriptor",
            IoErr::IsDir => "is a directory",
            IoErr::NotDir => "not a directory",
            IoErr::Invalid => "invalid argument",
            IoErr::TooManyOpenFiles => "too many open files",
            IoErr::ReadOnly => "read-only file",
            IoErr::NoSuchTier => "no such device",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IoErr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_like_errno_strings() {
        assert_eq!(IoErr::NotFound.to_string(), "no such file or directory");
        assert_eq!(IoErr::NoSpace.to_string(), "no space left on device");
    }
}
