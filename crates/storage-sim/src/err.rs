//! Error codes surfaced by the simulated storage stack, mirroring the POSIX
//! failures real HPC I/O middleware must handle.

use std::fmt;

/// A storage error. The variants map 1:1 onto the `errno` values the real
/// interfaces would return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErr {
    /// `ENOENT`: path does not exist.
    NotFound,
    /// `EEXIST`: exclusive create of an existing path.
    AlreadyExists,
    /// `ENOSPC`: the tier's capacity is exhausted.
    NoSpace,
    /// `EBADF`: operation on a closed or invalid descriptor.
    BadFd,
    /// `EISDIR`: data operation on a directory.
    IsDir,
    /// `ENOTDIR`: path component is not a directory.
    NotDir,
    /// `EINVAL`: malformed path or argument.
    Invalid,
    /// `EMFILE`: per-process descriptor table is full.
    TooManyOpenFiles,
    /// `EROFS` / permission: write to a read-only open.
    ReadOnly,
    /// `ENODEV`: path resolves to no mounted tier on this node.
    NoSuchTier,
    /// `EIO`: a transient device/network error injected by a fault plan.
    /// Retrying the operation may succeed.
    TransientIo,
    /// `EAGAIN`-like: the servers needed by this operation are unavailable
    /// (outage window or injected metadata-service fault). Retryable.
    ServerUnavailable,
}

impl IoErr {
    /// Whether a retry of the same operation can be expected to succeed —
    /// the predicate the resilience middleware uses to decide between
    /// backing off and surfacing the error to the caller.
    pub fn is_transient(&self) -> bool {
        matches!(self, IoErr::TransientIo | IoErr::ServerUnavailable)
    }
}

impl fmt::Display for IoErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoErr::NotFound => "no such file or directory",
            IoErr::AlreadyExists => "file exists",
            IoErr::NoSpace => "no space left on device",
            IoErr::BadFd => "bad file descriptor",
            IoErr::IsDir => "is a directory",
            IoErr::NotDir => "not a directory",
            IoErr::Invalid => "invalid argument",
            IoErr::TooManyOpenFiles => "too many open files",
            IoErr::ReadOnly => "read-only file",
            IoErr::NoSuchTier => "no such device",
            IoErr::TransientIo => "input/output error (transient)",
            IoErr::ServerUnavailable => "storage server unavailable",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IoErr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_like_errno_strings() {
        assert_eq!(IoErr::NotFound.to_string(), "no such file or directory");
        assert_eq!(IoErr::NoSpace.to_string(), "no space left on device");
        assert_eq!(
            IoErr::ServerUnavailable.to_string(),
            "storage server unavailable"
        );
    }

    #[test]
    fn only_fault_variants_are_transient() {
        assert!(IoErr::TransientIo.is_transient());
        assert!(IoErr::ServerUnavailable.is_transient());
        assert!(!IoErr::NoSpace.is_transient());
        assert!(!IoErr::NotFound.is_transient());
        assert!(!IoErr::BadFd.is_transient());
    }
}
