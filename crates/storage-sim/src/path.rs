//! Path normalization for the simulated namespaces.
//!
//! Paths are absolute, `/`-separated, with no `.`/`..` resolution beyond
//! collapsing duplicate separators and trailing slashes — the simulated
//! workloads always use clean absolute paths, and anything else is rejected
//! loudly rather than guessed at.

use crate::err::IoErr;

/// Normalize an absolute path: collapse `//`, strip a trailing `/` (except
/// for the root itself), and reject relative or dot-containing paths.
pub fn normalize(path: &str) -> Result<String, IoErr> {
    if !path.starts_with('/') {
        return Err(IoErr::Invalid);
    }
    let mut out = String::with_capacity(path.len());
    for comp in path.split('/') {
        if comp.is_empty() {
            continue;
        }
        if comp == "." || comp == ".." {
            return Err(IoErr::Invalid);
        }
        out.push('/');
        out.push_str(comp);
    }
    if out.is_empty() {
        out.push('/');
    }
    Ok(out)
}

/// The parent directory of a normalized path (`/a/b` → `/a`; `/a` → `/`).
pub fn parent(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

/// The final component of a normalized path.
pub fn basename(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// The extension of the final component, without the dot, if any.
pub fn extension(path: &str) -> Option<&str> {
    let base = basename(path);
    match base.rfind('.') {
        Some(i) if i > 0 => Some(&base[i + 1..]),
        _ => None,
    }
}

/// Whether `path` is `prefix` itself or lies beneath it.
pub fn starts_with_dir(path: &str, prefix: &str) -> bool {
    if prefix == "/" {
        return true;
    }
    path == prefix || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_separators() {
        assert_eq!(normalize("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize("/").unwrap(), "/");
        assert_eq!(
            normalize("/p/gpfs1/run/out.bin").unwrap(),
            "/p/gpfs1/run/out.bin"
        );
    }

    #[test]
    fn relative_and_dotted_paths_are_rejected() {
        assert_eq!(normalize("a/b"), Err(IoErr::Invalid));
        assert_eq!(normalize("/a/../b"), Err(IoErr::Invalid));
        assert_eq!(normalize("/a/./b"), Err(IoErr::Invalid));
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent("/a/b/c"), "/a/b");
        assert_eq!(parent("/a"), "/");
        assert_eq!(basename("/a/b/c.fits"), "c.fits");
        assert_eq!(extension("/a/b/c.fits"), Some("fits"));
        assert_eq!(extension("/a/b/noext"), None);
        assert_eq!(extension("/a/b/.hidden"), None);
    }

    #[test]
    fn prefix_matching_respects_components() {
        assert!(starts_with_dir("/dev/shm/x", "/dev/shm"));
        assert!(starts_with_dir("/dev/shm", "/dev/shm"));
        assert!(!starts_with_dir("/dev/shmem/x", "/dev/shm"));
        assert!(starts_with_dir("/anything", "/"));
    }
}
